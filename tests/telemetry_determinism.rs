//! Determinism suite for the live telemetry plane
//! (`metis::telemetry`) on the serving fabric:
//!
//! * **Schedule purity** — under a virtual clock, every deterministic
//!   telemetry surface (span log, flight-recorder events, latency and
//!   stage sketches, served/per-epoch splits) is a pure function of the
//!   submission/swap schedule: the combined [`Telemetry::digest`] and
//!   the full Chrome trace-event JSON are **bit-identical** across
//!   worker thread counts, shard stripe widths, and batch sizes that
//!   preserve batch composition.
//! * **Disabled plane** — [`Telemetry::off`] registers no scopes and
//!   digests to 0; the serving path's behaviour (responses, reports) is
//!   identical with the plane on or off.
//!
//! The plane under test comes from [`Telemetry::from_env`], so CI's
//! `METIS_TELEMETRY=0` runs exercise the disabled plane through the
//! exact same schedules (the digest assertions gate on
//! [`Telemetry::is_enabled`]).
//!
//! Thread counts sweep 1/2/8 plus an optional CI-injected
//! `METIS_TEST_THREADS=<n>`.

use metis::dt::{fit, Dataset, DecisionTree, TreeConfig};
use metis::fabric::{FabricConfig, PromotePolicy, Router, ScenarioSpec, ShadowConfig, TenantSpec};
use metis::serve::{Clock, ServeConfig};
use metis::telemetry::Telemetry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted 2-feature policy tree, varied by seed.
fn policy_tree(seed: u64, leaves: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let x: Vec<Vec<f64>> = (0..160)
        .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..9.0)])
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 3.0 + xi[1] * 0.5) as usize) % 5)
        .collect();
    fit(
        &Dataset::classification(x, y, 5).unwrap(),
        &TreeConfig {
            max_leaf_nodes: leaves,
            ..Default::default()
        },
    )
    .unwrap()
}

fn request_features(k: u64, salt: u64) -> Vec<f64> {
    let h = metis::nn::par::mix_seed(k ^ salt);
    vec![(h % 1000) as f64 / 1000.0, ((h >> 10) % 9) as f64]
}

/// A virtual-time schedule: waves of `(advance-to time, session ids)`,
/// with an optional mid-run hot swap `(time, tree seed)` applied from
/// the driver thread between waves.
struct Schedule {
    waves: Vec<(f64, Vec<u64>)>,
    swap: Option<(usize, u64)>,
    salt: u64,
}

/// Drive `schedule` through a telemetry-enabled fabric at the given
/// knobs; returns (response fingerprint, telemetry digest, trace JSON).
fn run_schedule(
    schedule: &Schedule,
    threads: usize,
    shards: usize,
    stripe: usize,
    plane: Telemetry,
) -> (u64, u64, String) {
    let clock = Clock::virtual_at(0.0);
    let router = Router::new(
        vec![TenantSpec::new("t")],
        vec![ScenarioSpec::new("s", "t", policy_tree(1, 12))
            .shards(shards)
            .shadow(ShadowConfig {
                audit_rows: 16,
                policy: PromotePolicy::AfterAudit,
            })],
        FabricConfig {
            serve: ServeConfig {
                max_batch: usize::MAX,                // composition = exactly one wave
                max_delay: Duration::from_secs(3600), // never consulted
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
            mirror_batch: 0,
            clock: Arc::clone(&clock),
            telemetry: plane.clone(),
        },
    );
    let mut handle = router.handle();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        fingerprint ^= v;
        fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (wave_idx, (at_s, sessions)) in schedule.waves.iter().enumerate() {
        if let Some((swap_wave, seed)) = schedule.swap {
            if swap_wave == wave_idx {
                router.publish("s", policy_tree(seed, 8));
            }
        }
        clock.advance_to(*at_s);
        for &session in sessions {
            handle.submit(0, session, request_features(session, schedule.salt));
        }
        for resp in handle.collect() {
            eat(resp.id);
            eat(resp.response.epoch);
            eat(resp.response.prediction.class() as u64);
        }
    }
    drop(handle);
    let digest = plane.digest();
    let trace = plane.chrome_trace_json();
    router.shutdown();
    (fingerprint, digest, trace)
}

proptest! {
    /// The tentpole pin: for any schedule, the virtual-time telemetry
    /// digest and the full trace JSON are bit-identical across thread
    /// counts and stripe widths — and so are the responses.
    #[test]
    fn virtual_time_telemetry_is_bit_identical_across_thread_counts(
        n_waves in 1usize..5,
        wave_seed in 0u64..1_000,
        shards in 1usize..3,
        swap_on in 0u64..2,
    ) {
        let mut rng = StdRng::seed_from_u64(wave_seed ^ 0x7E1E);
        let mut t = 0.0;
        let waves: Vec<(f64, Vec<u64>)> = (0..n_waves)
            .map(|_| {
                t += rng.gen_range(0.05..1.5);
                let n = rng.gen_range(1..24usize);
                (t, (0..n).map(|_| rng.gen_range(0..40u64)).collect())
            })
            .collect();
        let schedule = Schedule {
            swap: (swap_on == 1 && n_waves > 1).then(|| (n_waves / 2, wave_seed + 7)),
            waves,
            salt: wave_seed,
        };
        let mut baseline: Option<(u64, u64, String)> = None;
        for threads in thread_counts() {
            for stripe in [4usize, 64] {
                let plane = Telemetry::from_env();
                let got = run_schedule(&schedule, threads, shards, stripe, plane.clone());
                if plane.is_enabled() {
                    prop_assert!(
                        got.1 != 0 || plane.scopes().is_empty(),
                        "enabled plane with scopes digests nonzero"
                    );
                } else {
                    prop_assert_eq!(got.1, 0, "disabled plane must digest zero");
                }
                match &baseline {
                    None => baseline = Some(got),
                    Some(b) => {
                        prop_assert_eq!(got.0, b.0, "responses drifted (threads={}, stripe={})", threads, stripe);
                        prop_assert_eq!(got.1, b.1, "telemetry digest drifted (threads={}, stripe={})", threads, stripe);
                        prop_assert_eq!(&got.2, &b.2, "trace JSON drifted (threads={}, stripe={})", threads, stripe);
                    }
                }
            }
        }
    }
}

/// The disabled plane is inert — no scopes, digest 0, an empty trace —
/// and serving behaviour is identical with the plane on or off.
#[test]
fn disabled_plane_is_inert_and_behaviour_invariant() {
    let schedule = Schedule {
        waves: vec![
            (0.5, (0..20u64).collect()),
            (1.25, (5..30u64).collect()),
            (3.0, (0..10u64).collect()),
        ],
        swap: Some((1, 42)),
        salt: 9,
    };
    let off = Telemetry::off();
    let (fp_off, digest_off, trace_off) = run_schedule(&schedule, 2, 2, 16, off.clone());
    assert_eq!(digest_off, 0);
    assert!(off.scopes().is_empty());
    assert!(
        !trace_off.contains("\"ph\":\"X\""),
        "a disabled plane exports no duration events"
    );
    let on = Telemetry::enabled();
    let (fp_on, digest_on, trace_on) = run_schedule(&schedule, 2, 2, 16, on.clone());
    assert_eq!(
        fp_on, fp_off,
        "observability must never change what is served"
    );
    assert_ne!(digest_on, 0, "an enabled plane digests its surfaces");
    assert_eq!(on.scopes().len(), 3, "2 shards + 1 control scope");
    assert!(trace_on.contains("\"traceEvents\""));
    assert!(trace_on.len() > trace_off.len());
}
