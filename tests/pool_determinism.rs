//! Proptest suite pinning the persistent worker pool to the retained
//! spawn-per-call reference: pool-backed execution must be
//! **bit-identical** to `metis::nn::par::reference::parallel_map_indexed`
//! for every thread count, under nesting (a pipeline's stages inside a
//! `WorkloadRunner` workload), and regardless of workload submission
//! order — for plain maps, the seeded collection loop, and the §4 mask
//! search.
//!
//! Thread counts default to 1/2/3/8; set `METIS_TEST_THREADS=<n>` to
//! test an additional setting (CI runs the suite under two values).

use metis::core::{Workload, WorkloadRunner};
use metis::hypergraph::{optimize_mask, MaskConfig, MaskResult, MaskedMlp, OutputKind};
use metis::nn::{Activation, Mlp};
use metis::rl::env::test_envs::BanditEnv;
use metis::rl::{
    collect_seeded, CollectConfig, Controller, NetworkValue, SampledState, SoftmaxPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

fn assert_states_bit_identical(a: &[SampledState], b: &[SampledState], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length diverges");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.obs, y.obs, "{label}: obs diverges");
        assert_eq!(
            x.teacher_action, y.teacher_action,
            "{label}: action diverges"
        );
        assert_eq!(
            x.weight.to_bits(),
            y.weight.to_bits(),
            "{label}: weight diverges"
        );
    }
}

/// A small real collection setup: network teacher (batched labels) and
/// network critic (batched Eq.-1 values) over a bandit pool.
struct CollectSetup {
    pool: Vec<BanditEnv>,
    teacher: SoftmaxPolicy<Mlp>,
    critic: NetworkValue<Mlp>,
    cfg: CollectConfig,
}

impl CollectSetup {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        CollectSetup {
            pool: (0..3).map(|s| BanditEnv::new(4, 10, s)).collect(),
            teacher: SoftmaxPolicy::new(Mlp::new(
                &[4, 6, 4],
                Activation::Tanh,
                Activation::Linear,
                &mut rng,
            )),
            critic: NetworkValue::new(Mlp::new(
                &[4, 5, 1],
                Activation::Tanh,
                Activation::Linear,
                &mut rng,
            )),
            cfg: CollectConfig {
                episodes: 4,
                max_steps: 8,
                gamma: 0.97,
                weighted: true,
            },
        }
    }

    fn collect(&self, seed: u64, threads: usize) -> Vec<SampledState> {
        collect_seeded(
            &self.pool,
            &self.teacher,
            &self.critic,
            &Controller::Teacher,
            &self.cfg,
            seed,
            threads,
        )
    }
}

/// A small mask-search setup over an MLP feature mask.
fn mask_search(seed: u64, threads: usize) -> MaskResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Mlp::new(&[5, 8, 3], Activation::Tanh, Activation::Linear, &mut rng);
    let obs: Vec<Vec<f64>> = (0..12)
        .map(|r| (0..5).map(|c| ((r * 5 + c) as f64 * 0.17).sin()).collect())
        .collect();
    let system = MaskedMlp::new(&net, obs, OutputKind::Discrete).block_rows(4);
    let cfg = MaskConfig {
        steps: 4,
        threads,
        ..Default::default()
    };
    optimize_mask(&system, &cfg)
}

fn assert_masks_bit_identical(a: &MaskResult, b: &MaskResult, label: &str) {
    assert_eq!(a.mask.len(), b.mask.len(), "{label}: mask length");
    for (x, y) in a.mask.iter().zip(b.mask.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: mask diverges");
    }
    for (x, y) in a.loss_history.iter().zip(b.loss_history.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: loss diverges");
    }
}

proptest! {
    /// The pool-backed map is bit-identical to the spawn-based reference
    /// for random sizes — including n == 0 and n < workers — and every
    /// thread count.
    #[test]
    fn prop_pool_map_matches_spawn_reference(n in 0usize..70, salt in 0u64..10_000) {
        let f = |i: usize| metis::nn::par::mix_seed(salt ^ (i as u64) << 7);
        for threads in thread_counts() {
            let pooled = metis::nn::par::parallel_map_indexed(n, threads, f);
            let spawned = metis::nn::par::reference::parallel_map_indexed(n, threads, f);
            prop_assert_eq!(&pooled, &spawned, "n={} threads={}", n, threads);
        }
    }

    /// Seeded collection through the pool: identical output for every
    /// thread count, and identical when the whole collection runs nested
    /// inside a WorkloadRunner workload (pipeline-inside-runner nesting).
    #[test]
    fn prop_collect_seeded_pool_and_nesting_invariant(setup_seed in 0u64..40, seed in 0u64..1000) {
        let setup = CollectSetup::new(setup_seed);
        let solo = setup.collect(seed, 1);
        for threads in thread_counts() {
            let threaded = setup.collect(seed, threads);
            assert_states_bit_identical(&solo, &threaded, "threads sweep");
        }
        let nested = WorkloadRunner::new(2).run(
            (0..3)
                .map(|k| {
                    let setup = &setup;
                    Workload::new(format!("collect-{k}"), move || setup.collect(seed, 3))
                })
                .collect(),
        );
        for result in &nested {
            assert_states_bit_identical(&solo, &result.value, "nested in runner");
        }
    }

    /// The §4 mask search through the pool: identical ranked masks and
    /// losses for every thread count, alone or sharded across workloads.
    #[test]
    fn prop_mask_search_pool_and_nesting_invariant(seed in 0u64..60) {
        let solo = mask_search(seed, 1);
        for threads in thread_counts() {
            let threaded = mask_search(seed, threads);
            assert_masks_bit_identical(&solo, &threaded, "threads sweep");
        }
        let nested = WorkloadRunner::new(2).run(
            (0..2)
                .map(|k| Workload::new(format!("mask-{k}"), move || mask_search(seed, 2)))
                .collect(),
        );
        for result in &nested {
            assert_masks_bit_identical(&solo, &result.value, "nested in runner");
        }
    }

    /// Workload submission order never changes any workload's result —
    /// only the order of the (name-keyed) result vector, which follows
    /// submission order exactly.
    #[test]
    fn prop_submission_order_invariant(setup_seed in 0u64..20, rot in 0usize..3) {
        let setup = CollectSetup::new(setup_seed);
        let seeds = [11u64, 22, 33];
        let submit = |order: Vec<usize>| {
            WorkloadRunner::new(2).run(
                order
                    .iter()
                    .map(|&k| {
                        let setup = &setup;
                        let seed = seeds[k];
                        Workload::new(format!("w{k}"), move || setup.collect(seed, 2))
                    })
                    .collect(),
            )
        };
        let forward = submit(vec![0, 1, 2]);
        let rotated = submit((0..3).map(|i| (i + rot) % 3).collect());
        for result in &rotated {
            let twin = forward
                .iter()
                .find(|r| r.name == result.name)
                .expect("same workload present in both submissions");
            assert_states_bit_identical(&twin.value, &result.value, "submission order");
        }
    }
}
