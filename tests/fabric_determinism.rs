//! Proptest suite pinning the serving fabric to the PR 4 single-server
//! path and to the sequential oracle:
//!
//! * a **1-model / 1-shard / 1-tenant** fabric answers bit-identically to
//!   a plain [`metis::serve::TreeServer`] fed the same requests, for any
//!   micro-batch size, flush deadline, thread count, and stripe width —
//!   the fabric is a strict generalization, not a new execution semantics;
//! * a **1-tree [`metis::dt::Forest`]** published into the fabric answers
//!   bit-identically to publishing its tree directly — ensemble epochs
//!   change nothing when the vote is a vote of one;
//! * any-shard-count fabrics keep every answer bit-identical to
//!   `DecisionTree::predict` while holding **session→shard affinity**
//!   exactly at [`metis::fabric::shard_for_session`]'s pure hash (stable
//!   across thread counts and interleavings);
//! * **shadow serving** diffs clean (and promotes) for an identical
//!   staged tree and reports nonzero mismatches (and rejects) for a
//!   perturbed one, with live traffic never touched by a rejected
//!   candidate.
//!
//! Thread counts default to 1/2/3/8; set `METIS_TEST_THREADS=<n>` to test
//! an additional setting (CI runs the suite under two values).

use metis::dt::{fit, Dataset, DecisionTree, TreeConfig};
use metis::fabric::{
    shard_for_session, FabricConfig, PromotePolicy, Router, ScenarioSpec, ShadowConfig, TenantSpec,
};
use metis::serve::{ModelRegistry, ServeConfig, TreeServer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const DIMS: usize = 5;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted multi-class tree over DIMS features, varied by seed.
fn fitted_tree(seed: u64) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 4.0 + xi[2] * 3.0 + xi[4] * 2.0) as usize) % 4)
        .collect();
    let ds = Dataset::classification(x, y, 4).unwrap();
    fit(
        &ds,
        &TreeConfig {
            max_leaf_nodes: 20,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Request features: deterministic in the request id, with NaNs injected
/// into every fifth request to keep the comparator hazard on the fabric
/// path too.
fn request_features(k: u64, salt: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(salt ^ k.wrapping_mul(0x9E3779B97F4A7C15));
    let mut v: Vec<f64> = (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect();
    if k % 5 == 4 {
        v[(k % DIMS as u64) as usize] = f64::NAN;
    }
    v
}

fn serve_cfg(batch: usize, deadline_us: u64, threads: usize, stripe: usize) -> ServeConfig {
    ServeConfig {
        max_batch: batch,
        max_delay: Duration::from_micros(deadline_us),
        threads,
        stripe_rows: stripe,
        ..Default::default()
    }
}

proptest! {
    /// The acceptance bar: a 1-model/1-shard/1-tenant fabric is
    /// bit-identical to the PR 4 `TreeServer` path — same predictions,
    /// same epochs, same id order, zero drops — across batch sizes,
    /// deadlines, thread counts, and stripe widths.
    #[test]
    fn prop_minimal_fabric_bit_identical_to_tree_server(
        tree_seed in 0u64..25,
        batch in 1usize..48,
        deadline_us in 0u64..400,
        stripe in 1usize..32,
        n in 1u64..120,
        salt in 0u64..10_000,
    ) {
        let tree = fitted_tree(tree_seed);
        let threads = thread_counts()[(salt % 5 % thread_counts().len() as u64) as usize];
        let cfg = serve_cfg(batch, deadline_us, threads, stripe);

        // PR 4 path: one TreeServer.
        let server = TreeServer::start(Arc::new(ModelRegistry::new(tree.clone())), cfg.clone());
        let mut server_handle = server.handle();
        for k in 0..n {
            server_handle.submit(request_features(k, salt));
        }
        let baseline = server_handle.collect();
        let baseline_report = server.shutdown();

        // Fabric path: one scenario, one shard, one tenant.
        let router = Router::new(
            vec![TenantSpec::new("only")],
            vec![ScenarioSpec::new("model", "only", tree.clone())],
            FabricConfig { serve: cfg, mirror_batch: 0, ..Default::default() },
        );
        let mut handle = router.handle();
        for k in 0..n {
            handle.submit(0, k, request_features(k, salt));
        }
        let fabric = handle.collect();
        drop(handle);
        let report = router.shutdown();

        prop_assert_eq!(baseline.len() as u64, n);
        prop_assert_eq!(fabric.len() as u64, n);
        for (a, b) in baseline.iter().zip(fabric.iter()) {
            prop_assert_eq!(a.id, b.id, "submission order must align");
            prop_assert_eq!(b.shard, 0usize);
            prop_assert_eq!(a.epoch, b.response.epoch);
            match (a.prediction, b.response.prediction) {
                (metis::dt::Prediction::Class(x), metis::dt::Prediction::Class(y)) =>
                    prop_assert_eq!(x, y, "class diverges from the single-server path"),
                (metis::dt::Prediction::Value(x), metis::dt::Prediction::Value(y)) =>
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "value diverges"),
                _ => prop_assert!(false, "prediction kinds diverge"),
            }
        }
        prop_assert_eq!(report.served, baseline_report.served);
        prop_assert_eq!(report.scenarios[0].shards[0].delivery_failures, 0);
        prop_assert_eq!(report.latency_rollup.count as u64, n);
    }

    /// The ensemble acceptance bar: a **1-tree `Forest`** published into
    /// the fabric is bit-identical to publishing the tree itself — same
    /// predictions, same epochs, same id order, zero drops — for any
    /// batch size, deadline, thread count, stripe width, and NaN-laden
    /// rows. A vote of one must not be a new execution semantics.
    #[test]
    fn prop_one_tree_forest_fabric_bit_identical_to_tree_fabric(
        tree_seed in 0u64..25,
        batch in 1usize..48,
        deadline_us in 0u64..400,
        stripe in 1usize..32,
        n in 1u64..120,
        salt in 0u64..10_000,
    ) {
        let tree = fitted_tree(tree_seed);
        let threads = thread_counts()[(salt % 5 % thread_counts().len() as u64) as usize];
        let cfg = serve_cfg(batch, deadline_us, threads, stripe);

        let run = |as_forest: bool| {
            let router = Router::new(
                vec![TenantSpec::new("only")],
                vec![ScenarioSpec::new("model", "only", tree.clone())],
                FabricConfig { serve: cfg.clone(), mirror_batch: 0, ..Default::default() },
            );
            // Same epoch schedule on both sides: epoch 1 is the tree
            // itself on one, a 1-tree forest over it on the other.
            if as_forest {
                router.publish_forest("model", vec![tree.clone()]);
            } else {
                router.publish("model", tree.clone());
            }
            let mut handle = router.handle();
            for k in 0..n {
                handle.submit(0, k, request_features(k, salt));
            }
            let responses = handle.collect();
            drop(handle);
            (responses, router.shutdown())
        };
        let (tree_resp, tree_report) = run(false);
        let (forest_resp, forest_report) = run(true);

        prop_assert_eq!(tree_resp.len() as u64, n);
        prop_assert_eq!(forest_resp.len() as u64, n);
        for (a, b) in tree_resp.iter().zip(forest_resp.iter()) {
            prop_assert_eq!(a.id, b.id, "submission order must align");
            prop_assert_eq!(a.response.epoch, b.response.epoch, "epoch diverges");
            match (a.response.prediction, b.response.prediction) {
                (metis::dt::Prediction::Class(x), metis::dt::Prediction::Class(y)) =>
                    prop_assert_eq!(x, y, "1-tree forest vote diverges from its tree"),
                (metis::dt::Prediction::Value(x), metis::dt::Prediction::Value(y)) =>
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "value diverges"),
                _ => prop_assert!(false, "prediction kinds diverge"),
            }
        }
        prop_assert_eq!(forest_report.served, tree_report.served);
        prop_assert_eq!(forest_report.scenarios[0].live_trees, 1usize);
        prop_assert_eq!(forest_report.scenarios[0].live_epoch, 1u64);
        prop_assert_eq!(forest_report.scenarios[0].shards[0].delivery_failures, 0u64);
    }

    /// Sharded fabrics: every answer still matches the sequential oracle,
    /// and the shard every response reports is exactly the session hash —
    /// for any shard count, batch shape, and thread count.
    #[test]
    fn prop_sharded_fabric_oracle_and_affinity(
        tree_seed in 0u64..20,
        shards in 1usize..5,
        batch in 1usize..32,
        sessions in 1u64..12,
        n in 1u64..150,
        salt in 0u64..10_000,
    ) {
        let tree = fitted_tree(tree_seed);
        let threads = thread_counts()[(salt % thread_counts().len() as u64) as usize];
        let router = Router::new(
            vec![TenantSpec::new("only")],
            vec![ScenarioSpec::new("model", "only", tree.clone()).shards(shards)],
            FabricConfig {
                serve: serve_cfg(batch, 200, threads, 8),
                mirror_batch: 0,
                ..Default::default()
            },
        );
        let mut handle = router.handle();
        for k in 0..n {
            handle.submit(0, k % sessions, request_features(k, salt));
        }
        let responses = handle.collect();
        drop(handle);
        prop_assert_eq!(responses.len() as u64, n, "zero drops");
        for resp in &responses {
            prop_assert_eq!(resp.session, resp.id % sessions);
            prop_assert_eq!(
                resp.shard,
                shard_for_session(resp.session, shards),
                "routing must equal the pure session hash"
            );
            let oracle = tree.predict(&request_features(resp.id, salt));
            match (resp.response.prediction, oracle) {
                (metis::dt::Prediction::Class(x), metis::dt::Prediction::Class(y)) =>
                    prop_assert_eq!(x, y, "class diverges from oracle"),
                (metis::dt::Prediction::Value(x), metis::dt::Prediction::Value(y)) =>
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "value diverges"),
                _ => prop_assert!(false, "prediction kinds diverge"),
            }
        }
        let report = router.shutdown();
        prop_assert_eq!(report.served, n);
        prop_assert_eq!(
            report.scenarios[0].shards.iter().map(|s| s.served).sum::<u64>(),
            n,
            "per-shard serves must add up"
        );
        prop_assert_eq!(report.scenarios[0].latency.count as u64, n);
    }

    /// Shadow audit: an identical staged tree diffs clean on mirrored
    /// traffic and promotes; a perturbed tree reports nonzero mismatches
    /// and (under OnZeroDiff) never serves a request.
    #[test]
    fn prop_shadow_zero_diff_promotes_perturbed_rejects(
        tree_seed in 0u64..20,
        audit_rows in 1usize..80,
        n in 80u64..200,
        salt in 0u64..10_000,
    ) {
        let tree = fitted_tree(tree_seed);
        let perturbed = metis::dt::prune_to_leaves(&tree, 2);
        for (candidate, expect_promote) in [(tree.clone(), true), (perturbed, false)] {
            let router = Router::new(
                vec![TenantSpec::new("only")],
                vec![ScenarioSpec::new("model", "only", tree.clone()).shadow(ShadowConfig {
                    audit_rows,
                    policy: PromotePolicy::OnZeroDiff,
                })],
                FabricConfig {
                    serve: serve_cfg(16, 200, 1, 8),
                    mirror_batch: 8,
                    ..Default::default()
                },
            );
            router.stage("model", candidate);
            let mut handle = router.handle();
            for k in 0..n {
                handle.submit(0, k, request_features(k, salt));
            }
            let responses = handle.collect();
            drop(handle);
            let report = router.shutdown();
            let shadow = &report.scenarios[0].shadow;
            prop_assert_eq!(responses.len() as u64, n);
            prop_assert!(shadow.mirrored_rows >= audit_rows as u64, "audit starved");
            if expect_promote {
                prop_assert_eq!(shadow.promotions.len(), 1, "clean candidate must promote");
                prop_assert_eq!(shadow.promotions[0].mismatches, 0usize);
                prop_assert_eq!(shadow.mismatch_rows, 0u64);
                prop_assert_eq!(report.scenarios[0].live_epoch, 1);
            } else {
                prop_assert_eq!(shadow.rejected, 1, "dirty candidate must be rejected");
                prop_assert!(shadow.mismatch_rows > 0, "diffs must be reported");
                prop_assert_eq!(report.scenarios[0].live_epoch, 0);
                // The rejected candidate never influenced an answer.
                for resp in &responses {
                    prop_assert_eq!(resp.response.epoch, 0);
                }
            }
        }
    }
}

/// The session-hash stability satellite, pinned outside proptest so the
/// exact values are part of the repo's contract: the mapping is a pure
/// function — identical across repeated calls, thread counts, and
/// processes — and golden values guard against the hash ever changing
/// silently (which would break cross-restart affinity).
#[test]
fn session_hash_is_stable_across_threads_and_pinned() {
    let expected: Vec<usize> = (0..64u64).map(|s| shard_for_session(s, 7)).collect();
    let per_thread: Vec<Vec<usize>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let expected = &expected;
                scope.spawn(move || {
                    let got: Vec<usize> = (0..64u64).map(|s| shard_for_session(s, 7)).collect();
                    assert_eq!(&got, expected);
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for thread_view in &per_thread {
        assert_eq!(thread_view, &expected);
    }
    // Golden pins: SplitMix64 finalize of the session id, mod shards.
    assert_eq!(shard_for_session(0, 7), 0);
    assert_eq!(shard_for_session(1, 7), 6);
    assert_eq!(shard_for_session(42, 7), 3);
    assert_eq!(shard_for_session(17, 3), shard_for_session(17, 3));
    assert_eq!(
        shard_for_session(u64::MAX, 2),
        shard_for_session(u64::MAX, 2)
    );
    for shards in 1..9 {
        for s in 0..100 {
            assert!(shard_for_session(s, shards) < shards);
        }
    }
}
