//! Determinism suite for the streaming health plane (`metis::obs`) on
//! the serving fabric and the closed-loop co-simulation:
//!
//! * **Schedule purity (co-sim)** — with observer ticks scheduled as
//!   `metis_sim` events, the whole health surface — tick count, alert
//!   stream (fires, clears, severities, attributions), and the
//!   [`metis::obs::HealthReport`] digest — is a pure function of the
//!   submission/swap/tick schedule: **bit-identical** across worker
//!   thread counts and shard stripe widths, including a mid-run model
//!   hot swap.
//! * **Alert lifecycle (fabric)** — a fixed virtual-time schedule with a
//!   calm → hot → calm latency profile drives every monitor through its
//!   full lifecycle: fast-burn and slow-burn fire with stage
//!   attribution, drift fires on the quantile shift, and all of them
//!   clear under hysteresis — identically at every thread count.
//! * **Disabled plane** — under [`Telemetry::off`] the observer is
//!   inert (no ticks observed, no alerts, no scopes) and serving
//!   behaviour is bit-identical with the observer on or off.
//!
//! The plane under test comes from [`Telemetry::from_env`] where noted,
//! so CI's `METIS_TELEMETRY=0` runs push the same schedules through the
//! disabled plane (alert/digest assertions gate on
//! [`Telemetry::is_enabled`]).
//!
//! Thread counts sweep 1/2/8 plus an optional CI-injected
//! `METIS_TEST_THREADS=<n>`.

use metis::abr::{hsdpa_corpus, NetworkTrace, VideoModel, OBS_DIM};
use metis::dt::{fit, Dataset, DecisionTree, TreeConfig};
use metis::fabric::{FabricConfig, Router, ScenarioSpec, TenantSpec};
use metis::obs::{Alert, ObserverConfig};
use metis::serve::{Clock, ServeConfig};
use metis::sim::{run_abr_cosim_observed, CosimConfig, ModelSwap};
use metis::telemetry::Telemetry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted ABR policy tree over the 25-feature observation, varied by
/// seed.
fn abr_tree(seed: u64, classes: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let x: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..OBS_DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[1] * 3.0 + xi[9] * 2.0 + xi[0]) as usize) % classes)
        .collect();
    fit(
        &Dataset::classification(x, y, classes).unwrap(),
        &TreeConfig {
            max_leaf_nodes: 12,
            ..Default::default()
        },
    )
    .unwrap()
}

/// The full alert stream, flattened to a bit-exact fingerprint string
/// (floats by `to_bits`, attribution included) for cross-run comparison.
fn alert_fingerprint(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&format!(
            "#{} t={:x} {}/dc{} {} firing={} sev={:x}",
            a.seq,
            a.time_s.to_bits(),
            a.tenant,
            a.deadline_class,
            a.kind.name(),
            a.firing,
            a.severity.to_bits(),
        ));
        for s in &a.attribution {
            out.push_str(&format!(
                " [{} mass={:x} share={:x}]",
                s.stage,
                s.mass_s.to_bits(),
                s.share.to_bits()
            ));
        }
        out.push('\n');
    }
    out
}

/// A virtual-clock router whose single tenant carries a finite p99
/// budget, so burn monitors have something to burn.
fn budgeted_router(
    initial: DecisionTree,
    budget_s: f64,
    shards: usize,
    threads: usize,
    stripe: usize,
    plane: Telemetry,
) -> Router {
    Router::new(
        vec![TenantSpec {
            name: "abr".into(),
            deadline_class: 1,
            p99_budget_s: budget_s,
        }],
        vec![ScenarioSpec::new("pensieve", "abr", initial).shards(shards)],
        FabricConfig {
            serve: ServeConfig {
                max_batch: 512,
                max_delay: Duration::from_secs(3600), // never consulted
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
            mirror_batch: 0,
            clock: Clock::virtual_at(0.0),
            telemetry: plane,
        },
    )
}

proptest! {
    /// The tentpole pin: an observed co-simulation's health surface —
    /// tick count, alert stream, report digest — is bit-identical across
    /// thread counts and stripe widths for any session count, seed, and
    /// mid-run hot-swap time. Requests inside a decision wave stamp at
    /// their own event times, so in-wave queueing spread is nonzero and
    /// the tight tenant budget genuinely exercises the burn monitors.
    #[test]
    fn observed_cosim_health_is_bit_identical_across_thread_counts(
        tree_seed in 0u64..4,
        sessions in 2usize..8,
        swap_at_s in 0.0f64..60.0,
        seed in 0u64..10_000,
    ) {
        let video = Arc::new(VideoModel::standard(8, 5));
        let classes = video.n_qualities();
        let traces: Vec<Arc<NetworkTrace>> =
            hsdpa_corpus(3, 11).into_iter().map(Arc::new).collect();
        let initial = abr_tree(tree_seed, classes);
        let swaps = vec![ModelSwap {
            at_s: swap_at_s,
            trees: vec![abr_tree(tree_seed + 7, classes)],
        }];
        let cfg = CosimConfig {
            sessions,
            seed,
            start_window_s: 4.0,
            decision_quantum_s: 0.25,
            wave_cap: 64,
        };
        let obs_cfg = ObserverConfig {
            tick_s: 5.0,
            fast_window: 2,
            slow_window: 6,
            baseline_window: 4,
            clear_ticks: 1,
            ..Default::default()
        };
        let mut baseline: Option<(u64, u64, u64, String)> = None;
        for threads in thread_counts() {
            for stripe in [4usize, 64] {
                let plane = Telemetry::from_env();
                let router = budgeted_router(
                    initial.clone(), 0.02, 2, threads, stripe, plane.clone());
                let obs = router.observer(obs_cfg.clone());
                let report = run_abr_cosim_observed(
                    &router, "pensieve", &video, &traces, &swaps, &cfg, Some(&obs));
                let health = obs.health_report();
                let got = (
                    report.qoe_digest,
                    report.ticks,
                    obs.digest(),
                    alert_fingerprint(&obs.alerts()),
                );
                router.shutdown();
                if plane.is_enabled() {
                    prop_assert!(report.ticks > 0, "scheduled ticks reached the observer");
                    prop_assert_eq!(health.ticks, report.ticks);
                } else {
                    prop_assert_eq!(health.ticks, 0, "disabled plane: ticks no-op");
                    prop_assert!(got.3.is_empty(), "disabled plane: no alerts");
                }
                match &baseline {
                    None => baseline = Some(got),
                    Some(b) => {
                        prop_assert_eq!(got.0, b.0, "QoE drifted (threads={}, stripe={})", threads, stripe);
                        prop_assert_eq!(got.1, b.1, "tick count drifted (threads={}, stripe={})", threads, stripe);
                        prop_assert_eq!(got.2, b.2, "health digest drifted (threads={}, stripe={})", threads, stripe);
                        prop_assert_eq!(&got.3, &b.3, "alert stream drifted (threads={}, stripe={})", threads, stripe);
                    }
                }
            }
        }
    }
}

/// Drive one calm → hot → calm schedule through a budgeted fabric with
/// manual observer ticks at quiescent points; returns everything the
/// lifecycle assertions need plus bit-exact comparison surfaces.
fn run_lifecycle(threads: usize, stripe: usize, plane: Telemetry) -> (u64, u64, String, String) {
    let clock = Clock::virtual_at(0.0);
    let router = Router::new(
        vec![TenantSpec {
            name: "abr".into(),
            deadline_class: 1,
            p99_budget_s: 0.1,
        }],
        vec![ScenarioSpec::new("pensieve", "abr", abr_tree(1, 5)).shards(2)],
        FabricConfig {
            serve: ServeConfig {
                max_batch: usize::MAX,
                max_delay: Duration::from_secs(3600),
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
            mirror_batch: 0,
            clock: Arc::clone(&clock),
            telemetry: plane.clone(),
        },
    );
    let obs = router.observer(ObserverConfig {
        fast_window: 1,
        slow_window: 4,
        baseline_window: 2,
        clear_ticks: 1,
        drift_buckets: 4,
        ..Default::default()
    });
    let mut handle = router.handle();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        fingerprint ^= v;
        fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
    };
    // Each phase: submit a 20-request wave with the clock advancing
    // `gap_s` between submissions. Under a virtual clock the batch
    // closes at its *latest* submit stamp, so request `i`'s latency is
    // `(19 - i) * gap_s` — a pure function of the schedule. Budget is
    // 0.1s: 1ms gaps keep the whole wave under it (calm), the 100ms-gap
    // wave pushes 18 of 20 requests over it (hot).
    let mut t = 0.0;
    for (phase, gap_s) in [0.001, 0.001, 0.1, 0.001, 0.001, 0.001, 0.001]
        .into_iter()
        .enumerate()
    {
        if phase == 4 {
            // Mid-run hot swap, between waves like the co-sim does it.
            router.publish("pensieve", abr_tree(9, 5));
        }
        t += 4.0;
        for k in 0..20u64 {
            clock.advance_to(t + k as f64 * gap_s);
            let salt = ((phase as u64) << 32) | k;
            let h = metis::nn::par::mix_seed(salt);
            let features: Vec<f64> = (0..OBS_DIM)
                .map(|i| ((h >> (i % 48)) & 0x3ff) as f64 / 1023.0)
                .collect();
            handle.submit(0, k % 7, features);
        }
        for resp in handle.collect() {
            eat(resp.id);
            eat(resp.response.epoch);
            eat(resp.response.prediction.class() as u64);
        }
        obs.tick_now();
    }
    drop(handle);
    let digest = obs.digest();
    let alerts = alert_fingerprint(&obs.alerts());
    let prom = obs.prometheus_text();
    router.shutdown();
    (fingerprint, digest, alerts, prom)
}

/// A fixed calm → hot → calm schedule walks every monitor through fire
/// and clear, with stage attribution on the fires — and the whole
/// lifecycle (alert stream, digest, Prometheus text) is bit-identical
/// at every thread count.
#[test]
fn alert_lifecycle_fires_attributes_and_clears_identically_across_threads() {
    let mut baseline: Option<(u64, u64, String, String)> = None;
    for threads in thread_counts() {
        let plane = Telemetry::from_env();
        let got = run_lifecycle(threads, 16, plane.clone());
        if plane.is_enabled() {
            // The hot wave fires both burn monitors and the drift
            // monitor; the calm tail clears all three.
            for kind in ["fast_burn", "slow_burn", "drift"] {
                assert!(
                    got.2.contains(&format!("{kind} firing=true")),
                    "{kind} never fired:\n{}",
                    got.2
                );
                assert!(
                    got.2.contains(&format!("{kind} firing=false")),
                    "{kind} never cleared:\n{}",
                    got.2
                );
            }
            // Fires carry stage attribution (the hot window has mass).
            let first_fire = got.2.lines().find(|l| l.contains("firing=true")).unwrap();
            assert!(
                first_fire.contains("[queue_wait") || first_fire.contains("[kernel"),
                "fire lacks stage attribution: {first_fire}"
            );
            assert!(got.3.contains("metis_tenant_slo_firing"));
            assert!(got.3.contains("metis_tenant_burn_rate"));
        } else {
            assert!(got.2.is_empty(), "disabled plane: no alerts");
        }
        match &baseline {
            None => baseline = Some(got),
            Some(b) => {
                assert_eq!(got.0, b.0, "responses drifted (threads={threads})");
                assert_eq!(got.1, b.1, "health digest drifted (threads={threads})");
                assert_eq!(got.2, b.2, "alert stream drifted (threads={threads})");
                assert_eq!(got.3, b.3, "prometheus text drifted (threads={threads})");
            }
        }
    }
}

/// The disabled plane leaves the observer inert — zero observed ticks,
/// no alerts, no scope series — and what is served is bit-identical
/// with the plane on or off.
#[test]
fn disabled_plane_observer_is_inert_and_behaviour_invariant() {
    let off = Telemetry::off();
    let (fp_off, _, alerts_off, prom_off) = run_lifecycle(2, 16, off.clone());
    assert!(alerts_off.is_empty());
    assert!(off.scopes().is_empty());
    assert!(
        !prom_off.contains("{scenario="),
        "disabled plane exposes no scope series"
    );
    let on = Telemetry::enabled();
    let (fp_on, digest_on, alerts_on, prom_on) = run_lifecycle(2, 16, on.clone());
    assert_eq!(
        fp_on, fp_off,
        "health observation must never change what is served"
    );
    assert_ne!(digest_on, 0);
    assert!(!alerts_on.is_empty(), "enabled plane observes the hot wave");
    assert!(prom_on.contains("metis_scope_served_total"));
}
