//! Proptest suite pinning the online serving engine to its sequential
//! oracle: for **any** micro-batch size, flush deadline, thread count,
//! stripe width, and hot-swap interleaving, every response must be
//! bit-identical to evaluating `DecisionTree::predict` on the source tree
//! of the epoch the response reports — including NaN-laden feature
//! vectors, which route right at every split in every evaluator.
//!
//! Thread counts default to 1/2/3/8; set `METIS_TEST_THREADS=<n>` to test
//! an additional setting (CI runs the suite under two values).

use metis::dt::{fit, CompiledTree, Dataset, DecisionTree, Forest, Prediction, TreeConfig};
use metis::serve::{ModelRegistry, ServeConfig, ServedModel, TreeServer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const DIMS: usize = 5;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted multi-class tree over DIMS features, varied by seed.
fn fitted_tree(seed: u64) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 4.0 + xi[2] * 3.0 + xi[4] * 2.0) as usize) % 4)
        .collect();
    let ds = Dataset::classification(x, y, 4).unwrap();
    fit(
        &ds,
        &TreeConfig {
            max_leaf_nodes: 20,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Request features: deterministic in the request id, with NaNs injected
/// into every fifth request to pin the comparator hazard on the live path.
fn request_features(k: u64, salt: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(salt ^ k.wrapping_mul(0x9E3779B97F4A7C15));
    let mut v: Vec<f64> = (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect();
    if k % 5 == 4 {
        v[(k % DIMS as u64) as usize] = f64::NAN;
    }
    v
}

fn assert_prediction_bits(a: Prediction, b: Prediction, label: &str) {
    match (a, b) {
        (Prediction::Class(x), Prediction::Class(y)) => {
            assert_eq!(x, y, "{label}: class diverges")
        }
        (Prediction::Value(x), Prediction::Value(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: value diverges")
        }
        _ => panic!("{label}: prediction kinds diverge"),
    }
}

proptest! {
    /// Micro-batched serving is bit-identical to sequential per-request
    /// evaluation for any batch size, flush deadline, thread count, and
    /// stripe width — the batching schedule may change *when* a request
    /// is answered, never *what* the answer is.
    #[test]
    fn prop_microbatching_never_changes_answers(
        tree_seed in 0u64..30,
        batch in 1usize..48,
        deadline_us in 0u64..400,
        stripe in 1usize..32,
        n in 1u64..140,
        salt in 0u64..10_000,
    ) {
        let tree = fitted_tree(tree_seed);
        let threads = thread_counts()[(salt % 5 % thread_counts().len() as u64) as usize];
        let server = TreeServer::start(
            Arc::new(ModelRegistry::new(tree.clone())),
            ServeConfig {
                max_batch: batch,
                max_delay: Duration::from_micros(deadline_us),
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        for k in 0..n {
            handle.submit(request_features(k, salt));
        }
        let responses = handle.collect();
        prop_assert_eq!(responses.len() as u64, n, "zero drops");
        for resp in &responses {
            prop_assert_eq!(resp.epoch, 0);
            prop_assert!(resp.batch_size >= 1 && resp.batch_size <= batch);
            assert_prediction_bits(
                resp.prediction,
                tree.predict(&request_features(resp.id, salt)),
                "serve vs sequential oracle",
            );
        }
        let report = server.shutdown();
        prop_assert_eq!(report.served, n);
        prop_assert_eq!(report.delivery_failures, 0);
    }

    /// Mid-stream hot swaps: requests keep flowing while new epochs are
    /// published. Every response must match its *own* epoch's tree
    /// (in-flight batches finish on the model they pinned), epochs are
    /// monotone in submission order, and nothing is dropped.
    #[test]
    fn prop_hot_swap_serves_each_epoch_consistently(
        tree_seed in 0u64..20,
        batch in 1usize..24,
        swaps in 1usize..4,
        per_phase in 1u64..40,
        salt in 0u64..10_000,
    ) {
        let sources: Vec<DecisionTree> =
            (0..=swaps as u64).map(|e| fitted_tree(tree_seed ^ (e << 8) ^ 1)).collect();
        let registry = Arc::new(ModelRegistry::new(sources[0].clone()));
        let server = TreeServer::start(
            Arc::clone(&registry),
            ServeConfig {
                max_batch: batch,
                max_delay: Duration::from_micros(200),
                threads: thread_counts()[(salt % thread_counts().len() as u64) as usize],
                stripe_rows: 8,
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        let mut submitted = 0u64;
        for epoch_tree in &sources[1..] {
            for _ in 0..per_phase {
                handle.submit(request_features(submitted, salt));
                submitted += 1;
            }
            registry.publish(epoch_tree.clone());
        }
        for _ in 0..per_phase {
            handle.submit(request_features(submitted, salt));
            submitted += 1;
        }
        let responses = handle.collect();
        prop_assert_eq!(responses.len() as u64, submitted, "zero drops across swaps");
        let mut last_epoch = 0u64;
        for resp in &responses {
            prop_assert!(
                (resp.epoch as usize) < sources.len(),
                "unknown epoch {}", resp.epoch
            );
            prop_assert!(
                resp.epoch >= last_epoch,
                "epochs regressed: {} after {}", resp.epoch, last_epoch
            );
            last_epoch = resp.epoch;
            assert_prediction_bits(
                resp.prediction,
                sources[resp.epoch as usize].predict(&request_features(resp.id, salt)),
                "old-epoch request must get old-epoch answer",
            );
        }
        // The final phase ran after every publish, so the last response
        // must have seen the final epoch.
        prop_assert_eq!(last_epoch, swaps as u64, "final epoch never served");
        let report = server.shutdown();
        prop_assert_eq!(report.served, submitted);
        let per_epoch_total: u64 = report.per_epoch.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(per_epoch_total, submitted);
    }

    /// Ensemble epochs: a k-tree majority-vote forest served through the
    /// micro-batching engine answers bit-identically to the offline
    /// [`Forest`] oracle row-for-row, for any batch size, deadline,
    /// thread count, and stripe width — and a swap from a tree epoch to
    /// a forest epoch mid-stream keeps every response on its own epoch's
    /// model.
    #[test]
    fn prop_forest_epochs_match_offline_forest_oracle(
        tree_seed in 0u64..20,
        batch in 1usize..32,
        deadline_us in 0u64..300,
        stripe in 1usize..24,
        k in 2usize..5,
        n in 1u64..120,
        salt in 0u64..10_000,
    ) {
        let single = fitted_tree(tree_seed);
        let members: Vec<DecisionTree> =
            (0..k as u64).map(|t| fitted_tree(tree_seed ^ ((t + 1) << 9))).collect();
        let forest = Forest::from_trees(&members).unwrap();
        let threads = thread_counts()[(salt % 5 % thread_counts().len() as u64) as usize];
        let registry = Arc::new(ModelRegistry::new(single.clone()));
        let server = TreeServer::start(
            Arc::clone(&registry),
            ServeConfig {
                max_batch: batch,
                max_delay: Duration::from_micros(deadline_us),
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
        );
        let mut handle = server.handle();
        // Phase 1 on the single-tree epoch, then hot-swap to the forest.
        let phase = n / 2;
        for idx in 0..phase {
            handle.submit(request_features(idx, salt));
        }
        registry.publish_model(ServedModel::from_trees(members.clone()).unwrap());
        for idx in phase..n {
            handle.submit(request_features(idx, salt));
        }
        let responses = handle.collect();
        prop_assert_eq!(responses.len() as u64, n, "zero drops across the shape swap");
        let mut last_epoch = 0u64;
        for resp in &responses {
            prop_assert!(resp.epoch <= 1, "unknown epoch {}", resp.epoch);
            prop_assert!(resp.epoch >= last_epoch, "epochs regressed");
            last_epoch = resp.epoch;
            let row = request_features(resp.id, salt);
            let oracle = if resp.epoch == 0 {
                single.predict(&row)
            } else {
                forest.predict(&row)
            };
            assert_prediction_bits(resp.prediction, oracle, "served vs offline ensemble oracle");
        }
        // Every request submitted after the publish saw the forest epoch.
        prop_assert_eq!(last_epoch, 1, "forest epoch never served");
        let report = server.shutdown();
        prop_assert_eq!(report.served, n);
        prop_assert_eq!(report.delivery_failures, 0);
        // Latency is bucketed by ensemble width: only widths 1 and k.
        for (width, _) in &report.per_width {
            prop_assert!(*width == 1 || *width == k, "unexpected width {}", width);
        }
    }

    /// The compiled batch walk used by every flush agrees with both
    /// single-row evaluators on NaN-laden inputs for any chunking — the
    /// backend-level restatement of the engine property above.
    #[test]
    fn prop_compiled_batch_nan_parity(tree_seed in 0u64..40, n in 1usize..100, salt in 0u64..10_000) {
        let tree = fitted_tree(tree_seed);
        let compiled = CompiledTree::compile(&tree);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|k| request_features(k as u64, salt)).collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let batched = compiled.predict_batch(&flat);
        prop_assert_eq!(batched.len(), n);
        for (row, got) in rows.iter().zip(batched.iter()) {
            assert_prediction_bits(*got, tree.predict(row), "batch vs tree");
            assert_prediction_bits(*got, compiled.predict(row), "batch vs single");
            if row.iter().any(|v| v.is_nan()) {
                // NaN fails `<` everywhere: the decision path may only take
                // right edges at NaN-featured splits.
                let mut idx = 0usize;
                while let Some(split) = &tree.node(idx).split {
                    let right =
                        row[split.feature] >= split.threshold || row[split.feature].is_nan();
                    if row[split.feature].is_nan() {
                        prop_assert!(right, "NaN took a left edge");
                    }
                    idx = if right { split.right } else { split.left };
                }
            }
        }
    }
}
