//! Proptest parity suite for the batched inference engine: the batched
//! matrix-matrix paths must be **bit-identical** to their per-obs
//! matrix-vector oracles — for random networks, random inputs, and the
//! full seeded collection loop.

use metis::nn::tape::{sum_batch, BatchTape, Tape};
use metis::nn::{Activation, Matrix, Mlp, Network};
use metis::rl::env::test_envs::BanditEnv;
use metis::rl::{
    collect_seeded, viper, CollectConfig, Controller, NetworkValue, Policy, SoftmaxPolicy,
    ValueEstimate,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mlp(seed: u64, dims: &[usize], act: Activation) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(dims, act, Activation::Linear, &mut rng)
}

fn random_rows(seed: u64, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

proptest! {
    /// `forward_batch` row `i` == `forward` (and `predict`) of row `i`,
    /// exactly, for random shapes, activations, and batch sizes.
    #[test]
    fn forward_batch_rows_match_per_obs(seed in 0u64..500, rows in 1usize..40) {
        let acts = [Activation::Tanh, Activation::Relu, Activation::Sigmoid, Activation::LeakyRelu];
        let hidden = 1 + (seed as usize % 17);
        let in_dim = 1 + (seed as usize % 9);
        let out_dim = 1 + (seed as usize % 7);
        let net = random_mlp(seed, &[in_dim, hidden, out_dim], acts[seed as usize % acts.len()]);
        let obs = random_rows(seed ^ 0xBEEF, rows, in_dim);
        let batched = net.predict_batch(&obs);
        for (r, row) in obs.iter().enumerate() {
            let single = net.predict(row);
            prop_assert_eq!(batched.row(r), single.as_slice(), "row {} diverges", r);
        }
    }

    /// Batched backward == per-obs backward, exactly: running one batch
    /// through forward/backward accumulates the same weight, bias, and
    /// input gradients as feeding the rows one at a time.
    #[test]
    fn batched_gradients_match_per_obs_accumulation(seed in 0u64..200, rows in 2usize..12) {
        let net = random_mlp(seed, &[3, 5, 2], Activation::Tanh);
        let obs = random_rows(seed ^ 0xFACE, rows, 3);
        let x = Matrix::from_rows_vec(&obs);

        // Batched: one forward + backward with dL/dy = y.
        let mut batched = net.clone();
        let y = batched.forward(&x);
        batched.zero_grad();
        let gin_batched = batched.backward(&y.clone());

        // Per-obs: same thing row by row, gradients accumulating.
        let mut per_obs = net.clone();
        per_obs.zero_grad();
        let mut gin_rows = Vec::new();
        for row in &obs {
            let xr = Matrix::row_vector(row);
            let yr = per_obs.forward(&xr);
            gin_rows.push(per_obs.backward(&yr.clone()));
        }

        for (pg_b, pg_o) in batched.params().iter_mut().zip(per_obs.params().iter_mut()) {
            for (a, b) in pg_b.grad.iter().zip(pg_o.grad.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "param grad diverges: {} vs {}", a, b);
            }
        }
        for (r, gr) in gin_rows.iter().enumerate() {
            prop_assert_eq!(gin_batched.row(r), gr.row(0), "input grad row {} diverges", r);
        }
    }

    /// Batched tape gradients == per-obs scalar-tape gradients for a
    /// random program evaluated over a batch of rows.
    #[test]
    fn batch_tape_matches_scalar_tapes(seed in 0u64..300, rows in 1usize..20) {
        let xs = random_rows(seed ^ 0xAB, 1, rows).pop().unwrap();
        let w0 = (seed as f64 * 0.37).sin();
        let bt = BatchTape::new(rows);
        let x = bt.var(&xs);
        let w = bt.broadcast(w0);
        let terms = vec![(x * w).tanh(), x.square() * 0.5, (w.sigmoid() * x).exp().ln()];
        let z = sum_batch(&bt, &terms);
        let g = z.grad();
        let mut w_total = 0.0;
        for (r, &x0) in xs.iter().enumerate() {
            let t = Tape::new();
            let sx = t.var(x0);
            let sw = t.var(w0);
            let sterms = vec![(sx * sw).tanh(), sx.square() * 0.5, (sw.sigmoid() * sx).exp().ln()];
            let sz = metis::nn::tape::sum(&t, &sterms);
            prop_assert_eq!(z.value(r).to_bits(), sz.value().to_bits());
            let sg = sz.grad();
            prop_assert_eq!(g.wrt(x)[r].to_bits(), sg.wrt(sx).to_bits());
            w_total += sg.wrt(sw);
        }
        prop_assert_eq!(g.sum_wrt(w).to_bits(), w_total.to_bits());
    }

    /// `collect_seeded` (batched labelling) == the per-obs oracle, bit for
    /// bit, across controller modes, thread counts, and random teachers.
    #[test]
    fn collect_seeded_matches_oracle(seed in 0u64..60, threads in 1usize..4) {
        let contexts = 3 + (seed as usize % 3);
        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(contexts, 10, seed ^ s)).collect();
        let teacher = SoftmaxPolicy::new(random_mlp(seed, &[contexts, 8, contexts], Activation::Tanh));
        let student = SoftmaxPolicy::new(random_mlp(seed ^ 1, &[contexts, 6, contexts], Activation::Tanh));
        let critic = NetworkValue::new(random_mlp(seed ^ 2, &[contexts, 6, 1], Activation::Tanh));
        let cfg = CollectConfig {
            episodes: 4,
            max_steps: 10,
            gamma: 0.95,
            weighted: true,
        };
        for controller in [
            Controller::Teacher,
            Controller::Student(&student),
            Controller::StudentWithTakeover(&student, 0.5),
        ] {
            let batched = collect_seeded(&pool, &teacher, &critic, &controller, &cfg, seed, threads);
            let oracle =
                viper::oracle::collect_seeded(&pool, &teacher, &critic, &controller, &cfg, seed, 1);
            prop_assert_eq!(batched.len(), oracle.len());
            for (b, o) in batched.iter().zip(oracle.iter()) {
                prop_assert_eq!(&b.obs, &o.obs);
                prop_assert_eq!(b.teacher_action, o.teacher_action);
                prop_assert_eq!(b.weight.to_bits(), o.weight.to_bits(),
                    "weight diverges: {} vs {}", b.weight, o.weight);
            }
        }
    }
}

/// The batched value estimate must agree with per-obs queries exactly —
/// including through `forward_batch_threads` sharding.
#[test]
fn network_value_and_sharded_forward_parity() {
    let critic = random_mlp(99, &[6, 12, 1], Activation::Tanh);
    let nv = NetworkValue::new(critic.clone());
    let obs = random_rows(7, 150, 6);
    let m = Matrix::from_rows_vec(&obs);
    let batched = nv.value_batch(&m);
    let sharded = critic.forward_batch_threads(&m, 3);
    for (r, row) in obs.iter().enumerate() {
        assert_eq!(batched[r].to_bits(), nv.value(row).to_bits());
        assert_eq!(sharded[(r, 0)].to_bits(), nv.value(row).to_bits());
    }
}

/// Policy batch queries match their per-obs counterparts exactly, and the
/// fused probs+greedy query matches the two separate ones.
#[test]
fn policy_batch_queries_match_per_obs() {
    let policy = SoftmaxPolicy::new(random_mlp(5, &[4, 10, 5], Activation::Tanh));
    let obs = random_rows(11, 33, 4);
    let m = Matrix::from_rows_vec(&obs);
    let probs = policy.action_probs_batch(&m);
    let actions = policy.act_greedy_batch(&m);
    let (probs2, actions2) = policy.probs_and_greedy_batch(&m);
    assert_eq!(probs, probs2);
    assert_eq!(actions, actions2);
    for (r, row) in obs.iter().enumerate() {
        assert_eq!(probs[r], policy.action_probs(row));
        assert_eq!(actions[r], policy.act_greedy(row));
    }
}
