//! Proptest suite pinning the lane-vectorized compiled-tree kernel, the
//! [`Forest`] ensemble evaluator, and the frontier-parallel CART grower
//! to their sequential oracles:
//!
//! * `CompiledTree::predict_batch_into` (the quantized lane walk) and
//!   `predict_batch_levelwise` (the retained pre-kernel walk) must both
//!   be bit-identical to `DecisionTree::predict` row by row — including
//!   NaN-laden rows, which route right at every split in every path.
//! * `Forest::predict_batch_into` must equal the per-tree oracle reduce
//!   (majority vote with lowest-class-index tie-break; mean in tree
//!   order) computed from `DecisionTree::predict`.
//! * `fit` with any `frontier`/`threads` setting must produce a tree
//!   bit-identical to strictly sequential growth.
//!
//! Thread counts default to 1/2/3/8; set `METIS_TEST_THREADS=<n>` to test
//! an additional setting (CI runs the suite under two values).

use metis::dt::{
    fit, CompiledTree, Criterion, Dataset, DecisionTree, Forest, Prediction, TreeConfig, LANES,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMS: usize = 6;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted multi-class tree over DIMS features, varied by seed and leaf
/// budget (budget 1 yields a single-leaf tree, 2 a depth-1 stump).
fn fitted_classifier(seed: u64, max_leaf_nodes: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[0] * 5.0 + xi[2] * 3.0 + xi[4] * 2.0) as usize) % 5)
        .collect();
    let ds = Dataset::classification(x, y, 5).unwrap();
    fit(
        &ds,
        &TreeConfig {
            max_leaf_nodes,
            ..Default::default()
        },
    )
    .unwrap()
}

/// A fitted regressor over DIMS features, varied by seed.
fn fitted_regressor(seed: u64, max_leaf_nodes: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let x: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|xi| xi[0] * 2.0 - xi[3] + xi[5] * 0.5)
        .collect();
    let ds = Dataset::regression(x, y).unwrap();
    fit(
        &ds,
        &TreeConfig {
            max_leaf_nodes,
            criterion: Criterion::Mse,
            min_samples_leaf: 2,
            ..Default::default()
        },
    )
    .unwrap()
}

/// `n` rows, flattened row-major; every fifth row gets one NaN feature
/// and every eleventh row is entirely NaN, pinning the comparator hazard
/// (`NaN < thr` is false, so NaNs must route right at every split).
fn random_rows(n: usize, salt: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(salt.wrapping_mul(0x9E3779B97F4A7C15));
    let mut rows = Vec::with_capacity(n * DIMS);
    for k in 0..n {
        let mut row: Vec<f64> = (0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect();
        if k % 5 == 4 {
            row[k % DIMS] = f64::NAN;
        }
        if k % 11 == 10 {
            row.iter_mut().for_each(|v| *v = f64::NAN);
        }
        rows.extend_from_slice(&row);
    }
    rows
}

/// Per-row oracle over the flattened row block.
fn oracle_predictions(tree: &DecisionTree, rows: &[f64]) -> Vec<Prediction> {
    rows.chunks_exact(DIMS).map(|r| tree.predict(r)).collect()
}

fn assert_bits_equal(got: &[Prediction], want: &[Prediction], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (k, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        match (g, w) {
            (Prediction::Class(a), Prediction::Class(b)) => {
                assert_eq!(a, b, "{ctx}: row {k}");
            }
            (Prediction::Value(a), Prediction::Value(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: row {k} ({a} vs {b})");
            }
            _ => panic!("{ctx}: row {k} prediction kind mismatch"),
        }
    }
}

proptest! {
    /// The lane kernel and the retained levelwise walk are bit-identical
    /// to `DecisionTree::predict` for arbitrary row counts (deliberately
    /// spanning partial lane blocks) and leaf budgets, on classifiers
    /// and regressors alike, NaNs included.
    #[test]
    fn kernel_matches_per_row_oracle(
        seed in 0u64..12,
        n in 1usize..70,
        leaves in 1usize..40,
    ) {
        for tree in [fitted_classifier(seed, leaves), fitted_regressor(seed, leaves)] {
            let compiled = CompiledTree::compile(&tree);
            let rows = random_rows(n, seed * 1000 + n as u64);
            let want = oracle_predictions(&tree, &rows);

            let mut got = vec![Prediction::Class(usize::MAX); n];
            compiled.predict_batch_into(&rows, &mut got);
            assert_bits_equal(&got, &want, "lane kernel");

            let mut level = vec![Prediction::Class(usize::MAX); n];
            compiled.predict_batch_levelwise(&rows, &mut level);
            assert_bits_equal(&level, &want, "levelwise oracle walk");

            for (k, row) in rows.chunks_exact(DIMS).enumerate() {
                prop_assert_eq!(compiled.predict(row), want[k], "scalar predict row {}", k);
            }
        }
    }

    /// Forest block-major evaluation equals the per-tree oracle reduce:
    /// majority vote with lowest-class-index tie-break for classifiers,
    /// tree-order mean for regressors.
    #[test]
    fn forest_matches_per_tree_oracle_reduce(
        seed in 0u64..8,
        n in 1usize..60,
        n_trees in 1usize..6,
    ) {
        let members: Vec<DecisionTree> = (0..n_trees)
            .map(|t| fitted_classifier(seed * 31 + t as u64, 8 + 4 * t))
            .collect();
        let forest = Forest::from_trees(&members).unwrap();
        let rows = random_rows(n, seed * 7777 + n as u64);

        let mut want = Vec::with_capacity(n);
        for row in rows.chunks_exact(DIMS) {
            let mut votes = [0u32; 5];
            for tree in &members {
                votes[tree.predict(row).class()] += 1;
            }
            let best = (0..5).max_by_key(|&c| (votes[c], std::cmp::Reverse(c))).unwrap();
            want.push(Prediction::Class(best));
        }
        let got = forest.predict_batch(&rows);
        assert_bits_equal(&got, &want, "forest vote");

        for (k, row) in rows.chunks_exact(DIMS).enumerate() {
            prop_assert_eq!(forest.predict(row), want[k], "forest scalar row {}", k);
        }

        let regs: Vec<DecisionTree> = (0..n_trees)
            .map(|t| fitted_regressor(seed * 13 + t as u64, 6 + 3 * t))
            .collect();
        let rforest = Forest::from_trees(&regs).unwrap();
        let mut rwant = Vec::with_capacity(n);
        for row in rows.chunks_exact(DIMS) {
            let sum: f64 = regs.iter().map(|t| t.predict(row).value()).sum();
            rwant.push(Prediction::Value(sum / n_trees as f64));
        }
        let rgot = rforest.predict_batch(&rows);
        assert_bits_equal(&rgot, &rwant, "forest mean");
    }

    /// `Forest::predict` and `Forest::predict_batch_into` are
    /// bit-identical row-wise — the contract the serving engine's
    /// ensemble flush path rests on. Leaf budgets are spread so small
    /// members take the in-register walk while large ones stay on the
    /// gather path, and the row block carries NaN-salted and all-NaN
    /// rows (every evaluator must route NaN right at every split).
    #[test]
    fn forest_scalar_and_batched_paths_bit_identical(
        seed in 0u64..8,
        n in 1usize..70,
        n_trees in 1usize..6,
    ) {
        let members: Vec<DecisionTree> = (0..n_trees)
            .map(|t| fitted_classifier(seed * 17 + t as u64, 3 + 9 * t))
            .collect();
        let forest = Forest::from_trees(&members).unwrap();
        let rows = random_rows(n, seed * 31337 + n as u64);
        let mut got = vec![Prediction::Class(usize::MAX); n];
        forest.predict_batch_into(&rows, &mut got);
        let want: Vec<Prediction> = rows.chunks_exact(DIMS).map(|r| forest.predict(r)).collect();
        assert_bits_equal(&got, &want, "forest batched vs scalar");

        // Entirely-NaN batch: every member must walk the all-right path.
        let nan_rows = vec![f64::NAN; n * DIMS];
        let mut nan_got = vec![Prediction::Class(usize::MAX); n];
        forest.predict_batch_into(&nan_rows, &mut nan_got);
        let nan_want: Vec<Prediction> =
            nan_rows.chunks_exact(DIMS).map(|r| forest.predict(r)).collect();
        assert_bits_equal(&nan_got, &nan_want, "forest batched vs scalar, all-NaN");

        // Regression ensembles: the tree-order sum is order-sensitive in
        // floating point, so bit-identity here pins the reduction order.
        let regs: Vec<DecisionTree> = (0..n_trees)
            .map(|t| fitted_regressor(seed * 23 + t as u64, 4 + 7 * t))
            .collect();
        let rforest = Forest::from_trees(&regs).unwrap();
        let mut rgot = vec![Prediction::Class(usize::MAX); n];
        rforest.predict_batch_into(&rows, &mut rgot);
        let rwant: Vec<Prediction> = rows.chunks_exact(DIMS).map(|r| rforest.predict(r)).collect();
        assert_bits_equal(&rgot, &rwant, "regression forest batched vs scalar");
    }

    /// Frontier-parallel growth is bit-identical to strictly sequential
    /// growth for every frontier width x thread count, with and without
    /// a depth cap.
    #[test]
    fn frontier_fit_matches_sequential(seed in 0u64..6, max_depth in 0usize..2) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D));
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| (0..DIMS).map(|_| (rng.gen_range(0u32..16) as f64) / 16.0).collect())
            .collect();
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] * 7.0 + xi[1] * 5.0 + xi[3] * 3.0) as usize) % 4)
            .collect();
        let ds = Dataset::classification(x, y, 4).unwrap();
        let base = TreeConfig {
            max_leaf_nodes: 24,
            max_depth: if max_depth == 0 { None } else { Some(4) },
            ..Default::default()
        };
        let sequential = fit(&ds, &TreeConfig { threads: 1, frontier: 1, ..base.clone() }).unwrap();
        for threads in thread_counts() {
            for frontier in [0usize, 2, 5, 32] {
                let grown = fit(
                    &ds,
                    &TreeConfig { threads, frontier, ..base.clone() },
                )
                .unwrap();
                prop_assert_eq!(
                    &grown, &sequential,
                    "threads {} frontier {}", threads, frontier
                );
            }
        }
    }
}

/// Edge shapes the lane walk must handle exactly: row counts around the
/// lane width, single rows, all-NaN batches, stumps, and single leaves.
#[test]
fn kernel_edge_shapes() {
    for (name, tree) in [
        ("single-leaf", fitted_classifier(3, 1)),
        ("depth-1 stump", fitted_classifier(3, 2)),
        ("regressor stump", fitted_regressor(3, 2)),
        ("full classifier", fitted_classifier(3, 30)),
        ("full regressor", fitted_regressor(3, 30)),
    ] {
        let compiled = CompiledTree::compile(&tree);
        for n in [1, 2, LANES - 1, LANES, LANES + 1, 3 * LANES, 3 * LANES + 7] {
            let rows = random_rows(n, 42 + n as u64);
            let want = oracle_predictions(&tree, &rows);
            let mut got = vec![Prediction::Class(usize::MAX); n];
            compiled.predict_batch_into(&rows, &mut got);
            assert_bits_equal(&got, &want, &format!("{name}, {n} rows"));
        }

        // A batch where every value of every row is NaN: all rows must
        // take the all-right path, identically to the oracle.
        let n = LANES + 3;
        let rows = vec![f64::NAN; n * DIMS];
        let want = oracle_predictions(&tree, &rows);
        let mut got = vec![Prediction::Class(usize::MAX); n];
        compiled.predict_batch_into(&rows, &mut got);
        assert_bits_equal(&got, &want, &format!("{name}, all-NaN batch"));
    }
}

/// Forest schema validation: empty ensembles and mixed kinds/shapes are
/// rejected rather than silently mis-reduced.
#[test]
fn forest_rejects_invalid_ensembles() {
    assert!(Forest::from_trees(&[]).is_err());
    let mixed_kind = [fitted_classifier(1, 8), fitted_regressor(1, 8)];
    assert!(Forest::from_trees(&mixed_kind).is_err());
    let ok = Forest::from_trees(&[fitted_classifier(1, 8), fitted_classifier(2, 8)]).unwrap();
    assert_eq!(ok.n_trees(), 2);
    assert_eq!(ok.n_features(), DIMS);
}
