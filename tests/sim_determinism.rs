//! Determinism suite for the closed-loop co-simulation
//! (`metis::sim::run_abr_cosim`):
//!
//! * **Oracle property** — the multi-session co-sim, with all its wave
//!   batching, sharding, and worker-pool parallelism, is bit-identical to
//!   a *sequential single-session oracle*: each session replayed alone,
//!   predicting with `metis::dt::Forest::predict` under the rule "a
//!   decision at time `T` uses the latest swap with `at_s <= T`" — for
//!   any shard count, thread count, stripe width, wave quantum, and wave
//!   cap, **including a mid-run model hot swap**.
//! * **Scale acceptance** — a 100 000-concurrent-session run completes in
//!   virtual time on one core and is bit-identical across repeated runs
//!   and across worker thread counts: same per-session outcomes, same
//!   QoE digest, and the same fabric-side latency percentiles, epoch
//!   swap counts, and served totals.
//!
//! Thread counts sweep 1/2/8 plus an optional CI-injected
//! `METIS_TEST_THREADS=<n>` (CI runs the suite under two values and again
//! under `METIS_NO_GATHER=1`).

use metis::abr::{hsdpa_corpus, AbrEnv, NetworkTrace, VideoModel, OBS_DIM};
use metis::dt::{fit, Dataset, DecisionTree, Forest, TreeConfig};
use metis::fabric::{FabricConfig, Router, ScenarioSpec, TenantSpec};
use metis::rl::Env;
use metis::serve::{Clock, ServeConfig};
use metis::sim::{run_abr_cosim, session_plan, CosimConfig, ModelSwap, SessionOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Thread counts every property sweeps, plus an optional CI-injected one.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("METIS_TEST_THREADS") {
        if let Ok(n) = extra.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// A fitted ABR policy tree over the 25-feature observation, varied by
/// seed: labels key off buffer level and recent throughput, so different
/// seeds yield genuinely different (non-constant) serving policies.
fn abr_tree(seed: u64, classes: usize) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let x: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..OBS_DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|xi| ((xi[1] * 3.0 + xi[9] * 2.0 + xi[0]) as usize) % classes)
        .collect();
    fit(
        &Dataset::classification(x, y, classes).unwrap(),
        &TreeConfig {
            max_leaf_nodes: 12,
            ..Default::default()
        },
    )
    .unwrap()
}

fn virtual_router(
    initial: DecisionTree,
    shards: usize,
    threads: usize,
    stripe: usize,
    max_batch: usize,
) -> Router {
    Router::new(
        vec![TenantSpec::new("abr")],
        vec![ScenarioSpec::new("pensieve", "abr", initial).shards(shards)],
        FabricConfig {
            serve: ServeConfig {
                max_batch,
                // Never consulted on a virtual clock; absurdly long so a
                // regression to deadline-based flushing would hang loudly
                // rather than pass quietly.
                max_delay: Duration::from_secs(3600),
                threads,
                stripe_rows: stripe,
                ..Default::default()
            },
            mirror_batch: 0,
            clock: Clock::virtual_at(0.0),
            ..Default::default()
        },
    )
}

/// The sequential oracle: each session replayed alone with direct
/// `Forest::predict` calls, no fabric, no waves, no event queue — just
/// the per-session timeline `t += download_time + sleep` and the swap
/// rule "a decision at `T` uses the latest swap with `at_s <= T`"
/// (`swaps` must be sorted by `at_s`, as the co-sim schedules them).
fn oracle_outcomes(
    initial: &DecisionTree,
    swaps: &[ModelSwap],
    video: &Arc<VideoModel>,
    traces: &[Arc<NetworkTrace>],
    cfg: &CosimConfig,
) -> Vec<SessionOutcome> {
    let mut models: Vec<(f64, Forest)> = vec![(
        f64::NEG_INFINITY,
        Forest::from_trees(std::slice::from_ref(initial)).unwrap(),
    )];
    for swap in swaps {
        models.push((swap.at_s, Forest::from_trees(&swap.trees).unwrap()));
    }
    let n_actions = video.n_qualities();
    session_plan(cfg, traces)
        .iter()
        .map(|plan| {
            let mut env = AbrEnv::new(
                Arc::clone(video),
                Arc::clone(&traces[plan.trace_idx]),
                plan.offset_s,
            );
            let mut obs = env.reset();
            let mut outcome = SessionOutcome::new(plan.trace_idx, plan.start_s);
            let mut t = plan.start_s;
            loop {
                let model = models
                    .iter()
                    .rev()
                    .find(|(at_s, _)| *at_s <= t)
                    .map(|(_, f)| f)
                    .unwrap();
                let action = model.predict(&obs).class().min(n_actions - 1);
                let (step, d) = env.step_detailed(action);
                outcome.record_chunk(step.reward, &d);
                if step.done {
                    break;
                }
                obs = step.obs;
                t += d.download_time_s + d.sleep_s;
            }
            outcome
        })
        .collect()
}

proptest! {
    /// The tentpole acceptance bar: for any fabric shape (shards, worker
    /// threads, stripe width, batch cap) and any wave pacing (quantum,
    /// cap), the co-sim's per-session outcomes equal the sequential
    /// oracle **bitwise** — with a mid-run hot swap (singleton tree or
    /// 3-tree forest) landing at an arbitrary time, possibly inside the
    /// start window or after every session finished.
    #[test]
    fn prop_cosim_bit_identical_to_sequential_oracle(
        tree_seed in 0u64..6,
        swap_seed in 6u64..12,
        sessions in 1usize..10,
        shards in 1usize..4,
        stripe in 1usize..24,
        max_batch in 1usize..40,
        quantum_ms in 1u64..2000,
        wave_cap in 1usize..64,
        swap_at_s in 0.0f64..90.0,
        forest_sel in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let forest_swap = forest_sel == 1;
        let video = Arc::new(VideoModel::standard(12, 7));
        let classes = video.n_qualities();
        let traces: Vec<Arc<NetworkTrace>> =
            hsdpa_corpus(3, 11).into_iter().map(Arc::new).collect();
        let initial = abr_tree(tree_seed, classes);
        let swap_trees = if forest_swap {
            vec![
                abr_tree(swap_seed, classes),
                abr_tree(swap_seed + 17, classes),
                abr_tree(swap_seed + 34, classes),
            ]
        } else {
            vec![abr_tree(swap_seed, classes)]
        };
        let swaps = vec![ModelSwap { at_s: swap_at_s, trees: swap_trees }];
        let cfg = CosimConfig {
            sessions,
            seed,
            start_window_s: 4.0,
            decision_quantum_s: quantum_ms as f64 / 1000.0,
            wave_cap,
        };
        let threads = thread_counts()[(seed % thread_counts().len() as u64) as usize];

        let router = virtual_router(initial.clone(), shards, threads, stripe, max_batch);
        let report = run_abr_cosim(&router, "pensieve", &video, &traces, &swaps, &cfg);
        let fabric = router.shutdown();

        let oracle = oracle_outcomes(&initial, &swaps, &video, &traces, &cfg);
        prop_assert_eq!(report.sessions.len(), oracle.len());
        for (got, want) in report.sessions.iter().zip(&oracle) {
            prop_assert_eq!(got, want, "co-sim outcome diverges from the oracle");
        }
        prop_assert_eq!(report.decisions, (sessions * video.n_chunks()) as u64);
        prop_assert_eq!(fabric.served, report.decisions);
        prop_assert_eq!(fabric.scenarios[0].swaps, 1);
    }
}

/// The scale acceptance bar: 100 000 concurrent closed-loop sessions
/// complete in virtual time on one core, and the run is **bit-identical**
/// across repeated runs and across worker thread counts — per-session
/// outcomes, QoE digest, virtual end time, and the fabric-side report
/// (served totals, epoch swaps, and every latency percentile).
#[test]
fn hundred_thousand_sessions_bit_identical_across_runs_and_threads() {
    let video = Arc::new(VideoModel::standard(8, 7));
    let classes = video.n_qualities();
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(8, 5).into_iter().map(Arc::new).collect();
    let initial = abr_tree(1, classes);
    let swaps = vec![ModelSwap {
        at_s: 15.0,
        trees: vec![abr_tree(2, classes)],
    }];
    let cfg = CosimConfig {
        sessions: 100_000,
        seed: 42,
        start_window_s: 8.0,
        decision_quantum_s: 0.25,
        wave_cap: 4096,
    };
    let run = |threads: usize, shards: usize| {
        let router = virtual_router(initial.clone(), shards, threads, 16, 512);
        let report = run_abr_cosim(&router, "pensieve", &video, &traces, &swaps, &cfg);
        (report, router.shutdown())
    };

    let (r1, f1) = run(2, 2);
    let (r2, f2) = run(2, 2); // identical config: must be a bitwise replay
    let (r3, f3) = run(8, 2); // more worker threads: must change nothing

    for (report, fabric) in [(&r1, &f1), (&r2, &f2), (&r3, &f3)] {
        assert_eq!(report.sessions.len(), 100_000);
        assert_eq!(report.decisions, 100_000 * video.n_chunks() as u64);
        assert!(
            report
                .sessions
                .iter()
                .all(|s| s.chunks == video.n_chunks() as u64),
            "every session must stream to completion"
        );
        assert_eq!(fabric.served, report.decisions);
        assert_eq!(fabric.scenarios[0].swaps, 1);
        assert!(report.virtual_end_s > cfg.start_window_s);
        assert!(report.waves < report.decisions / 10, "waves must batch");
    }

    for (a, b) in [(&r1, &r2), (&r1, &r3)] {
        assert_eq!(a.qoe_digest, b.qoe_digest, "QoE digest diverged");
        assert_eq!(a.sessions, b.sessions, "per-session outcomes diverged");
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.events, b.events);
        assert_eq!(a.virtual_end_s.to_bits(), b.virtual_end_s.to_bits());
        assert_eq!(a.mean_qoe.to_bits(), b.mean_qoe.to_bits());
    }
    for (a, b) in [(&f1, &f2), (&f1, &f3)] {
        assert_eq!(a.served, b.served);
        let (la, lb) = (&a.scenarios[0].latency, &b.scenarios[0].latency);
        assert_eq!(la.count, lb.count);
        assert_eq!(la.mean_s.to_bits(), lb.mean_s.to_bits());
        assert_eq!(la.p50_s.to_bits(), lb.p50_s.to_bits());
        assert_eq!(la.p95_s.to_bits(), lb.p95_s.to_bits());
        assert_eq!(la.p99_s.to_bits(), lb.p99_s.to_bits());
        assert_eq!(la.max_s.to_bits(), lb.max_s.to_bits());
        assert_eq!(a.scenarios[0].live_epoch, b.scenarios[0].live_epoch);
        for (sa, sb) in a.scenarios[0].shards.iter().zip(&b.scenarios[0].shards) {
            assert_eq!(sa.served, sb.served, "per-shard traffic split diverged");
        }
    }
}
