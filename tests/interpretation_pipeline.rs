//! Cross-crate integration tests: the §4 hypergraph interpretation on the
//! real RouteNet* substrate, and the Appendix-B formulations.

use metis::core::{interpret_routing, routing_hypergraph, InterpretationKind};
use metis::hypergraph::MaskConfig;
use metis::routing::{
    connections, demand_corpus, optimize_routing, Demand, LatencyModel, RouteNetModel, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_interpretation_on_nsfnet() {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let sample = demand_corpus(14, 10, 1, 3)[0].clone();
    let routing = optimize_routing(&topo, &sample.demands, &latency, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let model = RouteNetModel::new(4, &mut rng);

    let cfg = MaskConfig {
        steps: 60,
        ..Default::default()
    };
    let (result, report) = interpret_routing(&model, &topo, &sample.demands, &routing, &cfg, 5);

    // Masks valid and aligned with the hypergraph connection count.
    let h = routing_hypergraph(&topo, &sample.demands, &routing);
    assert_eq!(result.mask.len(), h.n_connections());
    assert_eq!(result.mask.len(), connections(&topo, &routing).len());
    assert!(result.mask.iter().all(|&m| (0.0..=1.0).contains(&m)));

    // Report rows reference real connections with sane classifications.
    assert_eq!(report.len(), 5);
    for r in &report {
        assert!(r.demand_idx < sample.demands.len());
        assert!(r.link_idx < topo.n_links());
        assert!(matches!(
            r.kind,
            InterpretationKind::Shorter
                | InterpretationKind::LessCongested
                | InterpretationKind::Other
        ));
        // The link must actually be on the reported path.
        let links = topo.path_links(&routing[r.demand_idx]);
        assert!(links.contains(&r.link_idx));
    }
}

#[test]
fn mask_search_is_deterministic() {
    let topo = Topology::nsfnet();
    let latency = LatencyModel::default();
    let demands = vec![
        Demand {
            src: 6,
            dst: 9,
            volume: 1.0,
        },
        Demand {
            src: 0,
            dst: 12,
            volume: 2.0,
        },
    ];
    let routing = optimize_routing(&topo, &demands, &latency, 1);
    let mut rng = StdRng::seed_from_u64(9);
    let model = RouteNetModel::new(4, &mut rng);
    let cfg = MaskConfig {
        steps: 40,
        ..Default::default()
    };
    let (r1, _) = interpret_routing(&model, &topo, &demands, &routing, &cfg, 3);
    let (r2, _) = interpret_routing(&model, &topo, &demands, &routing, &cfg, 3);
    assert_eq!(r1.mask, r2.mask, "the search has no stochastic component");
}

#[test]
fn figure5_worked_example_roundtrip() {
    // The paper's Figure-5 example expressed through the public API:
    // two demands on a custom 8-link topology produce exactly Eq. 2/3.
    // (The unit-level checks live in metis-hypergraph; here we verify the
    // routing-to-hypergraph integration path.)
    let topo = Topology::nsfnet();
    let demands = vec![Demand {
        src: 6,
        dst: 9,
        volume: 1.0,
    }];
    let routing = vec![vec![6, 7, 10, 9]];
    let h = routing_hypergraph(&topo, &demands, &routing);
    assert_eq!(h.n_edges(), 1);
    assert_eq!(h.edge_size(0), 3);
    let i = h.incidence_matrix();
    assert_eq!(i.rows(), 1);
    assert_eq!(i.cols(), topo.n_links());
    let row_sum: f64 = i.data().iter().sum();
    assert_eq!(row_sum, 3.0);
}
