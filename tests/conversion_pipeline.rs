//! Cross-crate integration tests: the full §3.2 conversion pipeline on a
//! real substrate (the ABR simulator), end to end.

use metis::abr::{
    env_pool, hsdpa_corpus, pensieve_agent, train_pensieve, NetworkTrace, PensieveArch, VideoModel,
};
use metis::core::{convert_policy, ConversionConfig};
use metis::rl::{evaluate, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_setup() -> (
    Vec<metis::abr::AbrEnv>,
    metis::rl::ActorCritic<metis::abr::PensieveNet>,
) {
    let mut rng = StdRng::seed_from_u64(7);
    let video = Arc::new(VideoModel::standard(24, 3));
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(6, 11).into_iter().map(Arc::new).collect();
    let pool = env_pool(&video, &traces);
    let mut agent = pensieve_agent(PensieveArch::Original, 24, &mut rng);
    train_pensieve(&mut agent, &pool, 120, &mut rng);
    (pool, agent)
}

#[test]
fn tree_tracks_teacher_qoe_on_abr() {
    let (pool, agent) = small_setup();
    let mut rng = StdRng::seed_from_u64(1);
    let critic = agent.critic.clone();
    let cfg = ConversionConfig {
        max_leaf_nodes: 100,
        episodes_per_round: 6,
        max_steps: 64,
        ..Default::default()
    };
    let result = convert_policy(
        &pool,
        &agent.policy,
        move |obs| critic.predict(obs)[0],
        &cfg,
        &mut rng,
    );

    // Fidelity to the teacher on collected states must be high.
    let last = *result.fidelity_history.last().unwrap();
    assert!(last > 0.8, "fidelity {last}");

    // QoE parity: the student should track the teacher closely across the
    // pool (within 15% on this small setup; the paper reports <2% at full
    // training scale).
    let q_teacher: f64 = pool
        .iter()
        .map(|e| evaluate(e, &agent.policy, 1, 64, &mut rng))
        .sum::<f64>();
    let q_tree: f64 = pool
        .iter()
        .map(|e| evaluate(e, &result.policy, 1, 64, &mut rng))
        .sum::<f64>();
    let rel = (q_tree - q_teacher).abs() / q_teacher.abs().max(1e-9);
    assert!(
        rel < 0.15,
        "teacher {q_teacher:.2}, tree {q_tree:.2} (rel {rel:.3})"
    );
}

#[test]
fn oversampling_keeps_all_observed_actions_present() {
    let (pool, agent) = small_setup();
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = ConversionConfig {
        max_leaf_nodes: 100,
        episodes_per_round: 6,
        max_steps: 64,
        dagger_rounds: 1,
        oversample_min_frac: Some(0.01),
        ..Default::default()
    };
    let result = convert_policy(&pool, &agent.policy, |_| 0.0, &cfg, &mut rng);
    assert!(result.policy.tree.n_leaves() <= 100);
    // The tree must be a valid policy over the full action space.
    let probs = result.policy.action_probs(&[0.1; metis::abr::OBS_DIM]);
    assert_eq!(probs.len(), 6);
    assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn compiled_tree_agrees_with_tree_policy() {
    let (pool, agent) = small_setup();
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = ConversionConfig {
        max_leaf_nodes: 64,
        episodes_per_round: 4,
        max_steps: 64,
        dagger_rounds: 0,
        ..Default::default()
    };
    let result = convert_policy(&pool, &agent.policy, |_| 0.0, &cfg, &mut rng);
    let compiled = metis::dt::CompiledTree::compile(&result.policy.tree);
    // Agreement on live observations from an episode.
    let mut env = pool[0].clone();
    let mut obs = metis::rl::Env::reset(&mut env);
    for _ in 0..24 {
        let a = result.policy.act_greedy(&obs);
        assert_eq!(a, compiled.predict_class(&obs));
        let step = metis::rl::Env::step(&mut env, a);
        if step.done {
            break;
        }
        obs = step.obs;
    }
}
