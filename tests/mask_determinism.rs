//! §4 mask-search determinism on real scenario observations: the
//! batched, thread-sharded critical-connection search must produce
//! identical ranked masks for `threads = 1` and `threads = N`, on both
//! the ABR (Pensieve) and flow-scheduling (AuTO lRLA) scenarios — and the
//! batched gradient must match the per-obs oracle bit for bit.

use metis::core::interpret_policy_features;
use metis::hypergraph::{MaskConfig, MaskedMlp, MaskedSystem, OutputKind};
use metis::nn::{Activation, Mlp};
use metis::rl::{rollout, ActionMode, Env, Policy, SoftmaxPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Roll a policy through a pool and gather the visited observations.
fn collect_observations<E: Env>(
    pool: &[E],
    policy: &(impl Policy + Sync),
    max_steps: usize,
) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut obs = Vec::new();
    for env in pool {
        let mut env = env.clone();
        let traj = rollout(&mut env, policy, ActionMode::Greedy, max_steps, &mut rng);
        obs.extend(traj.observations);
    }
    obs
}

fn assert_thread_invariant(net: &Mlp, observations: Vec<Vec<f64>>, label: &str) {
    assert!(
        observations.len() >= 16,
        "{label}: need a real observation batch, got {}",
        observations.len()
    );
    // Bitwise gradient parity against the per-obs oracle first.
    let sys = MaskedMlp::new(net, observations.clone(), OutputKind::Discrete).block_rows(8);
    let mask: Vec<f64> = (0..sys.n_connections())
        .map(|i| 0.3 + 0.4 * ((i % 3) as f64) / 3.0)
        .collect();
    let reference = sys.reference_output();
    let (d_oracle, g_oracle) = sys.d_value_grad_per_obs(&mask);
    for threads in [1usize, 4] {
        let (d, g) = sys.d_value_grad(&mask, &reference, threads);
        assert_eq!(d.to_bits(), d_oracle.to_bits(), "{label}: D diverges");
        for (a, b) in g.iter().zip(g_oracle.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: gradient diverges");
        }
    }

    // Full search through the public entry point: identical ranked masks
    // for threads = 1 vs N.
    let run = |threads: usize| {
        interpret_policy_features(
            net,
            observations.clone(),
            None,
            &MaskConfig {
                steps: 40,
                threads,
                ..Default::default()
            },
            net.in_dim(),
        )
    };
    let (result_1, report_1) = run(1);
    let (result_n, report_n) = run(4);
    assert_eq!(result_1.mask, result_n.mask, "{label}: masks diverge");
    assert_eq!(
        result_1.ranked(),
        result_n.ranked(),
        "{label}: ranking diverges"
    );
    assert_eq!(result_1.loss_history, result_n.loss_history);
    let ranked_1: Vec<usize> = report_1.iter().map(|r| r.index).collect();
    let ranked_n: Vec<usize> = report_n.iter().map(|r| r.index).collect();
    assert_eq!(ranked_1, ranked_n);
}

#[test]
fn abr_scenario_mask_search_is_thread_invariant() {
    use metis::abr::{env_pool, NetworkTrace, VideoModel, OBS_DIM};
    let mut rng = StdRng::seed_from_u64(17);
    let net = Mlp::new(
        &[OBS_DIM, 16, 6],
        Activation::Tanh,
        Activation::Linear,
        &mut rng,
    );
    let video = Arc::new(VideoModel::standard(12, 3));
    let traces: Vec<Arc<NetworkTrace>> = metis::abr::hsdpa_corpus(3, 5)
        .into_iter()
        .map(Arc::new)
        .collect();
    let pool = env_pool(&video, &traces);
    let policy = SoftmaxPolicy::new(net.clone());
    let observations = collect_observations(&pool, &policy, 12);
    assert_thread_invariant(&net, observations, "ABR");
}

#[test]
fn flowsched_scenario_mask_search_is_thread_invariant() {
    use metis::flowsched::{
        generate_flows, FabricConfig, LrlaEnv, MlfqThresholds, SimConfig, SizeDistribution,
        LRLA_ACTIONS, LRLA_STATE_DIM,
    };
    let mut rng = StdRng::seed_from_u64(23);
    let net = Mlp::new(
        &[LRLA_STATE_DIM, 12, LRLA_ACTIONS],
        Activation::Tanh,
        Activation::Linear,
        &mut rng,
    );
    let config = SimConfig {
        fabric: FabricConfig {
            n_servers: 4,
            link_bps: 10e9,
        },
        thresholds: MlfqThresholds::default_web_search(),
        long_flow_cutoff_bytes: 1e6,
        decision_latency_s: 0.0,
    };
    let dist = SizeDistribution::web_search();
    let pool: Vec<LrlaEnv> = (0..2)
        .map(|i| {
            let mut wl = StdRng::seed_from_u64(300 + i);
            LrlaEnv::new(
                generate_flows(&dist, 4, 10e9, 0.7, 0.05, &mut wl),
                config.clone(),
            )
        })
        .collect();
    let policy = SoftmaxPolicy::new(net.clone());
    let observations = collect_observations(&pool, &policy, 30);
    assert_thread_invariant(&net, observations, "flowsched");
}
