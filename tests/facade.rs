//! Facade-level smoke tests: every re-exported crate is reachable and the
//! headline types compose.

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_reexports_reachable() {
    let mut rng = StdRng::seed_from_u64(1);
    // nn
    let mlp = metis::nn::Mlp::new(
        &[2, 4, 2],
        metis::nn::Activation::Tanh,
        metis::nn::Activation::Linear,
        &mut rng,
    );
    assert_eq!(mlp.predict(&[0.0, 0.0]).len(), 2);
    // dt
    let ds = metis::dt::Dataset::classification(vec![vec![0.0], vec![1.0]], vec![0, 1], 2).unwrap();
    let tree = metis::dt::fit(&ds, &metis::dt::TreeConfig::default()).unwrap();
    assert_eq!(tree.predict_class(&[0.0]), 0);
    // hypergraph
    let mut h = metis::hypergraph::Hypergraph::new(3);
    h.add_edge(&[0, 1]).unwrap();
    assert_eq!(h.n_connections(), 2);
    // abr
    assert_eq!(metis::abr::OBS_DIM, 25);
    // flowsched
    assert_eq!(metis::flowsched::LRLA_STATE_DIM, 143);
    assert_eq!(metis::flowsched::SRLA_STATE_DIM, 700);
    // routing
    assert_eq!(metis::routing::Topology::nsfnet().n_nodes(), 14);
    // serve + fabric: compile a tree, check the hash contract surface
    let compiled = metis::dt::CompiledTree::compile(&tree);
    assert_eq!(compiled.n_features(), 1);
    assert!(compiled
        .diff_batch(&compiled.clone(), &[0.0, 1.0])
        .is_clean());
    assert!(metis::fabric::shard_for_session(7, 3) < 3);
    let _cfg: metis::serve::ServeConfig = Default::default();
    let _shadow = metis::fabric::ShadowConfig::default();
    // core defaults (Table 4)
    let d = metis::core::MetisDefaults::default();
    assert_eq!(d.pensieve_leaves, 200);
}

#[test]
fn table4_defaults_flow_into_mask_search() {
    let d = metis::core::MetisDefaults::default();
    assert_eq!(d.mask.lambda1, 0.25);
    assert_eq!(d.mask.lambda2, 1.0);
}
