//! Regression tests for the parallel conversion engine's determinism
//! guarantee on a real substrate: same seed ⇒ identical tree and identical
//! collected traces, regardless of thread count.

use metis::abr::{env_pool, hsdpa_corpus, pensieve_agent, NetworkTrace, PensieveArch, VideoModel};
use metis::core::{ConversionConfig, ConversionPipeline};
use metis::rl::{collect_seeded, CollectConfig, Controller};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn abr_pool() -> Vec<metis::abr::AbrEnv> {
    let video = Arc::new(VideoModel::standard(16, 3));
    let traces: Vec<Arc<NetworkTrace>> = hsdpa_corpus(4, 23).into_iter().map(Arc::new).collect();
    env_pool(&video, &traces)
}

#[test]
fn conversion_identical_across_thread_counts_on_abr() {
    let pool = abr_pool();
    let mut rng = StdRng::seed_from_u64(5);
    // An untrained teacher exercises the full loop (collection, Eq.-1
    // weights via the critic-free lookahead, DAgger takeover, fit, prune).
    let agent = pensieve_agent(PensieveArch::Original, 16, &mut rng);
    let cfg = ConversionConfig {
        max_leaf_nodes: 32,
        episodes_per_round: 6,
        max_steps: 48,
        dagger_rounds: 1,
        ..Default::default()
    };
    let run = |threads: usize| {
        ConversionPipeline::new(&pool, &agent.policy, |_| 0.0)
            .conversion(cfg.clone())
            .seed(77)
            .threads(threads)
            .run()
    };
    let single = run(1);
    let multi = run(4);
    assert_eq!(
        single.policy.tree, multi.policy.tree,
        "tree differs across thread counts"
    );
    assert_eq!(single.fidelity_history, multi.fidelity_history);
    assert_eq!(single.dataset_size, multi.dataset_size);
    // And a different seed produces a different trace set (sanity that the
    // equality above is not vacuous).
    let other = ConversionPipeline::new(&pool, &agent.policy, |_| 0.0)
        .conversion(cfg.clone())
        .seed(78)
        .run();
    assert!(other.dataset_size > 0);
}

#[test]
fn collection_merges_identically_across_thread_counts() {
    let pool = abr_pool();
    let mut rng = StdRng::seed_from_u64(6);
    let agent = pensieve_agent(PensieveArch::Original, 16, &mut rng);
    let cfg = CollectConfig {
        episodes: 8,
        max_steps: 40,
        gamma: 0.99,
        weighted: true,
    };
    let collect = |threads: usize| {
        collect_seeded(
            &pool,
            &agent.policy,
            &(|_: &[f64]| 0.0),
            &Controller::Teacher,
            &cfg,
            99,
            threads,
        )
    };
    let a = collect(1);
    let b = collect(3);
    let c = collect(8);
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for ((sa, sb), sc) in a.iter().zip(b.iter()).zip(c.iter()) {
        assert_eq!(sa.obs, sb.obs);
        assert_eq!(sa.obs, sc.obs);
        assert_eq!(sa.teacher_action, sb.teacher_action);
        assert_eq!(sa.weight.to_bits(), sb.weight.to_bits());
        assert_eq!(sa.weight.to_bits(), sc.weight.to_bits());
    }
}
