//! # metis — reproduction of *"Interpreting Deep Learning-Based Networking
//! Systems"* (Meng et al., SIGCOMM 2020)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`core`] — the Metis framework itself: decision-tree conversion of
//!   local systems (§3) and hypergraph critical-connection search for
//!   global systems (§4), plus the LIME/LEMNA baselines and the
//!   deployment cost model,
//! * [`abr`] — the Pensieve substrate: ABR simulator, traces, QoE, five
//!   heuristic baselines, the deep-RL agent in both Figure-10 variants,
//! * [`flowsched`] — the AuTO substrate: fabric DES, MLFQ, workloads,
//!   sRLA/lRLA agents,
//! * [`routing`] — the RouteNet* substrate: NSFNet, candidate paths,
//!   queueing ground truth, message-passing predictor, closed loop,
//! * [`hypergraph`] — hypergraph structure + differentiable mask search,
//! * [`serve`] — the online tree-serving engine: micro-batched request
//!   engine, hot-swap model registry, open-loop traffic generation,
//! * [`fabric`] — the multi-model serving fabric over [`serve`]:
//!   session-affine sharded routing, shadow serving with bit-exact
//!   response diffing, per-tenant SLO scheduling and reporting,
//! * [`sim`] — deterministic discrete-event core and the closed-loop ABR
//!   co-simulation: millions of client sessions driving the live fabric
//!   in virtual time, bit-identical for any thread or shard count,
//! * [`telemetry`] — the live telemetry plane: stage-attributed spans,
//!   streaming percentile sketches, a flight recorder, and Chrome
//!   trace-event timeline export across the serving fabric,
//! * [`obs`] — the streaming health plane over [`telemetry`]: per-scope
//!   time-series rings, multi-window SLO burn-rate alerts with
//!   hysteresis, quantile-drift detection, and per-stage tail-latency
//!   attribution, deterministic under the virtual clock,
//! * [`dt`] — CART trees with cost-complexity pruning and export,
//! * [`rl`] — env/policy traits, rollouts, actor-critic, VIPER utilities,
//! * [`nn`] — matrices, layers, optimizers, losses, autodiff tape.
//!
//! Start with `examples/quickstart.rs`; DESIGN.md maps every paper table
//! and figure to a crate and an experiment binary, and EXPERIMENTS.md
//! records paper-vs-measured outcomes.

pub use metis_abr as abr;
pub use metis_core as core;
pub use metis_dt as dt;
pub use metis_fabric as fabric;
pub use metis_flowsched as flowsched;
pub use metis_hypergraph as hypergraph;
pub use metis_nn as nn;
pub use metis_obs as obs;
pub use metis_rl as rl;
pub use metis_routing as routing;
pub use metis_serve as serve;
pub use metis_sim as sim;
pub use metis_telemetry as telemetry;
