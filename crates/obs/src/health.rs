//! Health reporting surfaces: the alert stream, the structured
//! [`HealthReport`], its deterministic digest, and the Prometheus-style
//! text exposition.

use metis_telemetry::fnv1a;
use serde::{Serialize, Value};

/// What an alert is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AlertKind {
    /// Fast-window burn rate crossed its threshold: a sharp regression.
    FastBurn,
    /// Slow-window burn rate crossed its threshold: sustained smoulder.
    SlowBurn,
    /// The latency distribution shifted versus the trailing baseline.
    Drift,
}

impl AlertKind {
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::FastBurn => "fast_burn",
            AlertKind::SlowBurn => "slow_burn",
            AlertKind::Drift => "drift",
        }
    }
}

/// One stage's contribution to an inflated window: estimated summed
/// duration (`mass_s`, upper bound via bucket edges) and its share of
/// the window's total stage mass.
#[derive(Debug, Clone, Serialize)]
pub struct StageShare {
    pub stage: String,
    pub mass_s: f64,
    pub share: f64,
}

/// One alert transition — a fire (`firing = true`, with tail
/// attribution) or a clear. `seq` orders the stream; `severity` is the
/// burn rate (or drift score in buckets) at the transition.
#[derive(Debug, Clone, Serialize)]
pub struct Alert {
    pub seq: u64,
    pub time_s: f64,
    pub tenant: String,
    pub deadline_class: u8,
    pub kind: AlertKind,
    pub firing: bool,
    pub severity: f64,
    /// Stages of the fired window ranked by duration mass, descending.
    /// Empty on clears and on windows with no stage mass.
    pub attribution: Vec<StageShare>,
}

impl Alert {
    /// Render as a global instant mark for the Chrome trace timeline.
    pub fn trace_mark(&self) -> Value {
        Value::Object(vec![
            (
                "name".to_string(),
                Value::String(format!(
                    "alert/{}/{}{}",
                    self.tenant,
                    self.kind.name(),
                    if self.firing { "" } else { "/clear" }
                )),
            ),
            ("ph".to_string(), Value::String("i".to_string())),
            ("s".to_string(), Value::String("g".to_string())),
            ("ts".to_string(), Value::Number(self.time_s * 1e6)),
            ("pid".to_string(), Value::Number(0.0)),
            ("tid".to_string(), Value::Number(0.0)),
            ("args".to_string(), self.to_value()),
        ])
    }

    /// Canonical text rendering fed to [`HealthReport::digest`]: floats
    /// by bit pattern, so equality means bit-identity.
    fn digest_text(&self, out: &mut String) {
        out.push_str(&format!(
            "|a{}@{:x}:{}/dc{}:{}:{}:{:x}",
            self.seq,
            self.time_s.to_bits(),
            self.tenant,
            self.deadline_class,
            self.kind.name(),
            if self.firing { "fire" } else { "clear" },
            self.severity.to_bits(),
        ));
        for share in &self.attribution {
            out.push_str(&format!(
                "<{}:{:x}:{:x}>",
                share.stage,
                share.mass_s.to_bits(),
                share.share.to_bits(),
            ));
        }
    }
}

/// One tenant's current health.
#[derive(Debug, Clone, Serialize)]
pub struct TenantHealth {
    pub tenant: String,
    pub deadline_class: u8,
    pub p99_budget_s: f64,
    pub fast_burn: f64,
    pub slow_burn: f64,
    pub fast_firing: bool,
    pub slow_firing: bool,
    /// Worst quantile shift vs the trailing baseline, in sketch buckets.
    pub drift_score: i64,
    pub drift_firing: bool,
    /// Served / over-budget counts in the slow window.
    pub window_served: u64,
    pub window_over: u64,
    /// All-of-run totals.
    pub served_total: u64,
    pub over_total: u64,
}

/// One scope's retained time series.
#[derive(Debug, Clone, Serialize)]
pub struct ScopeSeries {
    pub scenario: String,
    /// Shard index, `-1` for a control scope.
    pub shard: i64,
    pub tenant: String,
    pub deadline_class: u8,
    pub evicted: u64,
    pub samples: Vec<crate::TickSample>,
}

/// Everything the observer knows, snapshotted: serializable to JSON
/// ([`crate::Observer::health_json`]), renderable as Prometheus text,
/// digestable for the determinism suites.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    pub ticks: u64,
    pub time_s: f64,
    pub tenants: Vec<TenantHealth>,
    pub alerts: Vec<Alert>,
    pub scopes: Vec<ScopeSeries>,
}

impl HealthReport {
    /// FNV-1a digest of the report's **deterministic** surfaces: tick
    /// count and stamp, per-tenant monitor state, the full alert
    /// stream, and each scope series' counter/sketch history. Gauge
    /// watermarks (`queue_depth`, `inflight_batches`) are excluded, the
    /// same exception the telemetry plane's digest makes.
    pub fn digest(&self) -> u64 {
        let mut text = format!("ticks:{}@{:x}", self.ticks, self.time_s.to_bits());
        for t in &self.tenants {
            text.push_str(&format!(
                "|t:{}/dc{}:b{:x}:f{:x}{}:s{:x}{}:d{}{}:w{}/{}:c{}/{}",
                t.tenant,
                t.deadline_class,
                t.p99_budget_s.to_bits(),
                t.fast_burn.to_bits(),
                t.fast_firing as u8,
                t.slow_burn.to_bits(),
                t.slow_firing as u8,
                t.drift_score,
                t.drift_firing as u8,
                t.window_over,
                t.window_served,
                t.over_total,
                t.served_total,
            ));
        }
        for a in &self.alerts {
            a.digest_text(&mut text);
        }
        for s in &self.scopes {
            text.push_str(&format!(
                "|s:{}/{}/{}:e{}",
                s.scenario, s.shard, s.tenant, s.evicted
            ));
            for sample in &s.samples {
                text.push_str(&format!(
                    "[{:x}:{}:{}:{:?}",
                    sample.time_s.to_bits(),
                    sample.served_delta,
                    sample.batches_delta,
                    sample.latency,
                ));
                for stage in &sample.stages {
                    text.push_str(&format!(":{stage:?}"));
                }
                text.push(']');
            }
        }
        fnv1a(text.as_bytes())
    }

    /// Prometheus text-exposition rendering (gauges included — this is
    /// the monitoring surface, not the digestable one).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE metis_observer_ticks_total counter\n");
        out.push_str(&format!("metis_observer_ticks_total {}\n", self.ticks));
        out.push_str("# TYPE metis_tenant_burn_rate gauge\n");
        for t in &self.tenants {
            for (window, burn) in [("fast", t.fast_burn), ("slow", t.slow_burn)] {
                out.push_str(&format!(
                    "metis_tenant_burn_rate{{tenant=\"{}\",window=\"{}\"}} {}\n",
                    t.tenant, window, burn
                ));
            }
        }
        out.push_str("# TYPE metis_tenant_drift_score gauge\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "metis_tenant_drift_score{{tenant=\"{}\"}} {}\n",
                t.tenant, t.drift_score
            ));
        }
        out.push_str("# TYPE metis_tenant_slo_firing gauge\n");
        for t in &self.tenants {
            for (kind, firing) in [
                ("fast_burn", t.fast_firing),
                ("slow_burn", t.slow_firing),
                ("drift", t.drift_firing),
            ] {
                out.push_str(&format!(
                    "metis_tenant_slo_firing{{tenant=\"{}\",kind=\"{}\"}} {}\n",
                    t.tenant, kind, firing as u8
                ));
            }
        }
        out.push_str("# TYPE metis_tenant_over_budget_total counter\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "metis_tenant_over_budget_total{{tenant=\"{}\"}} {}\n",
                t.tenant, t.over_total
            ));
        }
        out.push_str("# TYPE metis_alert_transitions_total counter\n");
        out.push_str(&format!(
            "metis_alert_transitions_total {}\n",
            self.alerts.len()
        ));
        out.push_str("# TYPE metis_scope_served_total counter\n");
        out.push_str("# TYPE metis_scope_queue_depth gauge\n");
        out.push_str("# TYPE metis_scope_window_p99_seconds gauge\n");
        for s in &self.scopes {
            let labels = format!(
                "scenario=\"{}\",shard=\"{}\",tenant=\"{}\"",
                s.scenario,
                if s.shard < 0 {
                    "control".to_string()
                } else {
                    s.shard.to_string()
                },
                s.tenant
            );
            let served: u64 = s.samples.iter().map(|t| t.served_delta).sum();
            out.push_str(&format!("metis_scope_served_total{{{labels}}} {served}\n"));
            if let Some(last) = s.samples.last() {
                out.push_str(&format!(
                    "metis_scope_queue_depth{{{labels}}} {}\n",
                    last.queue_depth
                ));
                if let Some(p99) = last.latency.quantile(0.99) {
                    out.push_str(&format!(
                        "metis_scope_window_p99_seconds{{{labels}}} {p99}\n"
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> HealthReport {
        HealthReport {
            ticks: 2,
            time_s: 4.0,
            tenants: vec![TenantHealth {
                tenant: "gold".to_string(),
                deadline_class: 1,
                p99_budget_s: 0.01,
                fast_burn: 12.5,
                slow_burn: 1.5,
                fast_firing: true,
                slow_firing: false,
                drift_score: 2,
                drift_firing: false,
                window_served: 100,
                window_over: 10,
                served_total: 300,
                over_total: 10,
            }],
            alerts: vec![Alert {
                seq: 0,
                time_s: 4.0,
                tenant: "gold".to_string(),
                deadline_class: 1,
                kind: AlertKind::FastBurn,
                firing: true,
                severity: 12.5,
                attribution: vec![StageShare {
                    stage: "kernel_compute".to_string(),
                    mass_s: 0.8,
                    share: 1.0,
                }],
            }],
            scopes: Vec::new(),
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive_but_ignores_gauges() {
        let a = report();
        assert_eq!(a.digest(), report().digest());
        let mut hotter = report();
        hotter.alerts[0].severity = 13.0;
        assert_ne!(a.digest(), hotter.digest());
        let mut sample = crate::TickSample {
            time_s: 1.0,
            served_delta: 5,
            batches_delta: 1,
            queue_depth: 0,
            inflight_batches: 0,
            latency: Default::default(),
            stages: Vec::new(),
        };
        let mut with_scope = report();
        with_scope.scopes.push(ScopeSeries {
            scenario: "s".to_string(),
            shard: 0,
            tenant: "gold".to_string(),
            deadline_class: 1,
            evicted: 0,
            samples: vec![sample.clone()],
        });
        let base = with_scope.digest();
        // Gauges are monitoring-only: changing one must not move the digest.
        sample.queue_depth = 42;
        sample.inflight_batches = 3;
        with_scope.scopes[0].samples[0] = sample.clone();
        assert_eq!(with_scope.digest(), base);
        // Counters are deterministic surfaces: changing one must.
        sample.served_delta = 6;
        with_scope.scopes[0].samples[0] = sample;
        assert_ne!(with_scope.digest(), base);
    }

    #[test]
    fn report_serializes_to_json() {
        let json = serde_json::to_string(&report()).unwrap();
        for needle in ["\"fast_burn\"", "FastBurn", "\"attribution\"", "gold"] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn trace_marks_are_global_instants() {
        let mark = report().alerts[0].trace_mark();
        let o = mark.as_object().unwrap();
        let get = |key: &str| o.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap();
        assert_eq!(get("name").as_str(), Some("alert/gold/fast_burn"));
        assert_eq!(get("ph").as_str(), Some("i"));
        assert_eq!(get("s").as_str(), Some("g"));
        assert_eq!(get("ts").as_f64(), Some(4e6));
    }
}
