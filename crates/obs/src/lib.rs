//! # metis-obs — the streaming health plane
//!
//! `metis_telemetry` (PR 9) made the serving fabric's internals visible
//! *at an instant*: gauges, spans, percentile sketches, a flight
//! recorder. This crate adds the missing dimension — **time** — and the
//! judgement layered on top of it:
//!
//! * [`ring`] — per-(scenario, shard) **time-series rings**: every
//!   observer tick snapshots each scope's counters, gauges, and sketches
//!   and retains the windowed *deltas* in a bounded ring, so "what did
//!   the last N seconds look like" is answerable mid-run,
//! * [`slo`] — **multi-window SLO burn-rate monitors** per tenant:
//!   the tenant's `TenantSpec` p99 budget plus an error-budget fraction
//!   define "how many requests may run over"; a fast window catches
//!   sharp regressions in seconds, a slow window catches smoulder, and
//!   hysteresis keeps alerts from flapping at the threshold,
//! * drift detection — the current window's latency histogram against a
//!   trailing merged baseline, scored as the worst quantile shift in
//!   **buckets** (multiples of the sketch's γ), so "the tail moved two
//!   buckets" is meaningful without choosing units,
//! * [`health`] — **tail attribution** and reporting: when an alert
//!   fires, the fired window's stage sketches (queue-wait / batch-form /
//!   kernel / collect / publish) are ranked by duration mass to say
//!   *which stage inflated the tail*, and the whole plane renders as a
//!   structured [`HealthReport`], a Prometheus-style text exposition,
//!   and a JSON snapshot.
//!
//! ## Determinism contract
//!
//! The [`Observer`] has no thread, no timer, and never reads a wall
//! clock: someone *ticks* it — a scraper thread under a real clock, a
//! scheduled `metis_sim` event in co-simulation. Under a virtual clock
//! every input (tick stamp, counter value, sketch bucket) is a pure
//! function of the submission/swap/tick schedule, so the alert stream
//! and [`HealthReport::digest`] are bit-identical across worker thread
//! counts and stripe widths (`tests/obs_determinism.rs`). Gauge
//! watermarks ride along in the rings for monitoring but are excluded
//! from digests, mirroring the telemetry plane's contract.
//!
//! ## Disabled cost
//!
//! A disabled telemetry plane registers no scopes, so a tick on it is a
//! single `is_enabled` test — the observer goes inert and
//! behaviour-invariant (`METIS_TELEMETRY=0` CI runs the same schedules
//! through it). The enabled cost is gated in `BENCH_serving.json`
//! (`obs_overhead_pct`, same ≤ 5% ceiling as the telemetry plane).

pub mod health;
pub mod ring;
pub mod slo;

pub use health::{Alert, AlertKind, HealthReport, ScopeSeries, StageShare, TenantHealth};
pub use ring::{TickSample, TimeSeriesRing};
pub use slo::{BurnMonitor, SloSpec};

use metis_serve::Clock;
use metis_telemetry::{SketchSnapshot, Stage, Telemetry};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

const N_STAGES: usize = Stage::ALL.len();
/// Quantiles the drift score sweeps: median, body, tail.
const DRIFT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Observer knobs. Windows are counted in **ticks**; the tick period
/// itself (`tick_s`) is chosen by whoever drives the observer (the
/// co-sim event loop, a scraper thread) and recorded here so derived
/// rates can be labeled.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Nominal tick period in seconds (schedule hint for drivers).
    pub tick_s: f64,
    /// Ticks retained per scope ring.
    pub ring_capacity: usize,
    /// Fast burn window, in ticks — catches sharp regressions.
    pub fast_window: usize,
    /// Slow burn window, in ticks — catches sustained smoulder.
    pub slow_window: usize,
    /// Trailing baseline the drift detector merges, in ticks.
    pub baseline_window: usize,
    /// Error-budget fraction of the tenant's traffic allowed over its
    /// p99 budget (0.01 ⇒ 1% may exceed before burn rate hits 1.0).
    pub error_budget: f64,
    /// Burn-rate threshold for the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn: f64,
    /// Consecutive calm ticks required before a firing alert clears
    /// (hysteresis; 0 clears on the first calm tick).
    pub clear_ticks: u32,
    /// Quantile shift (in sketch buckets, multiples of γ) at which the
    /// drift monitor fires.
    pub drift_buckets: i64,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            tick_s: 1.0,
            ring_capacity: 240,
            fast_window: 3,
            slow_window: 12,
            baseline_window: 24,
            error_budget: 0.01,
            fast_burn: 8.0,
            slow_burn: 2.0,
            clear_ticks: 2,
            drift_buckets: 4,
        }
    }
}

/// Per-scope incremental state: the previous cumulative snapshots the
/// next tick diffs against, plus the retained ring.
struct ScopeTrack {
    ring: TimeSeriesRing,
    prev_latency: SketchSnapshot,
    prev_stages: Vec<SketchSnapshot>,
    prev_served: u64,
    prev_batches: u64,
    tenant_idx: Option<usize>,
}

/// One tick's merged view of a tenant (across all of its scopes).
struct TenantTick {
    served: u64,
    over: u64,
    latency: SketchSnapshot,
    stages: Vec<SketchSnapshot>,
}

/// Per-tenant monitor state.
struct TenantTrack {
    spec: SloSpec,
    /// Recent ticks, newest last; capped at
    /// `max(slow_window, fast_window + baseline_window)`.
    window: VecDeque<TenantTick>,
    served_total: u64,
    over_total: u64,
    fast: BurnMonitor,
    slow: BurnMonitor,
    drift: BurnMonitor,
    last_fast_burn: f64,
    last_slow_burn: f64,
    last_drift: i64,
}

struct ObsState {
    ticks: u64,
    time_s: f64,
    scopes: Vec<ScopeTrack>,
    tenants: Vec<TenantTrack>,
    alerts: Vec<Alert>,
}

/// The streaming health plane. Layers on a [`Telemetry`] plane; holds
/// no thread and reads no wall clock — drive it via [`Observer::tick`]
/// (or [`Observer::tick_now`] when a [`Clock`] is attached).
pub struct Observer {
    plane: Telemetry,
    cfg: ObserverConfig,
    clock: Option<Arc<Clock>>,
    state: Mutex<ObsState>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap();
        f.debug_struct("Observer")
            .field("ticks", &st.ticks)
            .field("tenants", &st.tenants.len())
            .field("alerts", &st.alerts.len())
            .finish_non_exhaustive()
    }
}

impl Observer {
    /// Build an observer over `plane`, monitoring one SLO per entry in
    /// `slos` (normally derived from the fabric's `TenantSpec`s — see
    /// `Router::observer`).
    pub fn new(plane: Telemetry, slos: Vec<SloSpec>, cfg: ObserverConfig) -> Self {
        let tenants = slos
            .into_iter()
            .map(|spec| TenantTrack {
                spec,
                window: VecDeque::new(),
                served_total: 0,
                over_total: 0,
                fast: BurnMonitor::new(),
                slow: BurnMonitor::new(),
                drift: BurnMonitor::new(),
                last_fast_burn: 0.0,
                last_slow_burn: 0.0,
                last_drift: 0,
            })
            .collect();
        Observer {
            plane,
            cfg,
            clock: None,
            state: Mutex::new(ObsState {
                ticks: 0,
                time_s: 0.0,
                scopes: Vec::new(),
                tenants,
                alerts: Vec::new(),
            }),
        }
    }

    /// Attach the clock [`Observer::tick_now`] stamps from.
    pub fn with_clock(mut self, clock: Arc<Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    pub fn config(&self) -> &ObserverConfig {
        &self.cfg
    }

    /// The monitored SLOs, in monitor order.
    pub fn slos(&self) -> Vec<SloSpec> {
        self.state
            .lock()
            .unwrap()
            .tenants
            .iter()
            .map(|t| t.spec.clone())
            .collect()
    }

    /// Tick stamped from the attached clock (panics without one).
    pub fn tick_now(&self) {
        let clock = self
            .clock
            .as_ref()
            .expect("Observer::tick_now requires with_clock");
        self.tick(clock.now_s());
    }

    /// One observation cycle at stamp `now_s`: snapshot every telemetry
    /// scope, push windowed deltas into the rings, advance each
    /// tenant's burn/drift monitors, and append any alert transitions.
    ///
    /// Call only at quiescent points under a virtual clock (after
    /// `collect()`, or as a scheduled co-sim event) — that is what makes
    /// the alert stream a pure function of the schedule. A disabled
    /// telemetry plane makes this a no-op.
    pub fn tick(&self, now_s: f64) {
        if !self.plane.is_enabled() {
            return;
        }
        let scopes = self.plane.scopes();
        let mut st = self.state.lock().unwrap();
        let st = &mut *st;
        // Scope registration is append-only in a deterministic order, so
        // tracks stay index-aligned; adopt any scopes new since last tick.
        for scope in scopes.iter().skip(st.scopes.len()) {
            let tenant_idx = st
                .tenants
                .iter()
                .position(|t| t.spec.tenant == scope.tenant());
            st.scopes.push(ScopeTrack {
                ring: TimeSeriesRing::new(self.cfg.ring_capacity),
                prev_latency: SketchSnapshot::default(),
                prev_stages: vec![SketchSnapshot::default(); N_STAGES],
                prev_served: 0,
                prev_batches: 0,
                tenant_idx,
            });
        }
        let mut tenant_ticks: Vec<TenantTick> = st
            .tenants
            .iter()
            .map(|_| TenantTick {
                served: 0,
                over: 0,
                latency: SketchSnapshot::default(),
                stages: vec![SketchSnapshot::default(); N_STAGES],
            })
            .collect();
        for (track, scope) in st.scopes.iter_mut().zip(&scopes) {
            let latency = scope.latency.cumulative().snapshot();
            let latency_delta = latency.saturating_delta(&track.prev_latency);
            track.prev_latency = latency;
            let mut stage_deltas = Vec::with_capacity(N_STAGES);
            for (si, stage) in Stage::ALL.iter().enumerate() {
                let snap = scope.stage_sketch(*stage).snapshot();
                stage_deltas.push(snap.saturating_delta(&track.prev_stages[si]));
                track.prev_stages[si] = snap;
            }
            let served = scope.served.get();
            let served_delta = served.saturating_sub(track.prev_served);
            track.prev_served = served;
            let batches = scope.batches.get();
            let batches_delta = batches.saturating_sub(track.prev_batches);
            track.prev_batches = batches;
            if let Some(ti) = track.tenant_idx {
                let tt = &mut tenant_ticks[ti];
                tt.served += served_delta;
                tt.latency = tt.latency.merged(&latency_delta);
                for (acc, d) in tt.stages.iter_mut().zip(&stage_deltas) {
                    *acc = acc.merged(d);
                }
            }
            track.ring.push(TickSample {
                time_s: now_s,
                served_delta,
                batches_delta,
                queue_depth: scope.queue_depth.get(),
                inflight_batches: scope.inflight_batches.get(),
                latency: latency_delta,
                stages: stage_deltas,
            });
        }
        let window_cap = self
            .cfg
            .slow_window
            .max(self.cfg.fast_window + self.cfg.baseline_window)
            .max(1);
        for (ti, mut tick) in tenant_ticks.into_iter().enumerate() {
            let tr = &mut st.tenants[ti];
            tick.over = tick.latency.count_over(tr.spec.p99_budget_s);
            tr.served_total += tick.served;
            tr.over_total += tick.over;
            while tr.window.len() >= window_cap {
                tr.window.pop_front();
            }
            tr.window.push_back(tick);
            let fast_burn = window_burn(&tr.window, self.cfg.fast_window, self.cfg.error_budget);
            let slow_burn = window_burn(&tr.window, self.cfg.slow_window, self.cfg.error_budget);
            let drift = drift_score(&tr.window, self.cfg.fast_window, self.cfg.baseline_window);
            tr.last_fast_burn = fast_burn;
            tr.last_slow_burn = slow_burn;
            tr.last_drift = drift;
            let transitions = [
                (
                    AlertKind::FastBurn,
                    tr.fast
                        .step(fast_burn >= self.cfg.fast_burn, self.cfg.clear_ticks),
                    fast_burn,
                    self.cfg.fast_window,
                ),
                (
                    AlertKind::SlowBurn,
                    tr.slow
                        .step(slow_burn >= self.cfg.slow_burn, self.cfg.clear_ticks),
                    slow_burn,
                    self.cfg.slow_window,
                ),
                (
                    AlertKind::Drift,
                    tr.drift
                        .step(drift >= self.cfg.drift_buckets, self.cfg.clear_ticks),
                    drift as f64,
                    self.cfg.fast_window,
                ),
            ];
            for (kind, fired, severity, window) in transitions {
                let Some(firing) = fired else { continue };
                st.alerts.push(Alert {
                    seq: st.alerts.len() as u64,
                    time_s: now_s,
                    tenant: tr.spec.tenant.clone(),
                    deadline_class: tr.spec.deadline_class,
                    kind,
                    firing,
                    severity,
                    attribution: if firing {
                        attribution(&tr.window, window)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        st.ticks += 1;
        st.time_s = now_s;
    }

    /// The full alert stream so far (fires and clears, in order).
    pub fn alerts(&self) -> Vec<Alert> {
        self.state.lock().unwrap().alerts.clone()
    }

    /// Structured snapshot of everything the observer knows.
    pub fn health_report(&self) -> HealthReport {
        let st = self.state.lock().unwrap();
        let scopes = self.plane.scopes();
        HealthReport {
            ticks: st.ticks,
            time_s: st.time_s,
            tenants: st
                .tenants
                .iter()
                .map(|t| {
                    let (window_over, window_served) = window_sums(&t.window, self.cfg.slow_window);
                    TenantHealth {
                        tenant: t.spec.tenant.clone(),
                        deadline_class: t.spec.deadline_class,
                        p99_budget_s: t.spec.p99_budget_s,
                        fast_burn: t.last_fast_burn,
                        slow_burn: t.last_slow_burn,
                        fast_firing: t.fast.firing(),
                        slow_firing: t.slow.firing(),
                        drift_score: t.last_drift,
                        drift_firing: t.drift.firing(),
                        window_served,
                        window_over,
                        served_total: t.served_total,
                        over_total: t.over_total,
                    }
                })
                .collect(),
            alerts: st.alerts.clone(),
            scopes: st
                .scopes
                .iter()
                .zip(&scopes)
                .map(|(track, scope)| ScopeSeries {
                    scenario: scope.scenario().to_string(),
                    shard: if scope.shard() == metis_telemetry::CONTROL_SHARD {
                        -1
                    } else {
                        scope.shard() as i64
                    },
                    tenant: scope.tenant().to_string(),
                    deadline_class: scope.deadline_class(),
                    evicted: track.ring.evicted(),
                    samples: track.ring.samples().to_vec(),
                })
                .collect(),
        }
    }

    /// Digest of the deterministic health surfaces — see
    /// [`HealthReport::digest`].
    pub fn digest(&self) -> u64 {
        self.health_report().digest()
    }

    /// Prometheus-style text exposition of the current health state.
    pub fn prometheus_text(&self) -> String {
        self.health_report().prometheus_text()
    }

    /// JSON snapshot of [`Observer::health_report`].
    pub fn health_json(&self) -> String {
        serde_json::to_string(&self.health_report()).expect("health report serializes infallibly")
    }

    /// The telemetry plane's Chrome trace document with every alert
    /// transition appended as a global instant mark, so health incidents
    /// line up with the span timeline in `chrome://tracing`.
    pub fn chrome_trace(&self) -> serde::Value {
        let mut doc = self.plane.chrome_trace();
        let alerts = self.alerts();
        if let serde::Value::Object(fields) = &mut doc {
            if let Some((_, serde::Value::Array(events))) =
                fields.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                for a in &alerts {
                    events.push(a.trace_mark());
                }
            }
        }
        doc
    }

    /// [`Observer::chrome_trace`] rendered to a JSON string.
    pub fn chrome_trace_json(&self) -> String {
        serde_json::to_string(&self.chrome_trace()).expect("trace document serializes infallibly")
    }
}

/// Burn rate over the newest `window` ticks: the fraction of requests
/// that ran over budget, normalized by the error budget — 1.0 means
/// "exactly consuming budget", higher burns it faster. 0 on no traffic.
fn window_burn(window: &VecDeque<TenantTick>, ticks: usize, error_budget: f64) -> f64 {
    let (over, served) = window_sums(window, ticks);
    if served == 0 || error_budget <= 0.0 {
        return 0.0;
    }
    (over as f64 / served as f64) / error_budget
}

fn window_sums(window: &VecDeque<TenantTick>, ticks: usize) -> (u64, u64) {
    let skip = window.len().saturating_sub(ticks);
    window
        .iter()
        .skip(skip)
        .fold((0, 0), |(o, s), t| (o + t.over, s + t.latency.total))
}

/// Worst quantile shift (in buckets) between the merged latency of the
/// newest `current` ticks and the merged `baseline` ticks before them.
/// 0 until both windows hold traffic.
fn drift_score(window: &VecDeque<TenantTick>, current: usize, baseline: usize) -> i64 {
    let n = window.len();
    if n < current + 1 {
        return 0;
    }
    let cur = merge_range(window, n - current, n);
    let base_start = n.saturating_sub(current + baseline);
    let base = merge_range(window, base_start, n - current);
    if cur.total == 0 || base.total == 0 {
        return 0;
    }
    DRIFT_QUANTILES
        .iter()
        .filter_map(|&q| Some((cur.quantile_index(q)? - base.quantile_index(q)?).abs()))
        .max()
        .unwrap_or(0)
}

fn merge_range(window: &VecDeque<TenantTick>, from: usize, to: usize) -> SketchSnapshot {
    let mut merged = SketchSnapshot::default();
    for t in window.iter().skip(from).take(to.saturating_sub(from)) {
        merged = merged.merged(&t.latency);
    }
    merged
}

/// Rank the stages of the newest `ticks` ticks by duration mass: which
/// stage the inflated window's time actually went to. Empty when the
/// window carries no stage mass (e.g. a drift alert on idle churn).
fn attribution(window: &VecDeque<TenantTick>, ticks: usize) -> Vec<StageShare> {
    let skip = window.len().saturating_sub(ticks);
    let mut merged = vec![SketchSnapshot::default(); N_STAGES];
    for t in window.iter().skip(skip) {
        for (acc, s) in merged.iter_mut().zip(&t.stages) {
            *acc = acc.merged(s);
        }
    }
    let masses: Vec<f64> = merged.iter().map(SketchSnapshot::mass_s).collect();
    let total: f64 = masses.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return Vec::new();
    }
    let mut shares: Vec<StageShare> = Stage::ALL
        .iter()
        .zip(&masses)
        .map(|(stage, &mass_s)| StageShare {
            stage: stage.name().to_string(),
            mass_s,
            share: mass_s / total,
        })
        .collect();
    // Stable sort: equal masses keep the canonical stage order.
    shares.sort_by(|a, b| b.mass_s.total_cmp(&a.mass_s));
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(budget_s: f64) -> Vec<SloSpec> {
        vec![SloSpec {
            tenant: "gold".to_string(),
            deadline_class: 1,
            p99_budget_s: budget_s,
        }]
    }

    fn fast_cfg() -> ObserverConfig {
        ObserverConfig {
            fast_window: 2,
            slow_window: 4,
            baseline_window: 2,
            clear_ticks: 1,
            drift_buckets: 3,
            ..Default::default()
        }
    }

    /// Drive `n` requests of `latency_s` through a scope at `t`.
    fn serve(scope: &metis_telemetry::ShardTelemetry, t: f64, n: usize, latency_s: f64) {
        let latencies = vec![latency_s; n];
        let waits = vec![latency_s * 0.5; n];
        scope.on_requests(t, &latencies, &waits);
        scope.on_batch_open();
        scope.record_flush(&metis_telemetry::FlushStamps {
            open_s: t - latency_s,
            kernel_start_s: t,
            kernel_end_s: t,
            close_s: t,
            rows: n,
            epoch: 0,
            width: 1,
        });
    }

    #[test]
    fn burn_alert_fires_attributes_and_clears_with_hysteresis() {
        let plane = Telemetry::enabled();
        let scope = plane.register_scope("s", 0, "gold", 1).unwrap();
        let obs = Observer::new(plane, slo(0.010), fast_cfg());
        // Two healthy ticks: 1 ms latencies, far under the 10 ms budget.
        serve(&scope, 1.0, 100, 0.001);
        obs.tick(1.0);
        serve(&scope, 2.0, 100, 0.001);
        obs.tick(2.0);
        assert!(obs.alerts().is_empty());
        // A bad tick: half the traffic at 500 ms. Fast burn ≈ 50 ⇒ fire.
        serve(&scope, 3.0, 50, 0.5);
        serve(&scope, 3.5, 50, 0.001);
        obs.tick(4.0);
        let alerts = obs.alerts();
        assert!(
            alerts
                .iter()
                .any(|a| a.kind == AlertKind::FastBurn && a.firing),
            "fast burn must fire: {alerts:?}"
        );
        let fired = alerts
            .iter()
            .find(|a| a.kind == AlertKind::FastBurn)
            .unwrap();
        assert!(fired.severity > 8.0);
        assert!(!fired.attribution.is_empty(), "fired alerts attribute");
        let shares: f64 = fired.attribution.iter().map(|s| s.share).sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares normalize: {shares}");
        assert!(
            fired
                .attribution
                .windows(2)
                .all(|w| w[0].mass_s >= w[1].mass_s),
            "attribution is ranked by mass"
        );
        // One calm tick: hysteresis (clear_ticks = 1) holds it firing
        // through the calm count, then clears.
        serve(&scope, 5.0, 100, 0.001);
        obs.tick(5.0);
        serve(&scope, 6.0, 100, 0.001);
        obs.tick(6.0);
        let alerts = obs.alerts();
        let cleared = alerts
            .iter()
            .filter(|a| a.kind == AlertKind::FastBurn && !a.firing)
            .count();
        assert_eq!(cleared, 1, "fast burn clears once calm: {alerts:?}");
        let report = obs.health_report();
        assert!(!report.tenants[0].fast_firing);
        assert!(report.tenants[0].over_total >= 50);
        assert_ne!(report.digest(), 0);
    }

    #[test]
    fn drift_fires_on_a_distribution_shift_without_budget_misses() {
        let plane = Telemetry::enabled();
        let scope = plane.register_scope("s", 0, "gold", 1).unwrap();
        // Budget is generous: nothing ever misses it, only the shape moves.
        let obs = Observer::new(plane, slo(10.0), fast_cfg());
        for k in 0..4 {
            serve(&scope, k as f64, 100, 0.001);
            obs.tick(k as f64);
        }
        // The whole distribution jumps 1 ms → 100 ms: ~53 buckets of γ.
        for k in 4..6 {
            serve(&scope, k as f64, 100, 0.1);
            obs.tick(k as f64);
        }
        let alerts = obs.alerts();
        assert!(
            alerts
                .iter()
                .any(|a| a.kind == AlertKind::Drift && a.firing),
            "drift must fire: {alerts:?}"
        );
        assert!(
            !alerts.iter().any(|a| a.kind == AlertKind::FastBurn),
            "no burn without budget misses: {alerts:?}"
        );
        assert!(obs.health_report().tenants[0].drift_score >= 3);
    }

    #[test]
    fn disabled_plane_makes_the_observer_inert() {
        let plane = Telemetry::off();
        let obs = Observer::new(plane, slo(0.001), ObserverConfig::default());
        for k in 0..10 {
            obs.tick(k as f64);
        }
        let report = obs.health_report();
        assert_eq!(report.ticks, 0, "disabled plane: ticks are no-ops");
        assert!(report.alerts.is_empty());
        assert!(report.scopes.is_empty());
        assert_eq!(
            obs.digest(),
            Observer::new(Telemetry::off(), slo(0.001), ObserverConfig::default()).digest()
        );
    }

    #[test]
    fn rings_retain_windowed_deltas_and_count_evictions() {
        let plane = Telemetry::enabled();
        let scope = plane.register_scope("s", 0, "gold", 0).unwrap();
        let cfg = ObserverConfig {
            ring_capacity: 2,
            ..fast_cfg()
        };
        let obs = Observer::new(plane, slo(1.0), cfg);
        for k in 0..5 {
            serve(&scope, k as f64, 10 * (k + 1), 0.001);
            obs.tick(k as f64);
        }
        let report = obs.health_report();
        let series = &report.scopes[0];
        assert_eq!(series.samples.len(), 2, "ring capped");
        assert_eq!(series.evicted, 3);
        // Deltas, not cumulatives: the last tick served 50, not 150.
        assert_eq!(series.samples[1].served_delta, 50);
        assert_eq!(series.samples[1].latency.total, 50);
        assert_eq!(report.tenants[0].served_total, 150);
    }

    #[test]
    fn trace_export_carries_alert_marks() {
        let plane = Telemetry::enabled();
        let scope = plane.register_scope("s", 0, "gold", 1).unwrap();
        let obs = Observer::new(plane, slo(0.001), fast_cfg());
        serve(&scope, 1.0, 100, 0.5);
        obs.tick(1.0);
        assert!(!obs.alerts().is_empty());
        let json = obs.chrome_trace_json();
        assert!(json.contains("alert/gold/fast_burn"), "trace: {json}");
        let doc: serde::Value = serde_json::from_str(&json).unwrap();
        let events = doc
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "traceEvents"))
            .and_then(|(_, v)| v.as_array())
            .unwrap();
        assert!(events
            .iter()
            .filter_map(|e| e.as_object())
            .any(|o| o.iter().any(|(k, v)| k == "s" && v.as_str() == Some("g"))));
    }

    #[test]
    fn prometheus_text_exposes_burn_and_series() {
        let plane = Telemetry::enabled();
        let scope = plane.register_scope("s", 0, "gold", 1).unwrap();
        let obs = Observer::new(plane.clone(), slo(0.010), fast_cfg());
        serve(&scope, 1.0, 100, 0.5);
        obs.tick(1.0);
        let text = obs.prometheus_text();
        for needle in [
            "metis_observer_ticks_total 1",
            "metis_tenant_burn_rate{tenant=\"gold\",window=\"fast\"}",
            "metis_tenant_slo_firing{tenant=\"gold\",kind=\"fast_burn\"} 1",
            "metis_scope_served_total{scenario=\"s\",shard=\"0\",tenant=\"gold\"} 100",
            "# TYPE metis_tenant_burn_rate gauge",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
