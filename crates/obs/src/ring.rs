//! Bounded per-scope time-series: one [`TickSample`] per observer tick,
//! oldest evicted, evictions counted — the "what did the last N ticks
//! look like" substrate under the burn/drift monitors.

use metis_telemetry::SketchSnapshot;
use serde::Serialize;

/// One observer tick's view of a telemetry scope: counter **deltas**
/// since the previous tick, gauge watermarks at the tick instant, and
/// the windowed sketch deltas (latency plus every stage).
///
/// Counter/sketch fields are deterministic under a virtual clock; the
/// gauge fields (`queue_depth`, `inflight_batches`) are instantaneous
/// monitoring data and are excluded from digests.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TickSample {
    pub time_s: f64,
    pub served_delta: u64,
    pub batches_delta: u64,
    pub queue_depth: i64,
    pub inflight_batches: i64,
    /// Latency recorded in the tick's window (sketch delta).
    pub latency: SketchSnapshot,
    /// Per-stage duration deltas, indexed like `Stage::ALL`.
    pub stages: Vec<SketchSnapshot>,
}

/// Bounded ring of [`TickSample`]s, oldest-first.
#[derive(Debug)]
pub struct TimeSeriesRing {
    capacity: usize,
    samples: Vec<TickSample>,
    evicted: u64,
}

impl TimeSeriesRing {
    pub fn new(capacity: usize) -> Self {
        TimeSeriesRing {
            capacity: capacity.max(1),
            samples: Vec::new(),
            evicted: 0,
        }
    }

    /// Append a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: TickSample) {
        if self.samples.len() == self.capacity {
            self.samples.remove(0);
            self.evicted += 1;
        }
        self.samples.push(sample);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> &[TickSample] {
        &self.samples
    }

    /// Samples aged out by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> TickSample {
        TickSample {
            time_s: t,
            served_delta: 1,
            batches_delta: 1,
            queue_depth: 0,
            inflight_batches: 0,
            latency: SketchSnapshot::default(),
            stages: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let mut ring = TimeSeriesRing::new(3);
        for k in 0..5 {
            ring.push(sample(k as f64));
        }
        assert_eq!(ring.samples().len(), 3);
        assert_eq!(ring.samples()[0].time_s, 2.0);
        assert_eq!(ring.samples()[2].time_s, 4.0);
        assert_eq!(ring.evicted(), 2);
    }
}
