//! SLO definitions and the hysteretic alert state machine.
//!
//! Burn rate is the classic multi-window construction: with an error
//! budget of `b` (fraction of traffic allowed over the latency budget),
//! a window whose over-budget fraction is `f` burns at `f / b` — 1.0
//! consumes budget exactly as provisioned, 8.0 exhausts a month's
//! budget in ~4 days. A **fast** window (few ticks) catches sharp
//! regressions quickly; a **slow** window catches smoulder a fast
//! window averages away. [`BurnMonitor`] adds hysteresis so an alert
//! oscillating around its threshold fires once, not every tick.

use serde::Serialize;

/// One tenant's service-level objective, derived from the fabric's
/// `TenantSpec` (see `Router::observer`): requests should finish within
/// `p99_budget_s`, and at most the observer's `error_budget` fraction
/// may run over.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSpec {
    pub tenant: String,
    pub deadline_class: u8,
    /// Latency budget in seconds (`f64::INFINITY` = unconstrained:
    /// nothing counts as over, so burn monitors stay quiet).
    pub p99_budget_s: f64,
}

impl SloSpec {
    pub fn new(tenant: &str, deadline_class: u8, p99_budget_s: f64) -> Self {
        SloSpec {
            tenant: tenant.to_string(),
            deadline_class,
            p99_budget_s,
        }
    }
}

/// Two-state alert machine with clear-side hysteresis: fires the tick
/// its condition first holds, clears only after `clear_ticks`
/// consecutive calm ticks.
#[derive(Debug, Default)]
pub struct BurnMonitor {
    firing: bool,
    calm_ticks: u32,
}

impl BurnMonitor {
    pub fn new() -> Self {
        BurnMonitor::default()
    }

    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Advance one tick; clearing needs `clear_ticks` consecutive calm
    /// ticks (min 1). Returns `Some(true)` on a fire transition,
    /// `Some(false)` on a clear transition, `None` when steady.
    pub fn step(&mut self, hot: bool, clear_ticks: u32) -> Option<bool> {
        if hot {
            self.calm_ticks = 0;
            if !self.firing {
                self.firing = true;
                return Some(true);
            }
        } else if self.firing {
            self.calm_ticks += 1;
            if self.calm_ticks >= clear_ticks.max(1) {
                self.firing = false;
                self.calm_ticks = 0;
                return Some(false);
            }
        } else {
            self.calm_ticks = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_and_clears_after_hysteresis() {
        let mut m = BurnMonitor::new();
        assert_eq!(m.step(false, 2), None);
        assert_eq!(m.step(true, 2), Some(true), "first hot tick fires");
        assert_eq!(m.step(true, 2), None, "staying hot is steady");
        assert_eq!(m.step(false, 2), None, "one calm tick: hysteresis holds");
        assert_eq!(m.step(false, 2), Some(false), "second calm tick clears");
        assert!(!m.firing());
    }

    #[test]
    fn flapping_at_the_threshold_does_not_reclear() {
        let mut m = BurnMonitor::new();
        assert_eq!(m.step(true, 2), Some(true));
        // Alternating hot/calm never reaches 3 consecutive calm ticks.
        for _ in 0..10 {
            assert_eq!(m.step(false, 2), None);
            assert_eq!(m.step(true, 2), None);
        }
        assert!(m.firing());
    }

    #[test]
    fn zero_clear_ticks_still_requires_one_calm_tick() {
        let mut m = BurnMonitor::new();
        assert_eq!(m.step(true, 0), Some(true));
        assert_eq!(m.step(false, 0), Some(false));
    }
}
