//! Lane-vectorized compiled-tree kernel and the forest evaluator built on
//! top of it — the raw-speed serving substrate behind
//! [`crate::CompiledTree::predict_batch_into`].
//!
//! # Quantized node layout
//!
//! [`NodeTable`] stores the flattened tree as parallel columns in
//! breadth-first order (hot top levels contiguous at the front):
//!
//! ```text
//! feat:    [u16]  feature id tested at the node   (leaves: 0)
//! left:    [u32]  child when x[feat] <  thr       (leaves: self)
//! right:   [u32]  child when x[feat] >= thr, NaN  (leaves: self)
//! pair:    [u64]  left | right << 32 — both children in one gather
//! thr:     [f64]  split threshold, own column     (leaves: +inf)
//! payload: [u32]  leaf answer: class id or value index (internal: 0)
//! ```
//!
//! Leaves are **self-loops** (`left == right == own index`), so the walk
//! needs no leaf test on its hot path: a finished row simply steps in
//! place, and a level where *every* lane stepped in place terminates the
//! block. Feature ids are `u16` and child indices `u32` for cache
//! density; thresholds stay `f64` in their own contiguous column because
//! the bit-exactness contract (`x[f] < thr`, NaN routes right — the same
//! comparator as [`crate::DecisionTree::predict`]) does not survive
//! narrowing: CART midpoints are generally not representable in `f32`,
//! and a rounded threshold flips rows that land between the two.
//!
//! # Lane walk
//!
//! [`walk_payloads`] advances [`LANES`] rows together, one level per
//! pass, with a branch-free select per lane (`if` on the comparison
//! compiles to a conditional move — no branch mispredicts on data-
//! dependent splits). All lanes issue independent loads, so the walk is
//! throughput-bound rather than latency-bound; compares and select masks
//! autovectorize, the per-lane feature gathers pipeline. A block exits as
//! soon as every lane is at a leaf (detected by the self-loop XOR trick),
//! so skewed trees do not pay `LANES × max_depth`.
//!
//! On x86-64 the block walk dispatches at runtime to hand-written
//! AVX-512 or AVX2 variants that use hardware gathers (`vgatherdps`
//! family) for the `feat`/row/`thr`/`pair` loads — LLVM refuses to emit
//! gathers for the portable loop and falls back to element-wise
//! insert/extract sequences, which cost roughly a third of the walk.
//! The comparator is `_CMP_LT_OQ`, which is *exactly* `x[f] < thr` with
//! NaN ordered false (routes right), so the SIMD paths stay inside the
//! bit-exactness contract; self-loop leaves survive the select unchanged
//! because a leaf's `thr = +inf` sends real values left and NaN right,
//! both of which are the leaf itself. Set `METIS_NO_GATHER=1` to force
//! the portable walk — an escape hatch for hosts where microcode
//! mitigations (e.g. Downfall) made gathers slow, and the A/B lever the
//! benches use.
//!
//! # In-register tables
//!
//! Trees with at most [`INREG_NODES`] nodes (CCP-pruned Metis trees are
//! routinely this small) additionally carry an [`InRegTable`]: the
//! `thr`/`pair`/`feat` columns padded to 64 entries. On AVX-512 hosts the
//! walk then loads the whole node table into zmm registers **once per
//! block** and replaces the per-level `thr`/`pair`/`feat` hardware
//! gathers with `vpermi2pd`/`vpermi2q`/`vpermi2d` register-resident
//! lookups (a two-deep blend cascade on index bits 4–5 covers all 64
//! entries); only the per-row feature load remains a real gather. The
//! same `_CMP_LT_OQ` comparator keeps the path inside the bit-exactness
//! contract, and `METIS_NO_GATHER=1` disables it along with the gather
//! walks.

use crate::tree::{CompiledTree, DecisionTree, Prediction, TreeKind};
use serde::{Deserialize, Serialize};

/// Rows walked together per block. 16 keeps a 143-feature block (the
/// repo's widest serving schema) inside L1 alongside the hot node
/// columns while giving the core enough independent loads to pipeline.
pub const LANES: usize = 16;

/// Largest node count that still fits the in-register table: 64 entries
/// per column fill eight zmm registers of `f64` thresholds, eight of
/// packed child pairs, and four of widened feature ids — twenty of the
/// thirty-two architectural zmm registers, leaving headroom for the
/// walk's working set.
pub const INREG_NODES: usize = 64;

/// The node columns of a small tree padded to [`INREG_NODES`] entries so
/// the AVX-512 walk can keep the whole table register-resident (see the
/// module docs). Entries past the real node count are self-loop leaves
/// with `thr = +inf`, so a stray lookup behaves like a settled lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct InRegTable {
    /// Split thresholds, `+inf` padded (64 × f64 — eight zmm).
    pub(crate) thr: Vec<f64>,
    /// Packed `left | right << 32` child pairs (64 × u64 — eight zmm).
    pub(crate) pair: Vec<u64>,
    /// Feature ids widened to `u32` (64 × u32 — four zmm).
    pub(crate) feat: Vec<u32>,
}

impl InRegTable {
    /// Pad the built columns of a table with at most [`INREG_NODES`]
    /// nodes. Returns `None` for larger trees.
    fn build(table: &NodeTable) -> Option<InRegTable> {
        let n = table.len();
        if n > INREG_NODES {
            return None;
        }
        let mut reg = InRegTable {
            thr: vec![f64::INFINITY; INREG_NODES],
            pair: (0..INREG_NODES as u64).map(|i| i | i << 32).collect(),
            feat: vec![0; INREG_NODES],
        };
        reg.thr[..n].copy_from_slice(&table.thr);
        reg.pair[..n].copy_from_slice(&table.pair);
        for (wide, &narrow) in reg.feat.iter_mut().zip(&table.feat) {
            *wide = narrow as u32;
        }
        Some(reg)
    }
}

/// The quantized structure-of-arrays node layout (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NodeTable {
    /// Feature ids, padded with one trailing 0 so a 32-bit gather at the
    /// last node id stays in bounds (the gather lanes read 4 bytes each).
    pub(crate) feat: Vec<u16>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    /// Both u32 child indices of each node packed `left | right << 32`,
    /// so the SIMD walk fetches a node's children with one 64-bit gather.
    pub(crate) pair: Vec<u64>,
    pub(crate) thr: Vec<f64>,
    pub(crate) payload: Vec<u32>,
    /// Maximum root→leaf edge count — the walk's iteration bound.
    pub(crate) depth: usize,
    /// Register-resident copy of the columns for trees with at most
    /// [`INREG_NODES`] nodes; `None` for larger trees.
    pub(crate) inreg: Option<InRegTable>,
}

impl NodeTable {
    /// Flatten a (compacted) [`DecisionTree`] breadth-first. Leaves become
    /// self-loops with `thr = +inf`; leaf payloads are the class index for
    /// classifiers or an index into the returned `values` for regressors.
    pub(crate) fn build(tree: &DecisionTree) -> (NodeTable, Vec<f64>) {
        assert!(
            tree.n_features() <= u16::MAX as usize + 1,
            "kernel node layout stores feature ids as u16; tree has {} features",
            tree.n_features()
        );
        let n = tree.node_count();
        assert!(n <= u32::MAX as usize, "tree too large for u32 node ids");
        let mut table = NodeTable {
            feat: vec![0; n],
            left: vec![0; n],
            right: vec![0; n],
            pair: Vec::new(),
            thr: vec![f64::INFINITY; n],
            payload: vec![0; n],
            depth: 0,
            inreg: None,
        };
        let mut values = Vec::new();
        // BFS over the arena: `order[new] = old`, `remap[old] = new`.
        let mut remap = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, 0usize));
        let mut next_id = 0u32;
        remap[0] = 0;
        next_id += 1;
        while let Some((old, level)) = queue.pop_front() {
            let new = remap[old] as usize;
            table.depth = table.depth.max(level);
            let node = tree.node(old);
            match &node.split {
                Some(s) => {
                    table.feat[new] = s.feature as u16;
                    table.thr[new] = s.threshold;
                    remap[s.left] = next_id;
                    table.left[new] = next_id;
                    next_id += 1;
                    remap[s.right] = next_id;
                    table.right[new] = next_id;
                    next_id += 1;
                    queue.push_back((s.left, level + 1));
                    queue.push_back((s.right, level + 1));
                }
                None => {
                    table.left[new] = new as u32;
                    table.right[new] = new as u32;
                    table.payload[new] = match node.stats.prediction() {
                        Prediction::Class(c) => c as u32,
                        Prediction::Value(v) => {
                            values.push(v);
                            (values.len() - 1) as u32
                        }
                    };
                }
            }
        }
        debug_assert_eq!(next_id as usize, n);
        table.pair = table
            .left
            .iter()
            .zip(&table.right)
            .map(|(&l, &r)| l as u64 | (r as u64) << 32)
            .collect();
        table.feat.push(0); // gather over-read pad (see field doc)
        table.inreg = InRegTable::build(&table);
        (table, values)
    }

    pub(crate) fn len(&self) -> usize {
        self.left.len()
    }

    /// True when node `i` is a leaf (self-loop).
    #[inline]
    pub(crate) fn is_leaf(&self, i: usize) -> bool {
        self.left[i] == i as u32
    }
}

/// Advance one block of `L` rows (`rows.len() == L * nf`) from the root
/// to their leaves, writing each row's leaf **payload** into `out`.
///
/// The inner loop is branch-free per lane: gather the tested feature,
/// compare against the threshold column (`<`, so NaN fails and routes
/// right — bit-identical to [`DecisionTree::predict`]), select the child.
/// `live` accumulates `next ^ current` across the lanes; it is zero
/// exactly when every lane was already sitting on a self-loop leaf, which
/// ends the block early on shallow or skewed trees. `depth` bounds the
/// loop as a defensive backstop (a well-formed table always exits via
/// `live == 0` first, at most one level later).
#[inline]
fn walk_block<const L: usize>(t: &NodeTable, rows: &[f64], nf: usize, out: &mut [u32]) {
    debug_assert_eq!(rows.len(), L * nf);
    debug_assert_eq!(out.len(), L);
    let mut idx = [0u32; L];
    for _ in 0..=t.depth {
        let mut live = 0u32;
        for (l, slot) in idx.iter_mut().enumerate() {
            let i = *slot as usize;
            // SAFETY: `i` is a node id produced by the table itself
            // (children and self-loops are in-bounds by construction),
            // `feat[i] < nf` for internal nodes and 0 for leaves, and the
            // caller asserted `rows.len() == L * nf` with `nf >= 1`.
            unsafe {
                let f = *t.feat.get_unchecked(i) as usize;
                let x = *rows.get_unchecked(l * nf + f);
                let go_left = x < *t.thr.get_unchecked(i);
                let next = if go_left {
                    *t.left.get_unchecked(i)
                } else {
                    *t.right.get_unchecked(i)
                };
                *slot = next;
                live |= next ^ i as u32;
            }
        }
        if live == 0 {
            break;
        }
    }
    for l in 0..L {
        debug_assert!(t.is_leaf(idx[l] as usize));
        out[l] = t.payload[idx[l] as usize];
    }
}

/// Hardware-gather lane walk (x86-64 AVX2). The portable [`walk_block`]
/// leaves LLVM to synthesize the per-lane feature/threshold/child loads
/// as element-wise insert/extract sequences; with AVX2 each of those
/// becomes one real gather instruction per 4-lane group:
///
/// * `feat[i]` — 32-bit gather at byte scale 2 over the `u16` column
///   (masked to the low half; the column carries one pad element so the
///   widest lane read stays in bounds),
/// * `rows[lane_base + f]` and `thr[i]` — 4×f64 gathers,
/// * both children — **one** 64-bit gather over the packed `pair`
///   column, the comparison mask selecting the low (left) or high
///   (right) half per lane.
///
/// The comparator is `_CMP_LT_OQ` — exactly `x < thr` (quiet, NaN
/// compares false and routes right), so results stay bit-identical to
/// the portable walk; a unit test pins the two against each other.
#[cfg(target_arch = "x86_64")]
mod gather {
    use super::{InRegTable, NodeTable, LANES};
    use std::arch::x86_64::*;

    const GROUPS: usize = LANES / 4;
    const _: () = assert!(LANES.is_multiple_of(4));

    /// Which gather walk can serve this table and row shape. Preconditions
    /// shared by both widths: every gathered offset (node ids,
    /// lane-relative row offsets) fits the gathers' signed 32-bit indices.
    #[derive(Clone, Copy, PartialEq)]
    pub(super) enum Width {
        None,
        /// 4-lane (ymm) gathers.
        Avx2,
        /// 8-lane (zmm) gathers — half the gather instructions per level.
        Avx512,
        /// Register-resident node table (`vpermi2*` lookups): zmm lanes
        /// with zero table gathers per level.
        InReg512,
    }

    #[inline]
    pub(super) fn applicable(t: &NodeTable, nf: usize) -> Width {
        if t.len() > i32::MAX as usize || LANES * nf > i32::MAX as usize || disabled() {
            return Width::None;
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vl") {
            if t.inreg.is_some() {
                return Width::InReg512;
            }
            return Width::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Width::Avx2;
        }
        Width::None
    }

    /// `METIS_NO_GATHER=1` forces the portable walk — an escape hatch for
    /// hosts whose microcode makes AVX2 gathers slower than plain loads
    /// (post-Downfall Intel), and the lever A/B measurements use.
    fn disabled() -> bool {
        static DISABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *DISABLED.get_or_init(|| std::env::var_os("METIS_NO_GATHER").is_some_and(|v| v != "0"))
    }

    /// # Safety
    ///
    /// Caller must check [`applicable`] (AVX2 present, 32-bit-indexable
    /// table and block) and pass `rows.len() == LANES * nf`,
    /// `out.len() == LANES`, `nf >= 1`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk_block(t: &NodeTable, rows: &[f64], nf: usize, out: &mut [u32]) {
        debug_assert_eq!(rows.len(), LANES * nf);
        debug_assert_eq!(out.len(), LANES);
        let feat = t.feat.as_ptr() as *const i32;
        let thr = t.thr.as_ptr();
        let pair = t.pair.as_ptr() as *const i64;
        let rp = rows.as_ptr();
        let low16 = _mm_set1_epi32(0xFFFF);
        // Lane order 0,2,4,6 picks the low 32 bits of each 64-bit lane.
        let pick_low = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
        let base: [__m128i; GROUPS] = std::array::from_fn(|g| {
            _mm_setr_epi32(
                ((4 * g) * nf) as i32,
                ((4 * g + 1) * nf) as i32,
                ((4 * g + 2) * nf) as i32,
                ((4 * g + 3) * nf) as i32,
            )
        });
        let mut idx = [_mm_setzero_si128(); GROUPS];
        for _ in 0..=t.depth {
            let mut settled = true;
            for g in 0..GROUPS {
                let i = idx[g];
                let f = _mm_and_si128(_mm_i32gather_epi32::<2>(feat, i), low16);
                let x = _mm256_i32gather_pd::<8>(rp, _mm_add_epi32(base[g], f));
                let th = _mm256_i32gather_pd::<8>(thr, i);
                let go_left = _mm256_cmp_pd::<_CMP_LT_OQ>(x, th);
                let pr = _mm256_i32gather_epi64::<8>(pair, i);
                let sel = _mm256_blendv_epi8(
                    _mm256_srli_epi64::<32>(pr),
                    pr,
                    _mm256_castpd_si256(go_left),
                );
                let next = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(sel, pick_low));
                settled &= _mm_movemask_epi8(_mm_cmpeq_epi32(next, i)) == 0xFFFF;
                idx[g] = next;
            }
            if settled {
                break;
            }
        }
        let mut lanes = [0u32; LANES];
        for (g, &v) in idx.iter().enumerate() {
            _mm_storeu_si128(lanes.as_mut_ptr().add(4 * g) as *mut __m128i, v);
        }
        for l in 0..LANES {
            debug_assert!(t.is_leaf(lanes[l] as usize));
            out[l] = *t.payload.get_unchecked(lanes[l] as usize);
        }
    }

    /// The same walk with 8-lane zmm gathers: one gather per column per
    /// 8 rows, the compare producing a k-mask that selects the packed
    /// child halves via a masked shift. Same `_CMP_LT_OQ` comparator,
    /// same results.
    ///
    /// # Safety
    ///
    /// As [`walk_block`], but requires AVX-512 F + VL.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub(super) unsafe fn walk_block_512(t: &NodeTable, rows: &[f64], nf: usize, out: &mut [u32]) {
        const G: usize = LANES / 8;
        const _: () = assert!(LANES.is_multiple_of(8));
        debug_assert_eq!(rows.len(), LANES * nf);
        debug_assert_eq!(out.len(), LANES);
        let feat = t.feat.as_ptr() as *const i32;
        let thr = t.thr.as_ptr();
        let pair = t.pair.as_ptr() as *const i64;
        let rp = rows.as_ptr();
        let low16 = _mm256_set1_epi32(0xFFFF);
        let base: [__m256i; G] = std::array::from_fn(|g| {
            let mut b = [0i32; 8];
            for (j, slot) in b.iter_mut().enumerate() {
                *slot = ((8 * g + j) * nf) as i32;
            }
            _mm256_loadu_si256(b.as_ptr() as *const __m256i)
        });
        let mut idx = [_mm256_setzero_si256(); G];
        for _ in 0..=t.depth {
            let mut settled = true;
            for g in 0..G {
                let i = idx[g];
                let f = _mm256_and_si256(_mm256_i32gather_epi32::<2>(feat, i), low16);
                let x = _mm512_i32gather_pd::<8>(_mm256_add_epi32(base[g], f), rp);
                let th = _mm512_i32gather_pd::<8>(i, thr);
                let go_left = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(x, th);
                let pr = _mm512_i32gather_epi64::<8>(i, pair);
                // Lanes going right take the pair's high half.
                let sel = _mm512_mask_srli_epi64::<32>(pr, !go_left, pr);
                let next = _mm512_cvtepi64_epi32(sel);
                settled &= _mm256_cmpeq_epi32_mask(next, i) == 0xFF;
                idx[g] = next;
            }
            if settled {
                break;
            }
        }
        let mut lanes = [0u32; LANES];
        for (g, &v) in idx.iter().enumerate() {
            _mm256_storeu_si256(lanes.as_mut_ptr().add(8 * g) as *mut __m256i, v);
        }
        for l in 0..LANES {
            debug_assert!(t.is_leaf(lanes[l] as usize));
            out[l] = *t.payload.get_unchecked(lanes[l] as usize);
        }
    }

    /// The register-resident walk for tables that fit [`InRegTable`]:
    /// the `thr`/`pair`/`feat` columns are loaded into twenty zmm
    /// registers **once per block**, and each level resolves them with
    /// `vpermi2pd`/`vpermi2q`/`vpermi2d` two-table permutes — a blend
    /// cascade on node-index bits 4–5 extends the 16-entry (f64/u64) and
    /// 32-entry (u32) permute reach to all 64 padded entries. The only
    /// remaining hardware gather per level is the per-row feature load,
    /// which is data-dependent on the request batch and cannot live in
    /// registers. Same `_CMP_LT_OQ` comparator, same results as the
    /// portable walk.
    ///
    /// # Safety
    ///
    /// As [`walk_block`], but requires AVX-512 F + VL, and `reg` must be
    /// the [`InRegTable`] built from `t`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub(super) unsafe fn walk_block_inreg(
        t: &NodeTable,
        reg: &InRegTable,
        rows: &[f64],
        nf: usize,
        out: &mut [u32],
    ) {
        const G: usize = LANES / 8;
        const _: () = assert!(LANES.is_multiple_of(8));
        debug_assert_eq!(rows.len(), LANES * nf);
        debug_assert_eq!(out.len(), LANES);
        let rp = rows.as_ptr();
        // The whole node table, register-resident for the block.
        let th_tab: [__m512d; 8] = std::array::from_fn(|j| _mm512_loadu_pd(&reg.thr[8 * j]));
        let pr_tab: [__m512i; 8] =
            std::array::from_fn(|j| _mm512_loadu_epi64(reg.pair.as_ptr().add(8 * j) as *const i64));
        let ft_tab: [__m512i; 4] =
            std::array::from_fn(
                |j| _mm512_loadu_epi32(reg.feat.as_ptr().add(16 * j) as *const i32),
            );
        let bit4_64 = _mm512_set1_epi64(16);
        let bit5_64 = _mm512_set1_epi64(32);
        let bit5_32 = _mm512_set1_epi32(32);
        let base: [__m256i; G] = std::array::from_fn(|g| {
            let mut b = [0i32; 8];
            for (j, slot) in b.iter_mut().enumerate() {
                *slot = ((8 * g + j) * nf) as i32;
            }
            _mm256_loadu_si256(b.as_ptr() as *const __m256i)
        });
        let mut idx = [_mm256_setzero_si256(); G];
        for _ in 0..=t.depth {
            let mut settled = true;
            for g in 0..G {
                let i = idx[g];
                // feat[i]: two 32-entry vpermi2d halves, bit 5 selects.
                let idz = _mm512_zextsi256_si512(i);
                let f_lo = _mm512_permutex2var_epi32(ft_tab[0], idz, ft_tab[1]);
                let f_hi = _mm512_permutex2var_epi32(ft_tab[2], idz, ft_tab[3]);
                let b5_32 = _mm512_test_epi32_mask(idz, bit5_32);
                let f = _mm512_castsi512_si256(_mm512_mask_blend_epi32(b5_32, f_lo, f_hi));
                let x = _mm512_i32gather_pd::<8>(_mm256_add_epi32(base[g], f), rp);
                // thr[i] / pair[i]: four 16-entry vpermi2 quarters each,
                // bits 4 then 5 select through the cascade.
                let i64s = _mm512_cvtepu32_epi64(i);
                let b4 = _mm512_test_epi64_mask(i64s, bit4_64);
                let b5 = _mm512_test_epi64_mask(i64s, bit5_64);
                let th = _mm512_mask_blend_pd(
                    b5,
                    _mm512_mask_blend_pd(
                        b4,
                        _mm512_permutex2var_pd(th_tab[0], i64s, th_tab[1]),
                        _mm512_permutex2var_pd(th_tab[2], i64s, th_tab[3]),
                    ),
                    _mm512_mask_blend_pd(
                        b4,
                        _mm512_permutex2var_pd(th_tab[4], i64s, th_tab[5]),
                        _mm512_permutex2var_pd(th_tab[6], i64s, th_tab[7]),
                    ),
                );
                let pr = _mm512_mask_blend_epi64(
                    b5,
                    _mm512_mask_blend_epi64(
                        b4,
                        _mm512_permutex2var_epi64(pr_tab[0], i64s, pr_tab[1]),
                        _mm512_permutex2var_epi64(pr_tab[2], i64s, pr_tab[3]),
                    ),
                    _mm512_mask_blend_epi64(
                        b4,
                        _mm512_permutex2var_epi64(pr_tab[4], i64s, pr_tab[5]),
                        _mm512_permutex2var_epi64(pr_tab[6], i64s, pr_tab[7]),
                    ),
                );
                let go_left = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(x, th);
                // Lanes going right take the pair's high half.
                let sel = _mm512_mask_srli_epi64::<32>(pr, !go_left, pr);
                let next = _mm512_cvtepi64_epi32(sel);
                settled &= _mm256_cmpeq_epi32_mask(next, i) == 0xFF;
                idx[g] = next;
            }
            if settled {
                break;
            }
        }
        let mut lanes = [0u32; LANES];
        for (g, &v) in idx.iter().enumerate() {
            _mm256_storeu_si256(lanes.as_mut_ptr().add(8 * g) as *mut __m256i, v);
        }
        for l in 0..LANES {
            debug_assert!(t.is_leaf(lanes[l] as usize));
            out[l] = *t.payload.get_unchecked(lanes[l] as usize);
        }
    }
}

/// Walk one row to its leaf payload — the scalar path for block tails
/// and single-request serving. Same comparator, same NaN routing.
#[inline]
pub(crate) fn walk_one(t: &NodeTable, x: &[f64]) -> u32 {
    let mut idx = 0u32;
    loop {
        let i = idx as usize;
        if t.left[i] == idx {
            return t.payload[i];
        }
        idx = if x[t.feat[i] as usize] < t.thr[i] {
            t.left[i]
        } else {
            t.right[i]
        };
    }
}

/// Walk a row-major block (`rows.len() == out.len() * nf`) to leaf
/// payloads: full [`LANES`]-row blocks through the lane walk, the tail
/// through the scalar walk. Per row the payload is identical to
/// [`walk_one`], and therefore to [`DecisionTree::predict`].
pub(crate) fn walk_payloads(t: &NodeTable, rows: &[f64], nf: usize, out: &mut [u32]) {
    let n = out.len();
    debug_assert_eq!(rows.len(), n * nf);
    let blocks = n / LANES;
    #[cfg(target_arch = "x86_64")]
    let width = gather::applicable(t, nf);
    for b in 0..blocks {
        let block_rows = &rows[b * LANES * nf..(b + 1) * LANES * nf];
        let block_out = &mut out[b * LANES..(b + 1) * LANES];
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: applicable() verified the ISA features and 32-bit
            // indexability; the slices are exactly one LANES-row block.
            match width {
                gather::Width::InReg512 => {
                    let reg = t.inreg.as_ref().expect("InReg512 dispatch without table");
                    unsafe { gather::walk_block_inreg(t, reg, block_rows, nf, block_out) };
                    continue;
                }
                gather::Width::Avx512 => {
                    unsafe { gather::walk_block_512(t, block_rows, nf, block_out) };
                    continue;
                }
                gather::Width::Avx2 => {
                    unsafe { gather::walk_block(t, block_rows, nf, block_out) };
                    continue;
                }
                gather::Width::None => {}
            }
        }
        walk_block::<LANES>(t, block_rows, nf, block_out);
    }
    for r in blocks * LANES..n {
        out[r] = walk_one(t, &rows[r * nf..(r + 1) * nf]);
    }
}

/// Errors raised when assembling a [`Forest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// A forest needs at least one tree.
    Empty,
    /// All member trees must share one [`TreeKind`] (same class count for
    /// classifiers, or all regressors).
    MixedKind,
    /// All member trees must take the same feature width.
    MixedFeatures,
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::Empty => write!(f, "forest needs at least one tree"),
            ForestError::MixedKind => write!(f, "forest trees disagree on kind"),
            ForestError::MixedFeatures => write!(f, "forest trees disagree on feature width"),
        }
    }
}

impl std::error::Error for ForestError {}

/// An ensemble evaluator over compiled trees sharing one schema.
///
/// Evaluation is **block-major**: for each [`LANES`]-row block, every
/// member tree walks the block before the evaluator advances to the next
/// rows — the feature block is loaded into cache once and amortized
/// across all trees, instead of streaming the whole batch through memory
/// once per tree. Votes (classification) or sums (regression) accumulate
/// per lane in tree-index order, so the reduction is bit-identical to
/// evaluating the member trees one by one:
///
/// * **Classification** — majority vote over the member trees' predicted
///   classes; ties break toward the lowest class index.
/// * **Regression** — the mean `(v_0 + v_1 + … + v_{k-1}) / k`, summed in
///   tree-index order, one division at the end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<CompiledTree>,
    kind: TreeKind,
    n_features: usize,
}

impl Forest {
    /// Compile a forest from source trees. Fails unless all trees agree
    /// on kind and feature width.
    pub fn from_trees(trees: &[DecisionTree]) -> Result<Forest, ForestError> {
        Forest::from_compiled(trees.iter().map(CompiledTree::compile).collect())
    }

    /// Assemble a forest from already-compiled trees.
    pub fn from_compiled(trees: Vec<CompiledTree>) -> Result<Forest, ForestError> {
        let first = trees.first().ok_or(ForestError::Empty)?;
        let (kind, n_features) = (first.kind(), first.n_features());
        for t in &trees {
            if t.kind() != kind {
                return Err(ForestError::MixedKind);
            }
            if t.n_features() != n_features {
                return Err(ForestError::MixedFeatures);
            }
        }
        Ok(Forest {
            trees,
            kind,
            n_features,
        })
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// The member trees, in vote order.
    pub fn trees(&self) -> &[CompiledTree] {
        &self.trees
    }

    /// Ensemble prediction for one feature vector (see the type docs for
    /// the exact reduction contract).
    pub fn predict(&self, x: &[f64]) -> Prediction {
        assert_eq!(
            x.len(),
            self.n_features,
            "predict: expected {} features, got {}",
            self.n_features,
            x.len()
        );
        match self.kind {
            TreeKind::Classifier { n_classes } => {
                let mut votes = vec![0u32; n_classes];
                for tree in &self.trees {
                    votes[walk_one(tree.table(), x) as usize] += 1;
                }
                Prediction::Class(argmax_lowest(&votes))
            }
            TreeKind::Regressor => {
                let mut sum = 0.0f64;
                for tree in &self.trees {
                    sum += tree.values()[walk_one(tree.table(), x) as usize];
                }
                Prediction::Value(sum / self.trees.len() as f64)
            }
        }
    }

    /// Batched ensemble prediction over a row-major block
    /// (`rows.len() == out.len() * n_features`), block-major across the
    /// member trees. Per row the result is bit-identical to
    /// [`Forest::predict`].
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut [Prediction]) {
        let n = out.len();
        let nf = self.n_features;
        assert_eq!(
            rows.len(),
            n * nf,
            "predict_batch_into: {} values is not {} rows of {} features",
            rows.len(),
            n,
            nf
        );
        let k = self.trees.len();
        let mut payloads = [0u32; LANES];
        match self.kind {
            TreeKind::Classifier { n_classes } => {
                let mut votes = vec![0u32; LANES * n_classes];
                let mut block = 0usize;
                while block < n {
                    let rows_here = LANES.min(n - block);
                    votes[..rows_here * n_classes].fill(0);
                    for tree in &self.trees {
                        walk_payloads(
                            tree.table(),
                            &rows[block * nf..(block + rows_here) * nf],
                            nf,
                            &mut payloads[..rows_here],
                        );
                        for (l, &p) in payloads[..rows_here].iter().enumerate() {
                            votes[l * n_classes + p as usize] += 1;
                        }
                    }
                    for l in 0..rows_here {
                        out[block + l] = Prediction::Class(argmax_lowest(
                            &votes[l * n_classes..(l + 1) * n_classes],
                        ));
                    }
                    block += rows_here;
                }
            }
            TreeKind::Regressor => {
                let mut sums = [0.0f64; LANES];
                let mut block = 0usize;
                while block < n {
                    let rows_here = LANES.min(n - block);
                    sums[..rows_here].fill(0.0);
                    for tree in &self.trees {
                        walk_payloads(
                            tree.table(),
                            &rows[block * nf..(block + rows_here) * nf],
                            nf,
                            &mut payloads[..rows_here],
                        );
                        for (l, &p) in payloads[..rows_here].iter().enumerate() {
                            sums[l] += tree.values()[p as usize];
                        }
                    }
                    for l in 0..rows_here {
                        out[block + l] = Prediction::Value(sums[l] / k as f64);
                    }
                    block += rows_here;
                }
            }
        }
    }

    /// [`Forest::predict_batch_into`] into a fresh vector.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<Prediction> {
        assert!(
            self.n_features > 0 && rows.len().is_multiple_of(self.n_features),
            "predict_batch: {} values do not divide into {}-feature rows",
            rows.len(),
            self.n_features
        );
        let mut out = vec![Prediction::Class(0); rows.len() / self.n_features];
        self.predict_batch_into(rows, &mut out);
        out
    }
}

/// Index of the maximum vote count, lowest index winning ties — the
/// deterministic majority-vote tie-break every evaluator shares.
#[inline]
fn argmax_lowest(votes: &[u32]) -> usize {
    let mut best = 0usize;
    for (c, &v) in votes.iter().enumerate() {
        if v > votes[best] {
            best = c;
        }
    }
    best
}
