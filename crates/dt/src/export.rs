//! Human-readable tree rendering: the ASCII equivalent of the paper's
//! Figure 7 (top-k layers with per-node decision-frequency annotations) and
//! a Graphviz exporter for offline viewing.

use crate::tree::{DecisionTree, NodeStats, Prediction};
use std::fmt::Write as _;

/// Options for ASCII rendering.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Only render this many layers below the root (like Figure 7's "top 4
    /// layers"). `None` renders everything.
    pub max_depth: Option<usize>,
    /// Class labels (e.g. `["300kbps", ...]`). Falls back to `class k`.
    pub class_labels: Option<Vec<String>>,
    /// Show full class-frequency annotations on internal nodes.
    pub show_frequencies: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_depth: None,
            class_labels: None,
            show_frequencies: true,
        }
    }
}

fn feature_name(tree: &DecisionTree, f: usize) -> String {
    tree.feature_names
        .as_ref()
        .and_then(|n| n.get(f).cloned())
        .unwrap_or_else(|| format!("x[{f}]"))
}

fn class_name(opts: &RenderOptions, c: usize) -> String {
    opts.class_labels
        .as_ref()
        .and_then(|l| l.get(c).cloned())
        .unwrap_or_else(|| format!("class {c}"))
}

fn describe_stats(stats: &NodeStats, opts: &RenderOptions) -> String {
    match stats {
        NodeStats::Class { .. } => {
            let freqs = stats.class_frequencies().unwrap_or_default();
            if opts.show_frequencies {
                let mut ranked: Vec<(usize, f64)> = freqs.iter().cloned().enumerate().collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                let parts: Vec<String> = ranked
                    .iter()
                    .filter(|(_, f)| *f >= 0.005)
                    .take(4)
                    .map(|(c, f)| format!("{} {:.0}%", class_name(opts, *c), f * 100.0))
                    .collect();
                format!("[{}]", parts.join(", "))
            } else {
                match stats.prediction() {
                    Prediction::Class(c) => format!("-> {}", class_name(opts, c)),
                    Prediction::Value(_) => unreachable!(),
                }
            }
        }
        NodeStats::Value { .. } => match stats.prediction() {
            Prediction::Value(v) => format!("-> {v:.4}"),
            Prediction::Class(_) => unreachable!(),
        },
    }
}

/// Render the tree as indented ASCII (stable output; used in golden tests
/// and the Figure-7 experiment binary).
pub fn render(tree: &DecisionTree, opts: &RenderOptions) -> String {
    let mut out = String::new();
    render_node(tree, 0, 0, "", true, opts, &mut out);
    out
}

fn render_node(
    tree: &DecisionTree,
    idx: usize,
    depth: usize,
    prefix: &str,
    is_root: bool,
    opts: &RenderOptions,
    out: &mut String,
) {
    let node = tree.node(idx);
    let truncated = opts.max_depth.is_some_and(|m| depth >= m) && node.split.is_some();
    let label = match (&node.split, truncated) {
        (Some(s), false) => format!(
            "{} < {:.3}?  {}",
            feature_name(tree, s.feature),
            s.threshold,
            describe_stats(&node.stats, opts)
        ),
        (Some(_), true) => format!("...  {}", describe_stats(&node.stats, opts)),
        (None, _) => describe_stats(
            &node.stats,
            &RenderOptions {
                show_frequencies: false,
                ..opts.clone()
            },
        ),
    };
    if is_root {
        let _ = writeln!(out, "{label}");
    } else {
        let _ = writeln!(out, "{prefix}{label}");
    }
    if truncated {
        return;
    }
    if let Some(s) = &node.split {
        let child_prefix = if is_root {
            String::new()
        } else {
            // Replace the branch glyph of our own line with continuation.
            let base = &prefix[..prefix.len().saturating_sub("├── ".len())];
            format!("{base}│   ")
        };
        let lp = format!("{child_prefix}├── ");
        let rp = format!("{child_prefix}└── ");
        render_node(tree, s.left, depth + 1, &lp, false, opts, out);
        render_node(tree, s.right, depth + 1, &rp, false, opts, out);
    }
}

/// Export in Graphviz `dot` format.
pub fn to_graphviz(tree: &DecisionTree, opts: &RenderOptions) -> String {
    let mut out = String::from("digraph tree {\n  node [shape=box, fontname=\"monospace\"];\n");
    let mut stack = vec![0usize];
    let mut visited_depth = vec![(0usize, 0usize)];
    visited_depth.clear();
    stack.clear();
    stack.push(0);
    let mut depths = std::collections::HashMap::new();
    depths.insert(0usize, 0usize);
    while let Some(idx) = stack.pop() {
        let depth = depths[&idx];
        if opts.max_depth.is_some_and(|m| depth > m) {
            continue;
        }
        let node = tree.node(idx);
        let label = match &node.split {
            Some(s) => format!(
                "{} < {:.3}\\n{}",
                feature_name(tree, s.feature),
                s.threshold,
                describe_stats(&node.stats, opts).replace('"', "'")
            ),
            None => describe_stats(
                &node.stats,
                &RenderOptions {
                    show_frequencies: false,
                    ..opts.clone()
                },
            )
            .replace('"', "'"),
        };
        let _ = writeln!(out, "  n{idx} [label=\"{label}\"];");
        if let Some(s) = &node.split {
            if opts.max_depth.is_none_or(|m| depth < m) {
                let _ = writeln!(out, "  n{idx} -> n{} [label=\"yes\"];", s.left);
                let _ = writeln!(out, "  n{idx} -> n{} [label=\"no\"];", s.right);
                depths.insert(s.left, depth + 1);
                depths.insert(s.right, depth + 1);
                stack.push(s.left);
                stack.push(s.right);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fit, TreeConfig};
    use crate::dataset::Dataset;

    fn sample_tree() -> DecisionTree {
        let x = vec![
            vec![0.0, 9.0],
            vec![0.2, 1.0],
            vec![0.4, 8.0],
            vec![0.6, 2.0],
            vec![0.8, 7.0],
            vec![1.0, 3.0],
        ];
        let y = vec![0, 0, 1, 1, 2, 2];
        let mut tree = fit(
            &Dataset::classification(x, y, 3).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        tree.feature_names = Some(vec!["buffer".into(), "throughput".into()]);
        tree
    }

    #[test]
    fn render_contains_feature_names_and_percentages() {
        let tree = sample_tree();
        let opts = RenderOptions {
            class_labels: Some(vec!["300kbps".into(), "750kbps".into(), "1200kbps".into()]),
            ..Default::default()
        };
        let s = render(&tree, &opts);
        assert!(s.contains("buffer"), "render:\n{s}");
        assert!(s.contains('%'), "render:\n{s}");
        assert!(s.contains("300kbps"), "render:\n{s}");
        assert!(s.contains("├──"));
        assert!(s.contains("└──"));
    }

    #[test]
    fn render_depth_truncation() {
        let tree = sample_tree();
        let full = render(&tree, &RenderOptions::default());
        let top = render(
            &tree,
            &RenderOptions {
                max_depth: Some(1),
                ..Default::default()
            },
        );
        assert!(top.lines().count() <= full.lines().count());
        assert!(
            top.contains("..."),
            "truncated render should mark cut subtrees:\n{top}"
        );
    }

    #[test]
    fn render_single_leaf() {
        let ds = Dataset::classification(vec![vec![1.0]], vec![0], 2).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let s = render(&tree, &RenderOptions::default());
        assert!(s.contains("class 0"), "got: {s}");
    }

    #[test]
    fn graphviz_wellformed() {
        let tree = sample_tree();
        let dot = to_graphviz(&tree, &RenderOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ->"));
        assert!(dot.trim_end().ends_with('}'));
        // Every declared edge references a declared node. Edge lines are
        // exactly those with a yes/no label (leaf labels may contain "->").
        for line in dot.lines() {
            let trimmed = line.trim();
            if trimmed.ends_with("[label=\"yes\"];") || trimmed.ends_with("[label=\"no\"];") {
                let target: String = trimmed
                    .split(" -> n")
                    .nth(1)
                    .expect("edge line must contain ' -> n'")
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                assert!(dot.contains(&format!("n{target} [label=")));
            }
        }
    }

    #[test]
    fn regression_tree_renders_values() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 1.5 } else { 7.5 }).collect();
        let ds = Dataset::regression(x, y).unwrap();
        let cfg = TreeConfig {
            criterion: crate::builder::Criterion::Mse,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        let s = render(&tree, &RenderOptions::default());
        assert!(s.contains("-> 1.5"), "got: {s}");
        assert!(s.contains("-> 7.5"), "got: {s}");
    }
}
