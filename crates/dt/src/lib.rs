//! # metis-dt — decision-tree substrate for the Metis reproduction
//!
//! The paper converts teacher DNN policies into student decision trees
//! (§3). This crate is the from-scratch replacement for the scikit-learn
//! CART implementation (plus the custom cost-complexity pruning the authors
//! bolted onto it):
//!
//! * [`dataset::Dataset`] — weighted samples, classification or regression
//!   targets (weights carry the Eq.-1 advantage resampling),
//! * [`builder::fit`] — CART with best-first growth under `max_leaf_nodes`
//!   (Table 4: 200 for Pensieve, 2000 for AuTO's agents),
//! * [`prune`] — cost-complexity pruning + a depth-truncation ablation
//!   baseline,
//! * [`tree::DecisionTree`] — arena tree with per-node weighted statistics
//!   (powers the Figure-7 decision-frequency annotations) and
//!   [`tree::CompiledTree`], a flat branch-only evaluator backing the
//!   lightweight-deployment claims of §6.4,
//! * [`kernel`] — the lane-vectorized quantized-layout walk behind
//!   [`tree::CompiledTree::predict_batch_into`] and the [`kernel::Forest`]
//!   ensemble evaluator (block-major across member trees),
//! * [`export`] — ASCII (Figure 7 style) and Graphviz rendering,
//! * [`metrics`] — accuracy / RMSE / agreement (Figures 27–28 axes).
//!
//! No dependencies beyond `serde` for model artifacts.

pub mod builder;
pub mod dataset;
pub mod export;
pub mod kernel;
pub mod metrics;
pub mod prune;
pub mod tree;

pub use builder::{fit, Criterion, FitError, TreeConfig};
pub use dataset::{Dataset, DatasetError, Targets};
pub use export::{render, to_graphviz, RenderOptions};
pub use kernel::{Forest, ForestError, INREG_NODES, LANES};
pub use prune::{alpha_sequence, prune_alpha, prune_to_leaves, truncate_depth, PruneStep};
pub use tree::{
    diff_predictions, BatchDiff, CompiledTree, DecisionTree, Node, NodeStats, Prediction, Split,
    TreeKind,
};
