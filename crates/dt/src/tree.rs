//! The decision-tree data structure: an arena of nodes with per-node
//! weighted statistics (needed both for pruning and for the paper's
//! Figure-7-style "decision frequency" annotations).

use serde::{Deserialize, Serialize};

/// Weighted statistics carried by every node (internal and leaf).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeStats {
    /// Classification: weighted class histogram.
    Class { dist: Vec<f64> },
    /// Regression: total weight, weighted sum, weighted sum of squares.
    Value { w: f64, sum: f64, sumsq: f64 },
}

impl NodeStats {
    /// Total sample weight at this node.
    pub fn weight(&self) -> f64 {
        match self {
            NodeStats::Class { dist } => dist.iter().sum(),
            NodeStats::Value { w, .. } => *w,
        }
    }

    /// Prediction if this node were a leaf.
    pub fn prediction(&self) -> Prediction {
        match self {
            NodeStats::Class { dist } => {
                let mut best = 0;
                for (i, &d) in dist.iter().enumerate() {
                    if d > dist[best] {
                        best = i;
                    }
                }
                Prediction::Class(best)
            }
            NodeStats::Value { w, sum, .. } => {
                Prediction::Value(if *w > 0.0 { sum / w } else { 0.0 })
            }
        }
    }

    /// Resubstitution error if this node were a leaf (weighted
    /// misclassification for classification, SSE for regression). This is
    /// the `R(t)` of cost-complexity pruning.
    pub fn leaf_error(&self) -> f64 {
        match self {
            NodeStats::Class { dist } => {
                let total: f64 = dist.iter().sum();
                let max = dist.iter().cloned().fold(0.0, f64::max);
                total - max
            }
            NodeStats::Value { w, sum, sumsq } => {
                if *w > 0.0 {
                    (sumsq - sum * sum / w).max(0.0)
                } else {
                    0.0
                }
            }
        }
    }

    /// Normalized class distribution (classification only).
    pub fn class_frequencies(&self) -> Option<Vec<f64>> {
        match self {
            NodeStats::Class { dist } => {
                let total: f64 = dist.iter().sum();
                if total <= 0.0 {
                    return None;
                }
                Some(dist.iter().map(|d| d / total).collect())
            }
            NodeStats::Value { .. } => None,
        }
    }
}

/// A tree prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    Class(usize),
    Value(f64),
}

impl Prediction {
    /// Class index; panics on a regression prediction.
    pub fn class(self) -> usize {
        match self {
            Prediction::Class(c) => c,
            Prediction::Value(_) => panic!("expected a class prediction"),
        }
    }

    /// Regression value; panics on a classification prediction.
    pub fn value(self) -> f64 {
        match self {
            Prediction::Value(v) => v,
            Prediction::Class(_) => panic!("expected a value prediction"),
        }
    }
}

/// One node in the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub stats: NodeStats,
    pub split: Option<Split>,
}

/// A binary split: `x[feature] < threshold` goes left, else right.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    pub feature: usize,
    pub threshold: f64,
    pub left: usize,
    pub right: usize,
}

/// Kind of tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    Classifier { n_classes: usize },
    Regressor,
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) kind: TreeKind,
    pub(crate) n_features: usize,
    /// Optional human-readable feature names for export.
    pub feature_names: Option<Vec<String>>,
}

pub(crate) const ROOT: usize = 0;

impl DecisionTree {
    pub(crate) fn new(nodes: Vec<Node>, kind: TreeKind, n_features: usize) -> Self {
        DecisionTree {
            nodes,
            kind,
            n_features,
            feature_names: None,
        }
    }

    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.reachable(ROOT)
            .filter(|&i| self.nodes[i].split.is_none())
            .count()
    }

    /// Maximum depth (root = depth 0; a single-leaf tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx].split {
                None => 0,
                Some(s) => 1 + rec(nodes, s.left).max(rec(nodes, s.right)),
            }
        }
        rec(&self.nodes, ROOT)
    }

    /// Iterator over node indices reachable from `start` (preorder).
    pub(crate) fn reachable(&self, start: usize) -> impl Iterator<Item = usize> + '_ {
        let mut stack = vec![start];
        std::iter::from_fn(move || {
            let idx = stack.pop()?;
            if let Some(s) = &self.nodes[idx].split {
                stack.push(s.right);
                stack.push(s.left);
            }
            Some(idx)
        })
    }

    /// Walk the tree for a feature vector, returning the leaf node index.
    pub fn leaf_for(&self, x: &[f64]) -> usize {
        assert_eq!(
            x.len(),
            self.n_features,
            "leaf_for: expected {} features, got {}",
            self.n_features,
            x.len()
        );
        let mut idx = ROOT;
        while let Some(s) = &self.nodes[idx].split {
            idx = if x[s.feature] < s.threshold {
                s.left
            } else {
                s.right
            };
        }
        idx
    }

    /// The root-to-leaf node index path for a feature vector.
    pub fn decision_path(&self, x: &[f64]) -> Vec<usize> {
        let mut idx = ROOT;
        let mut path = vec![idx];
        while let Some(s) = &self.nodes[idx].split {
            idx = if x[s.feature] < s.threshold {
                s.left
            } else {
                s.right
            };
            path.push(idx);
        }
        path
    }

    /// Predict for a single feature vector.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        self.nodes[self.leaf_for(x)].stats.prediction()
    }

    /// Predicted class index (classification trees only).
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.predict(x).class()
    }

    /// Predicted value (regression trees only).
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.predict(x).value()
    }

    /// Leaf class distribution for a sample (classification trees only).
    pub fn predict_proba(&self, x: &[f64]) -> Option<Vec<f64>> {
        self.nodes[self.leaf_for(x)].stats.class_frequencies()
    }

    /// Sum of impurity decreases per feature ("which inputs drive the
    /// decisions"), normalized to sum to 1. Used in interpretation reports.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for idx in self.reachable(ROOT).collect::<Vec<_>>() {
            if let Some(s) = &self.nodes[idx].split {
                let parent = self.nodes[idx].stats.leaf_error();
                let child =
                    self.nodes[s.left].stats.leaf_error() + self.nodes[s.right].stats.leaf_error();
                imp[s.feature] += (parent - child).max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Serialized size in bytes (JSON) — the deployment cost model input.
    pub fn artifact_bytes(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Compact the arena, dropping nodes that became unreachable after
    /// pruning. Indices are remapped; statistics are preserved.
    pub fn compact(&self) -> DecisionTree {
        let order: Vec<usize> = self.reachable(ROOT).collect();
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let nodes = order
            .iter()
            .map(|&old| {
                let n = &self.nodes[old];
                Node {
                    stats: n.stats.clone(),
                    split: n.split.as_ref().map(|s| Split {
                        feature: s.feature,
                        threshold: s.threshold,
                        left: remap[s.left],
                        right: remap[s.right],
                    }),
                }
            })
            .collect();
        DecisionTree {
            nodes,
            kind: self.kind,
            n_features: self.n_features,
            feature_names: self.feature_names.clone(),
        }
    }
}

/// A flattened, branch-only evaluator: structure-of-arrays layout with no
/// enum dispatch, demonstrating the paper's "decision trees can be
/// implemented with branching clauses only" deployment claim (§6.4) and
/// used by the latency benchmarks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledTree {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    /// Child indices; for leaves, `left == u32::MAX` and `right` encodes the
    /// class index or an index into `values`.
    left: Vec<u32>,
    right: Vec<u32>,
    values: Vec<f64>,
    n_features: usize,
}

impl CompiledTree {
    /// Flatten a [`DecisionTree`].
    pub fn compile(tree: &DecisionTree) -> Self {
        let tree = tree.compact();
        let n = tree.nodes.len();
        let mut out = CompiledTree {
            feature: vec![0; n],
            threshold: vec![0.0; n],
            left: vec![u32::MAX; n],
            right: vec![0; n],
            values: Vec::new(),
            n_features: tree.n_features,
        };
        for (i, node) in tree.nodes.iter().enumerate() {
            match &node.split {
                Some(s) => {
                    out.feature[i] = s.feature as u32;
                    out.threshold[i] = s.threshold;
                    out.left[i] = s.left as u32;
                    out.right[i] = s.right as u32;
                }
                None => match node.stats.prediction() {
                    Prediction::Class(c) => {
                        out.right[i] = c as u32;
                    }
                    Prediction::Value(v) => {
                        out.right[i] = out.values.len() as u32;
                        out.values.push(v);
                    }
                },
            }
        }
        out
    }

    /// Evaluate to a raw leaf payload (class index or value index).
    #[inline]
    fn eval_raw(&self, x: &[f64]) -> u32 {
        let mut idx = 0usize;
        loop {
            let l = self.left[idx];
            if l == u32::MAX {
                return self.right[idx];
            }
            idx = if x[self.feature[idx] as usize] < self.threshold[idx] {
                l as usize
            } else {
                self.right[idx] as usize
            };
        }
    }

    /// Predicted class (classification trees).
    #[inline]
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.eval_raw(x) as usize
    }

    /// Predicted value (regression trees).
    #[inline]
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.values[self.eval_raw(x) as usize]
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }
}
