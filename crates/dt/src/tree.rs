//! The decision-tree data structure: an arena of nodes with per-node
//! weighted statistics (needed both for pruning and for the paper's
//! Figure-7-style "decision frequency" annotations).

use serde::{Deserialize, Serialize};

/// Weighted statistics carried by every node (internal and leaf).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeStats {
    /// Classification: weighted class histogram.
    Class { dist: Vec<f64> },
    /// Regression: total weight, weighted sum, weighted sum of squares.
    Value { w: f64, sum: f64, sumsq: f64 },
}

impl NodeStats {
    /// Total sample weight at this node.
    pub fn weight(&self) -> f64 {
        match self {
            NodeStats::Class { dist } => dist.iter().sum(),
            NodeStats::Value { w, .. } => *w,
        }
    }

    /// Prediction if this node were a leaf.
    pub fn prediction(&self) -> Prediction {
        match self {
            NodeStats::Class { dist } => {
                let mut best = 0;
                for (i, &d) in dist.iter().enumerate() {
                    if d > dist[best] {
                        best = i;
                    }
                }
                Prediction::Class(best)
            }
            NodeStats::Value { w, sum, .. } => {
                Prediction::Value(if *w > 0.0 { sum / w } else { 0.0 })
            }
        }
    }

    /// Resubstitution error if this node were a leaf (weighted
    /// misclassification for classification, SSE for regression). This is
    /// the `R(t)` of cost-complexity pruning.
    pub fn leaf_error(&self) -> f64 {
        match self {
            NodeStats::Class { dist } => {
                let total: f64 = dist.iter().sum();
                let max = dist.iter().cloned().fold(0.0, f64::max);
                total - max
            }
            NodeStats::Value { w, sum, sumsq } => {
                if *w > 0.0 {
                    (sumsq - sum * sum / w).max(0.0)
                } else {
                    0.0
                }
            }
        }
    }

    /// Normalized class distribution (classification only).
    pub fn class_frequencies(&self) -> Option<Vec<f64>> {
        match self {
            NodeStats::Class { dist } => {
                let total: f64 = dist.iter().sum();
                if total <= 0.0 {
                    return None;
                }
                Some(dist.iter().map(|d| d / total).collect())
            }
            NodeStats::Value { .. } => None,
        }
    }
}

/// A tree prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    Class(usize),
    Value(f64),
}

impl Prediction {
    /// Class index; panics on a regression prediction.
    pub fn class(self) -> usize {
        match self {
            Prediction::Class(c) => c,
            Prediction::Value(_) => panic!("expected a class prediction"),
        }
    }

    /// Regression value; panics on a classification prediction.
    pub fn value(self) -> f64 {
        match self {
            Prediction::Value(v) => v,
            Prediction::Class(_) => panic!("expected a value prediction"),
        }
    }
}

/// One node in the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub stats: NodeStats,
    pub split: Option<Split>,
}

/// A binary split: `x[feature] < threshold` goes left, else right.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    pub feature: usize,
    pub threshold: f64,
    pub left: usize,
    pub right: usize,
}

/// Kind of tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    Classifier { n_classes: usize },
    Regressor,
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) kind: TreeKind,
    pub(crate) n_features: usize,
    /// Optional human-readable feature names for export.
    pub feature_names: Option<Vec<String>>,
}

pub(crate) const ROOT: usize = 0;

impl DecisionTree {
    pub(crate) fn new(nodes: Vec<Node>, kind: TreeKind, n_features: usize) -> Self {
        DecisionTree {
            nodes,
            kind,
            n_features,
            feature_names: None,
        }
    }

    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.reachable(ROOT)
            .filter(|&i| self.nodes[i].split.is_none())
            .count()
    }

    /// Maximum depth (root = depth 0; a single-leaf tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx].split {
                None => 0,
                Some(s) => 1 + rec(nodes, s.left).max(rec(nodes, s.right)),
            }
        }
        rec(&self.nodes, ROOT)
    }

    /// Iterator over node indices reachable from `start` (preorder).
    pub(crate) fn reachable(&self, start: usize) -> impl Iterator<Item = usize> + '_ {
        let mut stack = vec![start];
        std::iter::from_fn(move || {
            let idx = stack.pop()?;
            if let Some(s) = &self.nodes[idx].split {
                stack.push(s.right);
                stack.push(s.left);
            }
            Some(idx)
        })
    }

    /// Walk the tree for a feature vector, returning the leaf node index.
    pub fn leaf_for(&self, x: &[f64]) -> usize {
        assert_eq!(
            x.len(),
            self.n_features,
            "leaf_for: expected {} features, got {}",
            self.n_features,
            x.len()
        );
        let mut idx = ROOT;
        while let Some(s) = &self.nodes[idx].split {
            idx = if x[s.feature] < s.threshold {
                s.left
            } else {
                s.right
            };
        }
        idx
    }

    /// The root-to-leaf node index path for a feature vector.
    pub fn decision_path(&self, x: &[f64]) -> Vec<usize> {
        let mut idx = ROOT;
        let mut path = vec![idx];
        while let Some(s) = &self.nodes[idx].split {
            idx = if x[s.feature] < s.threshold {
                s.left
            } else {
                s.right
            };
            path.push(idx);
        }
        path
    }

    /// Predict for a single feature vector.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        self.nodes[self.leaf_for(x)].stats.prediction()
    }

    /// Predicted class index (classification trees only).
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.predict(x).class()
    }

    /// Predicted value (regression trees only).
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.predict(x).value()
    }

    /// Leaf class distribution for a sample (classification trees only).
    pub fn predict_proba(&self, x: &[f64]) -> Option<Vec<f64>> {
        self.nodes[self.leaf_for(x)].stats.class_frequencies()
    }

    /// Sum of impurity decreases per feature ("which inputs drive the
    /// decisions"), normalized to sum to 1. Used in interpretation reports.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for idx in self.reachable(ROOT).collect::<Vec<_>>() {
            if let Some(s) = &self.nodes[idx].split {
                let parent = self.nodes[idx].stats.leaf_error();
                let child =
                    self.nodes[s.left].stats.leaf_error() + self.nodes[s.right].stats.leaf_error();
                imp[s.feature] += (parent - child).max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Serialized size in bytes (JSON) — the deployment cost model input.
    pub fn artifact_bytes(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Compact the arena, dropping nodes that became unreachable after
    /// pruning. Indices are remapped; statistics are preserved.
    pub fn compact(&self) -> DecisionTree {
        let order: Vec<usize> = self.reachable(ROOT).collect();
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let nodes = order
            .iter()
            .map(|&old| {
                let n = &self.nodes[old];
                Node {
                    stats: n.stats.clone(),
                    split: n.split.as_ref().map(|s| Split {
                        feature: s.feature,
                        threshold: s.threshold,
                        left: remap[s.left],
                        right: remap[s.right],
                    }),
                }
            })
            .collect();
        DecisionTree {
            nodes,
            kind: self.kind,
            n_features: self.n_features,
            feature_names: self.feature_names.clone(),
        }
    }
}

/// A flattened, branch-only evaluator in a cache-friendly quantized
/// structure-of-arrays layout (see [`crate::kernel`]: `u16` feature ids,
/// `u32` child indices, `f64` thresholds in their own contiguous column,
/// leaves as self-loops), demonstrating the paper's "decision trees can
/// be implemented with branching clauses only" deployment claim (§6.4).
/// It backs both the latency benchmarks and the `metis_serve` online
/// serving engine, whose micro-batches walk row blocks through the
/// lane-vectorized [`CompiledTree::predict_batch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledTree {
    table: crate::kernel::NodeTable,
    values: Vec<f64>,
    n_features: usize,
    kind: TreeKind,
}

impl CompiledTree {
    /// Flatten a [`DecisionTree`] into the kernel's quantized node table
    /// (breadth-first order, so the hot top levels are contiguous).
    pub fn compile(tree: &DecisionTree) -> Self {
        let tree = tree.compact();
        let (table, values) = crate::kernel::NodeTable::build(&tree);
        CompiledTree {
            table,
            values,
            n_features: tree.n_features,
            kind: tree.kind,
        }
    }

    /// The kernel node table (crate-internal: the forest evaluator walks
    /// member tables directly).
    #[inline]
    pub(crate) fn table(&self) -> &crate::kernel::NodeTable {
        &self.table
    }

    /// Regression leaf values, indexed by leaf payload.
    #[inline]
    pub(crate) fn values(&self) -> &[f64] {
        &self.values
    }

    /// Evaluate to a raw leaf payload (class index or value index).
    #[inline]
    fn eval_raw(&self, x: &[f64]) -> u32 {
        crate::kernel::walk_one(&self.table, x)
    }

    /// Predicted class (classification trees).
    #[inline]
    pub fn predict_class(&self, x: &[f64]) -> usize {
        self.eval_raw(x) as usize
    }

    /// Predicted value (regression trees).
    #[inline]
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.values[self.eval_raw(x) as usize]
    }

    /// Predict for a single feature vector — same comparator
    /// (`x[f] < thr` goes left; NaN therefore routes **right**) and
    /// bit-identical payload as [`DecisionTree::predict`].
    #[inline]
    pub fn predict(&self, x: &[f64]) -> Prediction {
        assert_eq!(
            x.len(),
            self.n_features,
            "predict: expected {} features, got {}",
            self.n_features,
            x.len()
        );
        self.payload_to_prediction(self.eval_raw(x))
    }

    #[inline]
    fn payload_to_prediction(&self, payload: u32) -> Prediction {
        match self.kind {
            TreeKind::Classifier { .. } => Prediction::Class(payload as usize),
            TreeKind::Regressor => Prediction::Value(self.values[payload as usize]),
        }
    }

    /// Batched prediction over a row-major block of feature vectors
    /// (`rows.len() == out.len() * n_features`) through the
    /// lane-vectorized kernel walk ([`crate::kernel`]): full
    /// [`crate::kernel::LANES`]-row blocks advance together with
    /// branch-free child selects, the tail walks scalar. Per row the
    /// result is **bit-identical** to [`DecisionTree::predict`] — same
    /// `<` comparator, so a NaN feature always fails the test and routes
    /// right.
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut [Prediction]) {
        let n = out.len();
        assert_eq!(
            rows.len(),
            n * self.n_features,
            "predict_batch_into: {} values is not {} rows of {} features",
            rows.len(),
            n,
            self.n_features
        );
        let mut payloads = vec![0u32; n];
        crate::kernel::walk_payloads(&self.table, rows, self.n_features, &mut payloads);
        for (slot, &p) in out.iter_mut().zip(payloads.iter()) {
            *slot = self.payload_to_prediction(p);
        }
    }

    /// The pre-kernel **levelwise** batch walk, retained verbatim (ported
    /// to the quantized table) as the test oracle and the "naive per-tree
    /// batch evaluation" baseline the forest benchmarks compare against:
    /// every pass advances each still-live row by one split; rows that
    /// reach a leaf drop out of the live set, so total work is the summed
    /// path length. Bit-identical per row to
    /// [`CompiledTree::predict_batch_into`] and [`DecisionTree::predict`].
    pub fn predict_batch_levelwise(&self, rows: &[f64], out: &mut [Prediction]) {
        let n = out.len();
        assert_eq!(
            rows.len(),
            n * self.n_features,
            "predict_batch_levelwise: {} values is not {} rows of {} features",
            rows.len(),
            n,
            self.n_features
        );
        let table = &self.table;
        let mut idx = vec![0u32; n];
        // Dense phase: full levelwise sweeps over the cursor array while
        // at least half the rows are still walking.
        let mut active = if table.is_leaf(0) { 0 } else { n };
        while active * 2 >= n.max(1) && active > 0 {
            active = 0;
            for (r, slot) in idx.iter_mut().enumerate() {
                let i = *slot as usize;
                if table.is_leaf(i) {
                    continue;
                }
                let x = &rows[r * self.n_features..(r + 1) * self.n_features];
                let next = if x[table.feat[i] as usize] < table.thr[i] {
                    table.left[i]
                } else {
                    table.right[i]
                };
                *slot = next;
                if !table.is_leaf(next as usize) {
                    active += 1;
                }
            }
        }
        // Sparse phase: walk only the survivors, compacting each level.
        if active > 0 {
            let mut live: Vec<u32> = (0..n as u32)
                .filter(|&r| !table.is_leaf(idx[r as usize] as usize))
                .collect();
            while !live.is_empty() {
                live.retain(|&r| {
                    let row = r as usize;
                    let i = idx[row] as usize;
                    let x = &rows[row * self.n_features..(row + 1) * self.n_features];
                    let next = if x[table.feat[i] as usize] < table.thr[i] {
                        table.left[i]
                    } else {
                        table.right[i]
                    };
                    idx[row] = next;
                    !table.is_leaf(next as usize)
                });
            }
        }
        for (slot, &i) in out.iter_mut().zip(idx.iter()) {
            *slot = self.payload_to_prediction(table.payload[i as usize]);
        }
    }

    /// [`CompiledTree::predict_batch_into`] into a fresh vector. `rows` is
    /// row-major with `n_features` values per row.
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<Prediction> {
        assert!(
            self.n_features > 0 && rows.len().is_multiple_of(self.n_features),
            "predict_batch: {} values do not divide into {}-feature rows",
            rows.len(),
            self.n_features
        );
        let mut out = vec![Prediction::Class(0); rows.len() / self.n_features];
        self.predict_batch_into(rows, &mut out);
        out
    }

    /// Batched class prediction (classification trees only).
    pub fn predict_class_batch(&self, rows: &[f64]) -> Vec<usize> {
        self.predict_batch(rows)
            .into_iter()
            .map(Prediction::class)
            .collect()
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bit-exact response diff against another compiled tree over a
    /// row-major block: for every row, both trees' predictions are
    /// compared the way the serving path compares answers — class indices
    /// by equality, values by `to_bits` (so `0.0` vs `-0.0` or a NaN
    /// payload swap counts as a mismatch, exactly like a diverging
    /// response would). This is the shadow-serving audit primitive: a
    /// staged candidate is promoted only after mirrored traffic diffs
    /// clean against the live model. Trees of different kinds mismatch on
    /// every row; a different feature width panics (rows can't be valid
    /// for both).
    pub fn diff_batch(&self, other: &CompiledTree, rows: &[f64]) -> BatchDiff {
        assert_eq!(
            self.n_features, other.n_features,
            "diff_batch: trees take {} vs {} features",
            self.n_features, other.n_features
        );
        diff_predictions(&self.predict_batch(rows), &other.predict_batch(rows))
    }

    /// Kind of the source tree (drives [`CompiledTree::predict`] payloads).
    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// Node count of the flattened arena.
    pub fn node_count(&self) -> usize {
        self.table.len()
    }

    /// A copy of this tree with the in-register node table dropped, so
    /// evaluation always takes the gather (or portable) walk — the A/B
    /// lever the kernel benchmarks use to price the `vpermi2*` path
    /// against hardware gathers on the same tree. Predictions are
    /// bit-identical either way.
    pub fn without_inreg(&self) -> CompiledTree {
        let mut copy = self.clone();
        copy.table.inreg = None;
        copy
    }
}

/// Compare two prediction slices the way the serving path compares
/// answers — class indices by equality, values by `to_bits` (so `0.0` vs
/// `-0.0` or a NaN payload swap counts as a mismatch, exactly like a
/// diverging response would); predictions of different kinds mismatch.
/// This is the one audit comparator shared by [`CompiledTree::diff_batch`]
/// and the served-model ensemble audits, so single-tree and forest
/// shadow promotion use identical semantics. The slices must be the same
/// length (they came from the same row block).
pub fn diff_predictions(ours: &[Prediction], theirs: &[Prediction]) -> BatchDiff {
    assert_eq!(
        ours.len(),
        theirs.len(),
        "diff_predictions: {} vs {} rows",
        ours.len(),
        theirs.len()
    );
    let mut diff = BatchDiff {
        rows: ours.len(),
        mismatches: 0,
        first_mismatch: None,
    };
    for (row, (a, b)) in ours.iter().zip(theirs.iter()).enumerate() {
        let same = match (a, b) {
            (Prediction::Class(x), Prediction::Class(y)) => x == y,
            (Prediction::Value(x), Prediction::Value(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        };
        if !same {
            diff.mismatches += 1;
            diff.first_mismatch.get_or_insert(row);
        }
    }
    diff
}

/// Outcome of [`CompiledTree::diff_batch`]: how many rows two trees
/// answered differently, bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchDiff {
    /// Rows compared.
    pub rows: usize,
    /// Rows where the predictions differ (class inequality, or value
    /// bit-pattern inequality).
    pub mismatches: usize,
    /// Index of the first differing row, if any.
    pub first_mismatch: Option<usize>,
}

impl BatchDiff {
    /// True when every compared row answered identically.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fit, TreeConfig};
    use crate::dataset::Dataset;

    /// Deterministic pseudo-random features without pulling in `rand`.
    fn lcg_features(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..n)
            .map(|_| {
                (0..dims)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            })
            .collect()
    }

    fn fitted_classifier(seed: u64) -> DecisionTree {
        let x = lcg_features(400, 4, seed);
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] * 5.0 + xi[2] * 3.0) as usize) % 5)
            .collect();
        let ds = Dataset::classification(x, y, 5).unwrap();
        fit(
            &ds,
            &TreeConfig {
                max_leaf_nodes: 40,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn fitted_regressor(seed: u64) -> DecisionTree {
        let x = lcg_features(300, 3, seed);
        let y: Vec<f64> = x.iter().map(|xi| xi[0] * 2.0 - xi[1]).collect();
        let ds = Dataset::regression(x, y).unwrap();
        fit(
            &ds,
            &TreeConfig {
                max_leaf_nodes: 30,
                criterion: crate::builder::Criterion::Mse,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn assert_predictions_bit_identical(a: Prediction, b: Prediction, label: &str) {
        match (a, b) {
            (Prediction::Class(x), Prediction::Class(y)) => {
                assert_eq!(x, y, "{label}: class diverges")
            }
            (Prediction::Value(x), Prediction::Value(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: value diverges")
            }
            _ => panic!("{label}: prediction kinds diverge"),
        }
    }

    /// The serving backend's core contract: the levelwise batched walk is
    /// bit-identical per row to `DecisionTree::predict`, for classifiers
    /// and regressors, at every batch size including 0 and 1.
    #[test]
    fn predict_batch_bit_identical_to_tree_predict() {
        for (tree, dims) in [(fitted_classifier(7), 4), (fitted_regressor(9), 3)] {
            let compiled = CompiledTree::compile(&tree);
            assert_eq!(compiled.kind(), tree.kind());
            for batch in [0usize, 1, 2, 7, 33, 256] {
                let rows = lcg_features(batch, dims, 1000 + batch as u64);
                let flat: Vec<f64> = rows.iter().flatten().copied().collect();
                let batched = compiled.predict_batch(&flat);
                assert_eq!(batched.len(), batch);
                for (row, got) in rows.iter().zip(batched.iter()) {
                    assert_predictions_bit_identical(*got, tree.predict(row), "batch vs tree");
                    assert_predictions_bit_identical(*got, compiled.predict(row), "batch vs one");
                }
            }
        }
    }

    /// Trees with at most `INREG_NODES` nodes carry the register-resident
    /// table and (on AVX-512 hosts) take the `vpermi2*` walk; stripping
    /// the table via `without_inreg` forces the gather/portable walk on
    /// the *same* tree. The two must agree bit-for-bit with each other
    /// and with the interpreted tree — NaN-salted and all-NaN rows
    /// included. (On hosts without AVX-512 both sides take the same walk
    /// and the test degenerates to a tautology, by design.)
    #[test]
    fn inreg_walk_bit_identical_to_gather_and_portable() {
        for (max_leaves, regress) in [(2usize, false), (9, false), (32, false), (20, true)] {
            let dims = if regress { 3 } else { 4 };
            let x = lcg_features(400, dims, 33 + max_leaves as u64);
            let tree = if regress {
                let y: Vec<f64> = x.iter().map(|xi| xi[0] * 2.0 - xi[1]).collect();
                let ds = Dataset::regression(x.clone(), y).unwrap();
                fit(
                    &ds,
                    &TreeConfig {
                        max_leaf_nodes: max_leaves,
                        criterion: crate::builder::Criterion::Mse,
                        ..Default::default()
                    },
                )
                .unwrap()
            } else {
                let y: Vec<usize> = x
                    .iter()
                    .map(|xi| ((xi[0] * 5.0 + xi[2] * 3.0) as usize) % 5)
                    .collect();
                let ds = Dataset::classification(x.clone(), y, 5).unwrap();
                fit(
                    &ds,
                    &TreeConfig {
                        max_leaf_nodes: max_leaves,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let compiled = CompiledTree::compile(&tree);
            assert!(compiled.node_count() <= crate::kernel::INREG_NODES);
            assert!(
                compiled.table().inreg.is_some(),
                "a {}-node tree must carry the in-register table",
                compiled.node_count()
            );
            let stripped = compiled.without_inreg();
            assert!(stripped.table().inreg.is_none());
            let mut rows = lcg_features(3 * crate::kernel::LANES + 7, dims, 91);
            for (r, row) in rows.iter_mut().enumerate() {
                if r % 5 == 0 {
                    row[r % dims] = f64::NAN;
                }
                if r % 11 == 0 {
                    row.iter_mut().for_each(|v| *v = f64::NAN);
                }
            }
            let flat: Vec<f64> = rows.iter().flatten().copied().collect();
            let with_inreg = compiled.predict_batch(&flat);
            let without = stripped.predict_batch(&flat);
            for (r, (a, b)) in with_inreg.iter().zip(without.iter()).enumerate() {
                assert_predictions_bit_identical(*a, *b, &format!("row {r}: inreg vs gather"));
            }
            for (row, got) in rows.iter().zip(with_inreg.iter()) {
                assert_predictions_bit_identical(*got, tree.predict(row), "inreg vs tree");
            }
            assert!(compiled.diff_batch(&stripped, &flat).is_clean());
        }
        // Trees past the node cap must not carry the table.
        let big = CompiledTree::compile(&fitted_classifier(7));
        assert!(big.node_count() > crate::kernel::INREG_NODES);
        assert!(big.table().inreg.is_none());
    }

    /// NaN-routing parity: `x[f] < thr` is false for NaN, so every
    /// evaluator — `leaf_for`/`predict`, the compiled single-row walk, and
    /// the levelwise batch walk — must send a NaN feature to the **right**
    /// child, at every split it reaches.
    #[test]
    fn nan_features_route_right_in_every_evaluator() {
        // A known single-split tree: x[0] < 0.5 -> class 0, else class 1.
        let ds = Dataset::classification(
            vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let compiled = CompiledTree::compile(&tree);
        let nan_row = [f64::NAN];
        // NaN fails the `<` test, so it must land in the right (class 1) leaf.
        assert_eq!(tree.predict_class(&nan_row), 1);
        assert_eq!(compiled.predict_class(&nan_row), 1);
        assert_eq!(compiled.predict_class_batch(&nan_row), vec![1]);
        let split = tree.node(0).split.as_ref().expect("root splits");
        assert_eq!(tree.leaf_for(&nan_row), split.right);

        // And on a deeper fitted tree: every path agrees row-for-row when
        // NaNs are scattered through the features.
        let tree = fitted_classifier(21);
        let compiled = CompiledTree::compile(&tree);
        let mut rows = lcg_features(64, 4, 77);
        for (r, row) in rows.iter_mut().enumerate() {
            row[r % 4] = f64::NAN;
            if r % 3 == 0 {
                row[(r + 2) % 4] = f64::NAN;
            }
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let batched = compiled.predict_batch(&flat);
        for (row, got) in rows.iter().zip(batched.iter()) {
            assert_predictions_bit_identical(*got, tree.predict(row), "NaN batch vs tree");
            assert_predictions_bit_identical(*got, compiled.predict(row), "NaN batch vs one");
            // The decision path itself must only ever take right edges at
            // NaN-featured splits.
            let mut idx = 0usize;
            while let Some(s) = &tree.node(idx).split {
                let went_right = row[s.feature] >= s.threshold || row[s.feature].is_nan();
                if row[s.feature].is_nan() {
                    assert!(went_right, "NaN took a left edge at node {idx}");
                }
                idx = if went_right { s.right } else { s.left };
            }
        }
    }

    /// The shadow-audit primitive: identical trees diff clean on any
    /// traffic (including NaN rows); a perturbed tree reports its
    /// mismatches with a stable first-row index; regressors compare by
    /// bit pattern.
    #[test]
    fn diff_batch_clean_for_identical_trees_and_counts_perturbations() {
        let tree = fitted_classifier(13);
        let compiled = CompiledTree::compile(&tree);
        let mut rows = lcg_features(120, 4, 31);
        for (r, row) in rows.iter_mut().enumerate() {
            if r % 7 == 0 {
                row[r % 4] = f64::NAN;
            }
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let clean = compiled.diff_batch(&CompiledTree::compile(&tree), &flat);
        assert_eq!(
            clean,
            BatchDiff {
                rows: 120,
                mismatches: 0,
                first_mismatch: None
            }
        );
        assert!(clean.is_clean());

        // A pruned tree answers differently somewhere on 120 rows.
        let perturbed = CompiledTree::compile(&crate::prune::prune_to_leaves(&tree, 3));
        let diff = compiled.diff_batch(&perturbed, &flat);
        assert_eq!(diff.rows, 120);
        assert!(
            diff.mismatches > 0,
            "pruning to 3 leaves must change answers"
        );
        let first = diff.first_mismatch.expect("mismatches imply a first row");
        assert_ne!(
            compiled.predict(&rows[first]),
            perturbed.predict(&rows[first]),
            "first_mismatch must point at a genuinely differing row"
        );
        // Symmetry: mismatch counting has no direction.
        assert_eq!(
            perturbed.diff_batch(&compiled, &flat).mismatches,
            diff.mismatches
        );

        // Empty traffic diffs clean trivially.
        assert!(compiled.diff_batch(&perturbed, &[]).is_clean());
    }

    #[test]
    fn diff_batch_compares_regressor_values_by_bit_pattern() {
        let tree = fitted_regressor(17);
        let compiled = CompiledTree::compile(&tree);
        let rows = lcg_features(50, 3, 91);
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        assert!(compiled
            .diff_batch(&CompiledTree::compile(&tree), &flat)
            .is_clean());
        let other = CompiledTree::compile(&fitted_regressor(18));
        let diff = compiled.diff_batch(&other, &flat);
        assert!(diff.mismatches > 0, "different fits must diff");
        // A classifier against a regressor mismatches on every row.
        let classifier = {
            let x = lcg_features(40, 3, 5);
            let y: Vec<usize> = x.iter().map(|xi| usize::from(xi[0] > 0.5)).collect();
            CompiledTree::compile(
                &fit(
                    &Dataset::classification(x, y, 2).unwrap(),
                    &TreeConfig::default(),
                )
                .unwrap(),
            )
        };
        assert_eq!(compiled.diff_batch(&classifier, &flat).mismatches, 50);
    }

    #[test]
    #[should_panic(expected = "diff_batch")]
    fn diff_batch_rejects_mismatched_feature_widths() {
        let a = CompiledTree::compile(&fitted_classifier(1)); // 4 features
        let b = CompiledTree::compile(&fitted_regressor(1)); // 3 features
        let _ = a.diff_batch(&b, &[0.0; 12]);
    }

    #[test]
    #[should_panic(expected = "predict_batch_into")]
    fn predict_batch_rejects_misaligned_rows() {
        let tree = fitted_classifier(3);
        let compiled = CompiledTree::compile(&tree);
        let mut out = vec![Prediction::Class(0); 2];
        compiled.predict_batch_into(&[0.0; 7], &mut out);
    }
}
