//! CART construction with weighted samples and best-first growth.
//!
//! Growth is *best-first* (highest impurity decrease next), matching
//! scikit-learn's behaviour under `max_leaf_nodes` — the knob Table 4 of the
//! paper sets to 200 (Pensieve) and 2000 (AuTO agents).
//!
//! Three optimizations over the naive splitter (which re-sorted every
//! node's samples for every feature):
//!
//! * **Sort-once presorting** — per-feature sorted sample indices are built
//!   once at the root and *partitioned* (order-preserving) into the child
//!   nodes at every split, so no sort ever runs below the root.
//! * **Parallel split search** — the per-node scan over features fans out
//!   across threads ([`TreeConfig::threads`]); the reduction picks the
//!   best gain with the same tie-breaking (lowest feature index first) as
//!   a sequential scan, so the fitted tree is identical for any thread
//!   count.
//! * **Frontier-parallel growth** — when feature-parallelism is narrower
//!   than the worker count (ABR's ~25 dims vs a many-core pool), the
//!   builder speculatively *expands* several heap candidates concurrently
//!   ([`TreeConfig::frontier`]): each expansion precomputes the partition,
//!   child statistics, and child best splits for one candidate. Expansions
//!   are pure functions of their candidate, and splits are still *applied*
//!   strictly in heap-pop order by the sequential main loop, so the fitted
//!   tree is bit-identical for any frontier width and thread count — the
//!   only cost of speculation is wasted work on candidates the leaf budget
//!   never reaches.

use crate::dataset::{Dataset, Targets};
use crate::tree::{DecisionTree, Node, NodeStats, Split, TreeKind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Resolve a thread-count knob: 0 means "all available cores".
pub(crate) fn resolve_threads(requested: usize) -> usize {
    metis_nn::par::resolve_threads(requested)
}

/// Minimum `samples x features` product for a node before the split scan
/// fans out across threads (below it, spawn overhead dominates).
const PAR_SPLIT_THRESHOLD: usize = 16 * 1024;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification default).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Variance reduction (regression; the only valid choice there).
    Mse,
}

/// Tree-growing configuration. Defaults mirror the paper's setup.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum number of leaves (best-first growth stops here).
    pub max_leaf_nodes: usize,
    /// Optional depth cap (root has depth 0).
    pub max_depth: Option<usize>,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease for a split to be considered.
    pub min_gain: f64,
    pub criterion: Criterion,
    /// Threads for the per-node split search (0 = all available cores).
    /// The fitted tree is identical for every thread count.
    pub threads: usize,
    /// Heap candidates expanded concurrently by the frontier-parallel
    /// grower (0 = match the resolved thread count; 1 = strictly
    /// sequential expansion). The fitted tree is identical for every
    /// setting — wider frontiers only trade speculative work for wall
    /// time on deep best-first growths.
    pub frontier: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_leaf_nodes: 200,
            max_depth: None,
            min_samples_leaf: 1,
            min_gain: 1e-12,
            criterion: Criterion::Gini,
            threads: 0,
            frontier: 0,
        }
    }
}

impl TreeConfig {
    pub fn with_max_leaves(max_leaf_nodes: usize) -> Self {
        TreeConfig {
            max_leaf_nodes,
            ..Default::default()
        }
    }
}

/// Errors raised by [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// MSE requested on classification targets or Gini/Entropy on regression.
    CriterionMismatch,
    /// `max_leaf_nodes` must be at least 1.
    NoLeavesAllowed,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::CriterionMismatch => write!(f, "criterion does not match target type"),
            FitError::NoLeavesAllowed => write!(f, "max_leaf_nodes must be >= 1"),
        }
    }
}

impl std::error::Error for FitError {}

/// Accumulated target statistics for a sample subset.
#[derive(Clone)]
enum Acc {
    Class(Vec<f64>),
    Value { w: f64, sum: f64, sumsq: f64 },
}

impl Acc {
    fn empty_like(ds: &Dataset) -> Acc {
        match &ds.y {
            Targets::Class { n_classes, .. } => Acc::Class(vec![0.0; *n_classes]),
            Targets::Value(_) => Acc::Value {
                w: 0.0,
                sum: 0.0,
                sumsq: 0.0,
            },
        }
    }

    fn add(&mut self, ds: &Dataset, i: usize, sign: f64) {
        let w = ds.w[i] * sign;
        match self {
            Acc::Class(h) => h[ds.label(i).unwrap()] += w,
            Acc::Value { w: tw, sum, sumsq } => {
                let y = ds.value(i).unwrap();
                *tw += w;
                *sum += w * y;
                *sumsq += w * y * y;
            }
        }
    }

    fn from_indices(ds: &Dataset, idx: &[u32]) -> Acc {
        let mut acc = Acc::empty_like(ds);
        for &i in idx {
            acc.add(ds, i as usize, 1.0);
        }
        acc
    }

    fn weight(&self) -> f64 {
        match self {
            Acc::Class(h) => h.iter().sum(),
            Acc::Value { w, .. } => *w,
        }
    }

    /// Weighted impurity contribution: `weight * impurity`.
    /// For Gini: W * (1 - Σ p²); entropy: W * (-Σ p ln p); MSE: SSE.
    fn weighted_impurity(&self, criterion: Criterion) -> f64 {
        match (self, criterion) {
            (Acc::Class(h), Criterion::Gini) => {
                let w: f64 = h.iter().sum();
                if w <= 0.0 {
                    return 0.0;
                }
                let sq: f64 = h.iter().map(|&c| c * c).sum();
                w - sq / w
            }
            (Acc::Class(h), Criterion::Entropy) => {
                let w: f64 = h.iter().sum();
                if w <= 0.0 {
                    return 0.0;
                }
                -h.iter()
                    .filter(|&&c| c > 0.0)
                    .map(|&c| c * (c / w).ln())
                    .sum::<f64>()
            }
            (Acc::Value { w, sum, sumsq }, Criterion::Mse) => {
                if *w <= 0.0 {
                    0.0
                } else {
                    (sumsq - sum * sum / w).max(0.0)
                }
            }
            _ => unreachable!("criterion/target mismatch checked in fit"),
        }
    }

    fn into_stats(self) -> NodeStats {
        match self {
            Acc::Class(dist) => NodeStats::Class { dist },
            Acc::Value { w, sum, sumsq } => NodeStats::Value { w, sum, sumsq },
        }
    }
}

/// The best split found for a candidate node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// A pending (not-yet-split) node in the best-first frontier.
///
/// Besides the member indices (kept in root-relative order so weighted
/// statistics accumulate exactly as a sequential builder would), each
/// candidate carries its *presorted* per-feature index lists, inherited by
/// order-preserving partition from its parent — no per-node sorting.
struct Candidate {
    node_idx: usize,
    indices: Vec<u32>,
    orders: Vec<Vec<u32>>,
    depth: usize,
    best: BestSplit,
    /// Precomputed split application, attached by the frontier-parallel
    /// expander. Never participates in the heap order, so attaching it
    /// cannot change which candidate pops next.
    expansion: Option<Box<Expansion>>,
}

/// Everything needed to apply a candidate's best split: the partition,
/// both children's statistics, and both children's own best splits. An
/// expansion is a **pure function** of its candidate (plus the dataset
/// and config), so it can be computed speculatively and in parallel
/// without changing the fitted tree: the sequential main loop still
/// applies splits strictly in heap-pop order.
struct Expansion {
    left: ChildData,
    right: ChildData,
}

/// One side of an applied split.
struct ChildData {
    indices: Vec<u32>,
    acc: Acc,
    /// The child's partitioned per-feature order lists and its best
    /// split — present only when the child may grow further (depth cap
    /// not reached and a qualifying split exists).
    grow: Option<(Vec<Vec<u32>>, BestSplit)>,
}

std::thread_local! {
    /// Per-thread membership mark for order-list partitioning. Expansions
    /// run concurrently on pool workers, so the scratch cannot live in
    /// `fit`'s stack frame; each worker sets, uses, and clears its own
    /// buffer with **no pool calls inside the marked window**, so nested
    /// work-stealing can never observe another expansion's marks.
    static LEFT_MARK: std::cell::RefCell<Vec<bool>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Expand one candidate: partition its members and order lists, build the
/// child statistics, and find the children's best splits. Deterministic
/// given `(ds, config, cand)` — thread count only changes how fast the
/// child split scans run, not what they return.
fn expand(ds: &Dataset, config: &TreeConfig, threads: usize, cand: &Candidate) -> Expansion {
    let (left_idx, right_idx) = partition_by(ds, &cand.indices, &cand.best);
    debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
    let children_may_grow = config.max_depth.is_none_or(|m| cand.depth + 1 < m);

    // Partition every presorted feature list (order-preserving, so
    // children never re-sort), reusing the split predicate via the
    // per-thread membership mark. Skipped entirely under a depth cap that
    // forbids the children from splitting again.
    let (left_orders, right_orders) = if children_may_grow {
        LEFT_MARK.with(|mark| {
            let mut mark = mark.borrow_mut();
            if mark.len() < ds.len() {
                mark.resize(ds.len(), false);
            }
            for &i in &left_idx {
                mark[i as usize] = true;
            }
            let mut left_orders = Vec::with_capacity(cand.orders.len());
            let mut right_orders = Vec::with_capacity(cand.orders.len());
            for order in &cand.orders {
                let (lo, ro) = partition_by_mark(&mark, order);
                left_orders.push(lo);
                right_orders.push(ro);
            }
            for &i in &left_idx {
                mark[i as usize] = false;
            }
            (left_orders, right_orders)
        })
    } else {
        (Vec::new(), Vec::new())
    };

    let left_acc = Acc::from_indices(ds, &left_idx);
    let right_acc = Acc::from_indices(ds, &right_idx);
    debug_assert!(left_acc.weight() > 0.0 && right_acc.weight() > 0.0);

    let grow_of = |orders: Vec<Vec<u32>>, acc: &Acc| {
        if !children_may_grow {
            return None;
        }
        best_split(ds, &orders, acc, config, threads).map(|b| (orders, b))
    };
    let left_grow = grow_of(left_orders, &left_acc);
    let right_grow = grow_of(right_orders, &right_acc);
    Expansion {
        left: ChildData {
            indices: left_idx,
            acc: left_acc,
            grow: left_grow,
        },
        right: ChildData {
            indices: right_idx,
            acc: right_acc,
            grow: right_grow,
        },
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties broken by node index for determinism.
        // `total_cmp` (not `partial_cmp(..).unwrap_or(Equal)`): a NaN gain
        // made NaN compare "equal" to *everything* while finite gains
        // still ordered, violating the Ord contract and silently
        // scrambling `BinaryHeap` pop order. Under the IEEE total order a
        // positive NaN simply sorts above +inf and transitivity holds.
        self.best
            .gain
            .total_cmp(&other.best.gain)
            .then_with(|| other.node_idx.cmp(&self.node_idx))
    }
}

/// Scan one feature's presorted index list for its best boundary split.
fn scan_feature(
    ds: &Dataset,
    f: usize,
    order: &[u32],
    parent: &Acc,
    parent_imp: f64,
    config: &TreeConfig,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    let mut left = Acc::empty_like(ds);
    let mut right = parent.clone();
    for k in 0..order.len() - 1 {
        let i = order[k] as usize;
        left.add(ds, i, 1.0);
        right.add(ds, i, -1.0);
        let v = ds.x[i][f];
        let v_next = ds.x[order[k + 1] as usize][f];
        if v_next <= v {
            continue; // not a boundary between distinct values
        }
        let n_left = k + 1;
        let n_right = order.len() - n_left;
        if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
            continue;
        }
        let gain = parent_imp
            - left.weighted_impurity(config.criterion)
            - right.weighted_impurity(config.criterion);
        if gain > config.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
            let threshold = v + (v_next - v) / 2.0;
            // Guard against midpoints that collapse onto v due to
            // floating point; such splits would send everything right.
            let threshold = if threshold > v { threshold } else { v_next };
            best = Some(BestSplit {
                feature: f,
                threshold,
                gain,
            });
        }
    }
    best
}

/// Keep the better of two per-feature results, breaking gain ties toward
/// the lower feature index — the same winner a sequential `for f in 0..F`
/// scan with a strict `gain > best.gain` update would pick.
fn better(a: Option<BestSplit>, b: Option<BestSplit>) -> Option<BestSplit> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            // `x` always comes from a lower feature index than `y`.
            debug_assert!(x.feature < y.feature);
            if y.gain > x.gain {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

/// Find the best split over all features using the candidate's presorted
/// per-feature index lists, fanning the feature scan across threads when
/// the node is large enough to amortize the spawns.
fn best_split(
    ds: &Dataset,
    orders: &[Vec<u32>],
    parent: &Acc,
    config: &TreeConfig,
    threads: usize,
) -> Option<BestSplit> {
    let n = orders[0].len();
    if n < 2 * config.min_samples_leaf.max(1) {
        return None;
    }
    let parent_imp = parent.weighted_impurity(config.criterion);
    if parent_imp <= config.min_gain {
        return None; // already pure
    }
    let n_features = ds.n_features();
    let workers = threads.min(n_features);
    if workers <= 1 || n * n_features < PAR_SPLIT_THRESHOLD {
        let mut best: Option<BestSplit> = None;
        for (f, order) in orders.iter().enumerate() {
            best = better(best, scan_feature(ds, f, order, parent, parent_imp, config));
        }
        return best;
    }
    // Contiguous feature chunks on the persistent worker pool, reduced in
    // ascending order so the tie-breaking matches the sequential scan
    // exactly. `lo` is clamped: with ceil-divided chunks a late worker's
    // start can exceed `n_features` (e.g. 5 features over 4 workers), and
    // the unclamped slice would panic.
    let chunk = n_features.div_ceil(workers);
    let per_chunk = metis_nn::par::parallel_map_indexed(workers, workers, |w| {
        let lo = (w * chunk).min(n_features);
        let hi = ((w + 1) * chunk).min(n_features);
        let mut best: Option<BestSplit> = None;
        for (off, order) in orders[lo..hi].iter().enumerate() {
            best = better(
                best,
                scan_feature(ds, lo + off, order, parent, parent_imp, config),
            );
        }
        best
    });
    per_chunk.into_iter().fold(None, better)
}

/// Build the root's per-feature sorted index lists (ties broken by index,
/// so the order is fully deterministic).
fn presort(ds: &Dataset) -> Vec<Vec<u32>> {
    let n = ds.len() as u32;
    (0..ds.n_features())
        .map(|f| {
            let mut order: Vec<u32> = (0..n).collect();
            order.sort_unstable_by(|&a, &b| {
                ds.x[a as usize][f]
                    .partial_cmp(&ds.x[b as usize][f])
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });
            order
        })
        .collect()
}

/// Partition an index list by the split predicate, preserving order.
fn partition_by(ds: &Dataset, idx: &[u32], split: &BestSplit) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &i in idx {
        if ds.x[i as usize][split.feature] < split.threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    (left, right)
}

/// Partition an index list by a precomputed membership mark, preserving
/// order — the per-feature order lists reuse the predicate evaluated once
/// in [`partition_by`] instead of re-testing `F` times per split.
fn partition_by_mark(mark: &[bool], idx: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &i in idx {
        if mark[i as usize] {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    (left, right)
}

/// Fit a CART tree to a weighted dataset.
pub fn fit(ds: &Dataset, config: &TreeConfig) -> Result<DecisionTree, FitError> {
    match (&ds.y, config.criterion) {
        (Targets::Class { .. }, Criterion::Gini | Criterion::Entropy) => {}
        (Targets::Value(_), Criterion::Mse) => {}
        _ => return Err(FitError::CriterionMismatch),
    }
    if config.max_leaf_nodes == 0 {
        return Err(FitError::NoLeavesAllowed);
    }

    let kind = match &ds.y {
        Targets::Class { n_classes, .. } => TreeKind::Classifier {
            n_classes: *n_classes,
        },
        Targets::Value(_) => TreeKind::Regressor,
    };
    let threads = resolve_threads(config.threads);

    let all: Vec<u32> = (0..ds.len() as u32).collect();
    let root_acc = Acc::from_indices(ds, &all);
    let mut nodes = vec![Node {
        stats: root_acc.clone().into_stats(),
        split: None,
    }];

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let depth_ok = |d: usize| config.max_depth.is_none_or(|m| d < m);
    if depth_ok(0) {
        let orders = presort(ds);
        if let Some(best) = best_split(ds, &orders, &root_acc, config, threads) {
            heap.push(Candidate {
                node_idx: 0,
                indices: all,
                orders,
                depth: 0,
                best,
                expansion: None,
            });
        }
    }

    let frontier = if config.frontier == 0 {
        threads
    } else {
        config.frontier
    };
    let mut n_leaves = 1usize;
    while n_leaves < config.max_leaf_nodes {
        let Some(mut cand) = heap.pop() else { break };

        if cand.expansion.is_none() {
            if frontier <= 1 {
                cand.expansion = Some(Box::new(expand(ds, config, threads, &cand)));
            } else {
                // Frontier-parallel expansion: gather up to `frontier`
                // unexpanded candidates (never more than the remaining
                // leaf budget could apply — anything beyond is guaranteed
                // waste), parking already-expanded ones, expand the batch
                // on the pool, and push everything back. The heap key
                // ignores expansions, so the re-pop surfaces the same
                // best candidate — now expanded — and the `continue`
                // applies it through the sequential path below. Splits
                // therefore apply in exactly the heap-pop order of a
                // frontier=1 build, and the tree is bit-identical for
                // any frontier width and thread count.
                let want = frontier.min(config.max_leaf_nodes - n_leaves);
                let mut batch = vec![cand];
                let mut parked = Vec::new();
                while batch.len() < want {
                    match heap.pop() {
                        Some(c) if c.expansion.is_none() => batch.push(c),
                        Some(c) => parked.push(c),
                        None => break,
                    }
                }
                let expansions = metis_nn::par::parallel_map_indexed(batch.len(), threads, |b| {
                    Box::new(expand(ds, config, threads, &batch[b]))
                });
                for (mut c, e) in batch.into_iter().zip(expansions) {
                    c.expansion = Some(e);
                    heap.push(c);
                }
                for c in parked {
                    heap.push(c);
                }
                continue;
            }
        }

        // Apply the (pre)computed expansion — the only place the tree is
        // mutated, strictly in heap-pop order.
        let Candidate {
            node_idx,
            depth,
            best,
            expansion,
            ..
        } = cand;
        let Expansion { left, right } = *expansion.expect("expanded above");

        let left_node = nodes.len();
        nodes.push(Node {
            stats: left.acc.into_stats(),
            split: None,
        });
        let right_node = nodes.len();
        nodes.push(Node {
            stats: right.acc.into_stats(),
            split: None,
        });
        nodes[node_idx].split = Some(Split {
            feature: best.feature,
            threshold: best.threshold,
            left: left_node,
            right: right_node,
        });
        n_leaves += 1;

        if let Some((orders, b)) = left.grow {
            heap.push(Candidate {
                node_idx: left_node,
                indices: left.indices,
                orders,
                depth: depth + 1,
                best: b,
                expansion: None,
            });
        }
        if let Some((orders, b)) = right.grow {
            heap.push(Candidate {
                node_idx: right_node,
                indices: right.indices,
                orders,
                depth: depth + 1,
                best: b,
                expansion: None,
            });
        }
    }

    Ok(DecisionTree::new(nodes, kind, ds.n_features()))
}

/// The pre-refactor splitter, kept verbatim as the parity oracle for the
/// presorted/parallel implementation: per-node re-sorting, sequential
/// feature scan, identical gain and tie-breaking rules.
#[cfg(test)]
mod reference {
    use super::*;

    fn best_split(
        ds: &Dataset,
        idx: &[usize],
        parent: &Acc,
        config: &TreeConfig,
    ) -> Option<BestSplit> {
        if idx.len() < 2 * config.min_samples_leaf.max(1) {
            return None;
        }
        let parent_imp = parent.weighted_impurity(config.criterion);
        if parent_imp <= config.min_gain {
            return None; // already pure
        }
        let n_features = ds.n_features();
        let mut best: Option<BestSplit> = None;

        // Reusable sort buffer.
        let mut order: Vec<usize> = idx.to_vec();
        for f in 0..n_features {
            order.sort_unstable_by(|&a, &b| {
                ds.x[a][f]
                    .partial_cmp(&ds.x[b][f])
                    .unwrap_or(Ordering::Equal)
            });
            let mut left = Acc::empty_like(ds);
            let mut right = {
                let u32s: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
                Acc::from_indices(ds, &u32s)
            };
            for k in 0..order.len() - 1 {
                let i = order[k];
                left.add(ds, i, 1.0);
                right.add(ds, i, -1.0);
                let v = ds.x[i][f];
                let v_next = ds.x[order[k + 1]][f];
                if v_next <= v {
                    continue;
                }
                let n_left = k + 1;
                let n_right = order.len() - n_left;
                if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
                    continue;
                }
                let gain = parent_imp
                    - left.weighted_impurity(config.criterion)
                    - right.weighted_impurity(config.criterion);
                if gain > config.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                    let threshold = v + (v_next - v) / 2.0;
                    let threshold = if threshold > v { threshold } else { v_next };
                    best = Some(BestSplit {
                        feature: f,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    struct RefCandidate {
        node_idx: usize,
        indices: Vec<usize>,
        depth: usize,
        best: BestSplit,
    }

    impl PartialEq for RefCandidate {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for RefCandidate {}
    impl PartialOrd for RefCandidate {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefCandidate {
        fn cmp(&self, other: &Self) -> Ordering {
            // Same total_cmp fix as `Candidate::cmp`: the oracle heap must
            // honour the Ord contract for NaN gains too.
            self.best
                .gain
                .total_cmp(&other.best.gain)
                .then_with(|| other.node_idx.cmp(&self.node_idx))
        }
    }

    pub fn fit(ds: &Dataset, config: &TreeConfig) -> Result<DecisionTree, FitError> {
        match (&ds.y, config.criterion) {
            (Targets::Class { .. }, Criterion::Gini | Criterion::Entropy) => {}
            (Targets::Value(_), Criterion::Mse) => {}
            _ => return Err(FitError::CriterionMismatch),
        }
        if config.max_leaf_nodes == 0 {
            return Err(FitError::NoLeavesAllowed);
        }

        let kind = match &ds.y {
            Targets::Class { n_classes, .. } => TreeKind::Classifier {
                n_classes: *n_classes,
            },
            Targets::Value(_) => TreeKind::Regressor,
        };

        let all: Vec<usize> = (0..ds.len()).collect();
        let acc_of = |idx: &[usize]| {
            let u32s: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
            Acc::from_indices(ds, &u32s)
        };
        let root_acc = acc_of(&all);
        let mut nodes = vec![Node {
            stats: root_acc.clone().into_stats(),
            split: None,
        }];

        let mut heap: BinaryHeap<RefCandidate> = BinaryHeap::new();
        let depth_ok = |d: usize| config.max_depth.is_none_or(|m| d < m);
        if depth_ok(0) {
            if let Some(best) = best_split(ds, &all, &root_acc, config) {
                heap.push(RefCandidate {
                    node_idx: 0,
                    indices: all,
                    depth: 0,
                    best,
                });
            }
        }

        let mut n_leaves = 1usize;
        while n_leaves < config.max_leaf_nodes {
            let Some(cand) = heap.pop() else { break };
            let RefCandidate {
                node_idx,
                indices,
                depth,
                best,
            } = cand;

            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            for &i in &indices {
                if ds.x[i][best.feature] < best.threshold {
                    left_idx.push(i);
                } else {
                    right_idx.push(i);
                }
            }

            let left_acc = acc_of(&left_idx);
            let right_acc = acc_of(&right_idx);

            let left_node = nodes.len();
            nodes.push(Node {
                stats: left_acc.clone().into_stats(),
                split: None,
            });
            let right_node = nodes.len();
            nodes.push(Node {
                stats: right_acc.clone().into_stats(),
                split: None,
            });
            nodes[node_idx].split = Some(Split {
                feature: best.feature,
                threshold: best.threshold,
                left: left_node,
                right: right_node,
            });
            n_leaves += 1;

            if depth_ok(depth + 1) {
                if let Some(b) = best_split(ds, &left_idx, &left_acc, config) {
                    heap.push(RefCandidate {
                        node_idx: left_node,
                        indices: left_idx,
                        depth: depth + 1,
                        best: b,
                    });
                }
                if let Some(b) = best_split(ds, &right_idx, &right_acc, config) {
                    heap.push(RefCandidate {
                        node_idx: right_node,
                        indices: right_idx,
                        depth: depth + 1,
                        best: b,
                    });
                }
            }
        }

        Ok(DecisionTree::new(nodes, kind, ds.n_features()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn axis_ds() -> Dataset {
        // Perfectly separable on feature 0 at threshold ~0.5.
        let x = vec![
            vec![0.0, 9.0],
            vec![0.2, 1.0],
            vec![0.4, 8.0],
            vec![0.6, 2.0],
            vec![0.8, 7.0],
            vec![1.0, 3.0],
        ];
        let y = vec![0, 0, 0, 1, 1, 1];
        Dataset::classification(x, y, 2).unwrap()
    }

    #[test]
    fn separable_data_one_split() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 2);
        assert_eq!(tree.depth(), 1);
        let split = tree.node(0).split.as_ref().unwrap();
        assert_eq!(split.feature, 0);
        assert!(split.threshold > 0.4 && split.threshold <= 0.6);
        assert_eq!(tree.predict_class(&[0.1, 5.0]), 0);
        assert_eq!(tree.predict_class(&[0.9, 5.0]), 1);
    }

    #[test]
    fn pure_node_not_split() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let ds = Dataset::classification(x, y, 2).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_class(&[5.0]), 1);
    }

    #[test]
    fn max_leaf_nodes_respected() {
        // Checkerboard-ish data that wants many splits.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            x.push(vec![i as f64]);
            y.push((i / 4) % 2);
        }
        let ds = Dataset::classification(x, y, 2).unwrap();
        for max in [1, 2, 3, 5, 8] {
            let tree = fit(&ds, &TreeConfig::with_max_leaves(max)).unwrap();
            assert!(
                tree.n_leaves() <= max,
                "asked {max}, got {}",
                tree.n_leaves()
            );
        }
        let big = fit(&ds, &TreeConfig::with_max_leaves(1000)).unwrap();
        // 16 alternating blocks need 16 leaves to classify perfectly.
        assert_eq!(big.n_leaves(), 16);
        for i in 0..64 {
            assert_eq!(big.predict_class(&[i as f64]), (i / 4) % 2);
        }
    }

    #[test]
    fn max_depth_respected() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..32 {
            x.push(vec![i as f64]);
            y.push(i % 2);
        }
        let ds = Dataset::classification(x, y, 2).unwrap();
        let cfg = TreeConfig {
            max_depth: Some(3),
            max_leaf_nodes: 1000,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = axis_ds();
        let cfg = TreeConfig {
            min_samples_leaf: 4,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        // 6 samples cannot form two children of >= 4 samples.
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn entropy_criterion_also_separates() {
        let ds = axis_ds();
        let cfg = TreeConfig {
            criterion: Criterion::Entropy,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        assert_eq!(tree.predict_class(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict_class(&[1.0, 0.0]), 1);
    }

    #[test]
    fn criterion_mismatch_rejected() {
        let ds = axis_ds();
        let cfg = TreeConfig {
            criterion: Criterion::Mse,
            ..Default::default()
        };
        assert_eq!(fit(&ds, &cfg).unwrap_err(), FitError::CriterionMismatch);
        let reg = Dataset::regression(vec![vec![0.0]], vec![1.0]).unwrap();
        assert_eq!(
            fit(&reg, &TreeConfig::default()).unwrap_err(),
            FitError::CriterionMismatch
        );
    }

    #[test]
    fn regression_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let ds = Dataset::regression(x, y).unwrap();
        let cfg = TreeConfig {
            criterion: Criterion::Mse,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        assert_eq!(tree.n_leaves(), 2);
        assert!((tree.predict_value(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((tree.predict_value(&[15.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_majority() {
        // Same features, conflicting labels; weights decide the prediction.
        let x = vec![vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![0, 1, 1];
        let ds = Dataset::classification_weighted(x, y, 2, vec![10.0, 1.0, 1.0]).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.predict_class(&[0.0]), 0);
    }

    #[test]
    fn weights_shift_split_choice() {
        // Without weights, feature 1 separates 4/6 correctly and feature 0
        // separates all; both datasets are crafted so that upweighting the
        // samples that disagree on f0 moves the best first split.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ];
        let y = vec![0, 0, 1, 1];
        let ds = Dataset::classification(x.clone(), y.clone(), 2).unwrap();
        let t = fit(&ds, &TreeConfig::with_max_leaves(2)).unwrap();
        // Both features separate perfectly; gain ties are broken
        // deterministically, so just check it is perfect.
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert_eq!(t.predict_class(xi), *yi);
        }
    }

    #[test]
    fn decision_path_and_proba() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let path = tree.decision_path(&[0.0, 0.0]);
        assert_eq!(path[0], 0);
        assert_eq!(path.len(), 2);
        let proba = tree.predict_proba(&[0.0, 0.0]).unwrap();
        assert!((proba[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_tree_matches() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let compiled = crate::tree::CompiledTree::compile(&tree);
        for x in [[0.1, 2.0], [0.5, 3.0], [0.9, 1.0]] {
            assert_eq!(tree.predict_class(&x), compiled.predict_class(&x));
        }
    }

    #[test]
    fn compiled_regression_matches() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i * 7 % 5) as f64])
            .collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5).sin()).collect();
        let ds = Dataset::regression(x.clone(), y).unwrap();
        let cfg = TreeConfig {
            criterion: Criterion::Mse,
            max_leaf_nodes: 8,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        let compiled = crate::tree::CompiledTree::compile(&tree);
        for xi in &x {
            assert!((tree.predict_value(xi) - compiled.predict_value(xi)).abs() < 1e-12);
        }
    }

    /// Deterministic pseudo-random dyadic values (multiples of 1/64): all
    /// impurity accumulations are exact in f64, so the presorted/parallel
    /// splitter and the pre-refactor reference are bit-identical.
    fn dyadic(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) % 64) as f64 / 64.0
    }

    fn parity_features(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed;
        (0..n)
            .map(|_| (0..d).map(|_| dyadic(&mut s)).collect())
            .collect()
    }

    #[test]
    fn parity_with_reference_classification() {
        let x = parity_features(300, 6, 7);
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] * 4.0 + xi[3] * 2.0) as usize).min(4))
            .collect();
        let w: Vec<f64> = (0..x.len()).map(|i| 1.0 + (i % 4) as f64 * 0.25).collect();
        let ds = Dataset::classification_weighted(x.clone(), y, 5, w).unwrap();
        for leaves in [2, 8, 31, 200] {
            let cfg = TreeConfig {
                max_leaf_nodes: leaves,
                ..Default::default()
            };
            let new = fit(&ds, &cfg).unwrap();
            let old = super::reference::fit(&ds, &cfg).unwrap();
            assert_eq!(new, old, "trees diverge at {leaves} leaves");
            for xi in &x {
                assert_eq!(new.predict_class(xi), old.predict_class(xi));
            }
        }
        // Entropy criterion and the threaded scan agree too.
        let cfg = TreeConfig {
            criterion: Criterion::Entropy,
            max_leaf_nodes: 16,
            threads: 4,
            ..Default::default()
        };
        let new = fit(&ds, &cfg).unwrap();
        let old = super::reference::fit(&ds, &cfg).unwrap();
        assert_eq!(new, old);
    }

    #[test]
    fn parity_with_reference_regression() {
        let x = parity_features(250, 4, 13);
        let y: Vec<f64> = x.iter().map(|xi| xi[1] * 2.0 - xi[2] + 0.25).collect();
        let ds = Dataset::regression(x.clone(), y).unwrap();
        for leaves in [2, 10, 64] {
            let cfg = TreeConfig {
                criterion: Criterion::Mse,
                max_leaf_nodes: leaves,
                min_samples_leaf: 3,
                ..Default::default()
            };
            let new = fit(&ds, &cfg).unwrap();
            let old = super::reference::fit(&ds, &cfg).unwrap();
            assert_eq!(new, old, "regression trees diverge at {leaves} leaves");
            for xi in &x {
                assert_eq!(
                    new.predict_value(xi).to_bits(),
                    old.predict_value(xi).to_bits()
                );
            }
        }
    }

    #[test]
    fn threaded_fit_identical_to_sequential() {
        // Large enough (samples x features > PAR_SPLIT_THRESHOLD) that the
        // scan genuinely fans out across threads near the root.
        let x = parity_features(3000, 8, 21);
        assert!(x.len() * x[0].len() > super::PAR_SPLIT_THRESHOLD);
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] + xi[7]) * 3.0) as usize % 6)
            .collect();
        let ds = Dataset::classification(x, y, 6).unwrap();
        let fit_with = |threads: usize| {
            fit(
                &ds,
                &TreeConfig {
                    max_leaf_nodes: 64,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let t1 = fit_with(1);
        assert_eq!(t1, fit_with(2));
        assert_eq!(t1, fit_with(5));
        assert_eq!(t1, fit_with(16));
    }

    /// Frontier-parallel growth is bit-identical to strictly sequential
    /// expansion for every frontier width and thread count — including
    /// frontiers wider than the heap ever gets and wider than the leaf
    /// budget, under a depth cap, and for regression. Speculation may
    /// waste work; it may never change the tree.
    #[test]
    fn frontier_parallel_fit_identical_to_sequential() {
        let x = parity_features(1200, 6, 33);
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[1] * 3.0 + xi[4] * 4.0) as usize) % 5)
            .collect();
        let ds = Dataset::classification(x.clone(), y, 5).unwrap();
        for max_depth in [None, Some(4)] {
            let fit_with = |frontier: usize, threads: usize| {
                fit(
                    &ds,
                    &TreeConfig {
                        max_leaf_nodes: 48,
                        max_depth,
                        frontier,
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let sequential = fit_with(1, 1);
            for frontier in [2, 3, 8, 64] {
                for threads in [1, 2, 8] {
                    assert_eq!(
                        sequential,
                        fit_with(frontier, threads),
                        "diverged at frontier={frontier} threads={threads} depth={max_depth:?}"
                    );
                }
            }
        }

        let yv: Vec<f64> = x.iter().map(|xi| xi[0] * 3.0 - xi[5] + 0.5).collect();
        let reg = Dataset::regression(x, yv).unwrap();
        let cfg = |frontier: usize| TreeConfig {
            criterion: Criterion::Mse,
            max_leaf_nodes: 32,
            min_samples_leaf: 2,
            frontier,
            threads: 4,
            ..Default::default()
        };
        let sequential = fit(&reg, &cfg(1)).unwrap();
        for frontier in [2, 6, 16] {
            assert_eq!(sequential, fit(&reg, &cfg(frontier)).unwrap());
        }
    }

    /// The frontier gather path survives a leaf budget that runs out
    /// mid-speculation (want clamps to the remaining budget) and a heap
    /// that drains during the gather.
    #[test]
    fn frontier_wider_than_budget_or_heap() {
        let x = parity_features(200, 3, 41);
        let y: Vec<usize> = x.iter().map(|xi| usize::from(xi[0] > 0.5)).collect();
        let ds = Dataset::classification(x, y, 2).unwrap();
        for max in [1, 2, 3] {
            let seq = fit(&ds, &TreeConfig::with_max_leaves(max)).unwrap();
            let wide = fit(
                &ds,
                &TreeConfig {
                    max_leaf_nodes: max,
                    frontier: 32,
                    threads: 8,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq, wide, "diverged at max_leaf_nodes={max}");
        }
    }

    /// Regression for the Ord-contract bug: `partial_cmp(..).unwrap_or(Equal)`
    /// made a NaN-gain candidate "equal" to every other candidate while
    /// finite gains still ordered, so `BinaryHeap` pop order was scrambled
    /// (NaN could surface anywhere, dragging neighbours with it). Under
    /// `total_cmp`, positive NaN sorts above +inf, ties (including
    /// NaN-vs-NaN, e.g. two zero-variance/overflowed splits) break toward
    /// the lower node index, and pops are a strict total order.
    #[test]
    fn heap_pop_order_is_total_with_nan_gain_candidates() {
        let mk = |gain: f64, node_idx: usize| Candidate {
            node_idx,
            indices: Vec::new(),
            orders: Vec::new(),
            depth: 0,
            best: BestSplit {
                feature: 0,
                threshold: 0.0,
                gain,
            },
            expansion: None,
        };
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        for (gain, node_idx) in [
            (1.0, 10),
            (f64::NAN, 11),
            (2.0, 12),
            (0.0, 13),
            (f64::NAN, 14),
            (f64::INFINITY, 15),
        ] {
            heap.push(mk(gain, node_idx));
        }
        let popped: Vec<usize> = std::iter::from_fn(|| heap.pop())
            .map(|c| c.node_idx)
            .collect();
        assert_eq!(popped, vec![11, 14, 15, 12, 10, 13]);

        // And the comparator is a genuine total order over NaN candidates:
        // reflexivity-of-equality and antisymmetry spot checks.
        let (a, b) = (mk(f64::NAN, 1), mk(f64::NAN, 2));
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        assert!(mk(f64::NAN, 1) == mk(f64::NAN, 1));
        assert!(mk(f64::NAN, 1) != mk(f64::NAN, 2));
    }

    /// Regression for the parallel split-scan chunk guard: with a worker
    /// count that over-divides the feature count (ceil chunks), a late
    /// worker's `lo` exceeds `n_features` — 5 features over 4 workers put
    /// worker 3 at `lo = 6` — and the unclamped slice panicked.
    #[test]
    fn threaded_scan_with_overdivided_feature_chunks() {
        // 5 features x 4000 samples > PAR_SPLIT_THRESHOLD, threads = 4
        // => chunk = ceil(5/4) = 2, worker 3 starts past the feature end.
        let x = parity_features(4000, 5, 29);
        assert!(x.len() * x[0].len() > super::PAR_SPLIT_THRESHOLD);
        let y: Vec<usize> = x
            .iter()
            .map(|xi| ((xi[0] + xi[4]) * 2.0) as usize % 4)
            .collect();
        let ds = Dataset::classification(x, y, 4).unwrap();
        let fit_with = |threads: usize| {
            fit(
                &ds,
                &TreeConfig {
                    max_leaf_nodes: 16,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let sequential = fit_with(1);
        assert_eq!(sequential, fit_with(4));
    }

    #[test]
    fn feature_importance_prefers_informative_feature() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let imp = tree.feature_importance();
        assert!(imp[0] > 0.99, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
