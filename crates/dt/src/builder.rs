//! CART construction with weighted samples and best-first growth.
//!
//! Growth is *best-first* (highest impurity decrease next), matching
//! scikit-learn's behaviour under `max_leaf_nodes` — the knob Table 4 of the
//! paper sets to 200 (Pensieve) and 2000 (AuTO agents).

use crate::dataset::{Dataset, Targets};
use crate::tree::{DecisionTree, Node, NodeStats, Split, TreeKind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification default).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Variance reduction (regression; the only valid choice there).
    Mse,
}

/// Tree-growing configuration. Defaults mirror the paper's setup.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum number of leaves (best-first growth stops here).
    pub max_leaf_nodes: usize,
    /// Optional depth cap (root has depth 0).
    pub max_depth: Option<usize>,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease for a split to be considered.
    pub min_gain: f64,
    pub criterion: Criterion,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_leaf_nodes: 200,
            max_depth: None,
            min_samples_leaf: 1,
            min_gain: 1e-12,
            criterion: Criterion::Gini,
        }
    }
}

impl TreeConfig {
    pub fn with_max_leaves(max_leaf_nodes: usize) -> Self {
        TreeConfig { max_leaf_nodes, ..Default::default() }
    }
}

/// Errors raised by [`fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// MSE requested on classification targets or Gini/Entropy on regression.
    CriterionMismatch,
    /// `max_leaf_nodes` must be at least 1.
    NoLeavesAllowed,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::CriterionMismatch => write!(f, "criterion does not match target type"),
            FitError::NoLeavesAllowed => write!(f, "max_leaf_nodes must be >= 1"),
        }
    }
}

impl std::error::Error for FitError {}

/// Accumulated target statistics for a sample subset.
#[derive(Clone)]
enum Acc {
    Class(Vec<f64>),
    Value { w: f64, sum: f64, sumsq: f64 },
}

impl Acc {
    fn empty_like(ds: &Dataset) -> Acc {
        match &ds.y {
            Targets::Class { n_classes, .. } => Acc::Class(vec![0.0; *n_classes]),
            Targets::Value(_) => Acc::Value { w: 0.0, sum: 0.0, sumsq: 0.0 },
        }
    }

    fn add(&mut self, ds: &Dataset, i: usize, sign: f64) {
        let w = ds.w[i] * sign;
        match self {
            Acc::Class(h) => h[ds.label(i).unwrap()] += w,
            Acc::Value { w: tw, sum, sumsq } => {
                let y = ds.value(i).unwrap();
                *tw += w;
                *sum += w * y;
                *sumsq += w * y * y;
            }
        }
    }

    fn from_indices(ds: &Dataset, idx: &[usize]) -> Acc {
        let mut acc = Acc::empty_like(ds);
        for &i in idx {
            acc.add(ds, i, 1.0);
        }
        acc
    }

    fn weight(&self) -> f64 {
        match self {
            Acc::Class(h) => h.iter().sum(),
            Acc::Value { w, .. } => *w,
        }
    }

    /// Weighted impurity contribution: `weight * impurity`.
    /// For Gini: W * (1 - Σ p²); entropy: W * (-Σ p ln p); MSE: SSE.
    fn weighted_impurity(&self, criterion: Criterion) -> f64 {
        match (self, criterion) {
            (Acc::Class(h), Criterion::Gini) => {
                let w: f64 = h.iter().sum();
                if w <= 0.0 {
                    return 0.0;
                }
                let sq: f64 = h.iter().map(|&c| c * c).sum();
                w - sq / w
            }
            (Acc::Class(h), Criterion::Entropy) => {
                let w: f64 = h.iter().sum();
                if w <= 0.0 {
                    return 0.0;
                }
                -h.iter()
                    .filter(|&&c| c > 0.0)
                    .map(|&c| c * (c / w).ln())
                    .sum::<f64>()
            }
            (Acc::Value { w, sum, sumsq }, Criterion::Mse) => {
                if *w <= 0.0 {
                    0.0
                } else {
                    (sumsq - sum * sum / w).max(0.0)
                }
            }
            _ => unreachable!("criterion/target mismatch checked in fit"),
        }
    }

    fn into_stats(self) -> NodeStats {
        match self {
            Acc::Class(dist) => NodeStats::Class { dist },
            Acc::Value { w, sum, sumsq } => NodeStats::Value { w, sum, sumsq },
        }
    }
}

/// The best split found for a candidate node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// A pending (not-yet-split) node in the best-first frontier.
struct Candidate {
    node_idx: usize,
    indices: Vec<usize>,
    depth: usize,
    best: BestSplit,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.best.gain == other.best.gain
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties broken by node index for determinism.
        self.best
            .gain
            .partial_cmp(&other.best.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node_idx.cmp(&self.node_idx))
    }
}

/// Find the best split over all features for the sample subset `idx`.
fn best_split(
    ds: &Dataset,
    idx: &[usize],
    parent: &Acc,
    config: &TreeConfig,
) -> Option<BestSplit> {
    if idx.len() < 2 * config.min_samples_leaf.max(1) {
        return None;
    }
    let parent_imp = parent.weighted_impurity(config.criterion);
    if parent_imp <= config.min_gain {
        return None; // already pure
    }
    let n_features = ds.n_features();
    let mut best: Option<BestSplit> = None;

    // Reusable sort buffer.
    let mut order: Vec<usize> = idx.to_vec();
    for f in 0..n_features {
        order.sort_unstable_by(|&a, &b| {
            ds.x[a][f].partial_cmp(&ds.x[b][f]).unwrap_or(Ordering::Equal)
        });
        let mut left = Acc::empty_like(ds);
        let mut right = Acc::from_indices(ds, idx);
        for k in 0..order.len() - 1 {
            let i = order[k];
            left.add(ds, i, 1.0);
            right.add(ds, i, -1.0);
            let v = ds.x[i][f];
            let v_next = ds.x[order[k + 1]][f];
            if v_next <= v {
                continue; // not a boundary between distinct values
            }
            let n_left = k + 1;
            let n_right = order.len() - n_left;
            if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
                continue;
            }
            let gain = parent_imp
                - left.weighted_impurity(config.criterion)
                - right.weighted_impurity(config.criterion);
            if gain > config.min_gain
                && best.as_ref().map_or(true, |b| gain > b.gain)
            {
                let threshold = v + (v_next - v) / 2.0;
                // Guard against midpoints that collapse onto v due to
                // floating point; such splits would send everything right.
                let threshold = if threshold > v { threshold } else { v_next };
                best = Some(BestSplit { feature: f, threshold, gain });
            }
        }
    }
    best
}

/// Fit a CART tree to a weighted dataset.
pub fn fit(ds: &Dataset, config: &TreeConfig) -> Result<DecisionTree, FitError> {
    match (&ds.y, config.criterion) {
        (Targets::Class { .. }, Criterion::Gini | Criterion::Entropy) => {}
        (Targets::Value(_), Criterion::Mse) => {}
        _ => return Err(FitError::CriterionMismatch),
    }
    if config.max_leaf_nodes == 0 {
        return Err(FitError::NoLeavesAllowed);
    }

    let kind = match &ds.y {
        Targets::Class { n_classes, .. } => TreeKind::Classifier { n_classes: *n_classes },
        Targets::Value(_) => TreeKind::Regressor,
    };

    let all: Vec<usize> = (0..ds.len()).collect();
    let root_acc = Acc::from_indices(ds, &all);
    let mut nodes = vec![Node { stats: root_acc.clone().into_stats(), split: None }];

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let depth_ok = |d: usize| config.max_depth.map_or(true, |m| d < m);
    if depth_ok(0) {
        if let Some(best) = best_split(ds, &all, &root_acc, config) {
            heap.push(Candidate { node_idx: 0, indices: all, depth: 0, best });
        }
    }

    let mut n_leaves = 1usize;
    while n_leaves < config.max_leaf_nodes {
        let Some(cand) = heap.pop() else { break };
        let Candidate { node_idx, indices, depth, best } = cand;

        // Partition samples.
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for &i in &indices {
            if ds.x[i][best.feature] < best.threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let left_acc = Acc::from_indices(ds, &left_idx);
        let right_acc = Acc::from_indices(ds, &right_idx);
        debug_assert!(left_acc.weight() > 0.0 && right_acc.weight() > 0.0);

        let left_node = nodes.len();
        nodes.push(Node { stats: left_acc.clone().into_stats(), split: None });
        let right_node = nodes.len();
        nodes.push(Node { stats: right_acc.clone().into_stats(), split: None });
        nodes[node_idx].split =
            Some(Split { feature: best.feature, threshold: best.threshold, left: left_node, right: right_node });
        n_leaves += 1;

        if depth_ok(depth + 1) {
            if let Some(b) = best_split(ds, &left_idx, &left_acc, config) {
                heap.push(Candidate { node_idx: left_node, indices: left_idx, depth: depth + 1, best: b });
            }
            if let Some(b) = best_split(ds, &right_idx, &right_acc, config) {
                heap.push(Candidate { node_idx: right_node, indices: right_idx, depth: depth + 1, best: b });
            }
        }
    }

    Ok(DecisionTree::new(nodes, kind, ds.n_features()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn axis_ds() -> Dataset {
        // Perfectly separable on feature 0 at threshold ~0.5.
        let x = vec![
            vec![0.0, 9.0],
            vec![0.2, 1.0],
            vec![0.4, 8.0],
            vec![0.6, 2.0],
            vec![0.8, 7.0],
            vec![1.0, 3.0],
        ];
        let y = vec![0, 0, 0, 1, 1, 1];
        Dataset::classification(x, y, 2).unwrap()
    }

    #[test]
    fn separable_data_one_split() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 2);
        assert_eq!(tree.depth(), 1);
        let split = tree.node(0).split.as_ref().unwrap();
        assert_eq!(split.feature, 0);
        assert!(split.threshold > 0.4 && split.threshold <= 0.6);
        assert_eq!(tree.predict_class(&[0.1, 5.0]), 0);
        assert_eq!(tree.predict_class(&[0.9, 5.0]), 1);
    }

    #[test]
    fn pure_node_not_split() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let ds = Dataset::classification(x, y, 2).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_class(&[5.0]), 1);
    }

    #[test]
    fn max_leaf_nodes_respected() {
        // Checkerboard-ish data that wants many splits.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            x.push(vec![i as f64]);
            y.push((i / 4) % 2);
        }
        let ds = Dataset::classification(x, y, 2).unwrap();
        for max in [1, 2, 3, 5, 8] {
            let tree = fit(&ds, &TreeConfig::with_max_leaves(max)).unwrap();
            assert!(tree.n_leaves() <= max, "asked {max}, got {}", tree.n_leaves());
        }
        let big = fit(&ds, &TreeConfig::with_max_leaves(1000)).unwrap();
        // 16 alternating blocks need 16 leaves to classify perfectly.
        assert_eq!(big.n_leaves(), 16);
        for i in 0..64 {
            assert_eq!(big.predict_class(&[i as f64]), (i / 4) % 2);
        }
    }

    #[test]
    fn max_depth_respected() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..32 {
            x.push(vec![i as f64]);
            y.push(i % 2);
        }
        let ds = Dataset::classification(x, y, 2).unwrap();
        let cfg = TreeConfig { max_depth: Some(3), max_leaf_nodes: 1000, ..Default::default() };
        let tree = fit(&ds, &cfg).unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = axis_ds();
        let cfg = TreeConfig { min_samples_leaf: 4, ..Default::default() };
        let tree = fit(&ds, &cfg).unwrap();
        // 6 samples cannot form two children of >= 4 samples.
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn entropy_criterion_also_separates() {
        let ds = axis_ds();
        let cfg = TreeConfig { criterion: Criterion::Entropy, ..Default::default() };
        let tree = fit(&ds, &cfg).unwrap();
        assert_eq!(tree.predict_class(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict_class(&[1.0, 0.0]), 1);
    }

    #[test]
    fn criterion_mismatch_rejected() {
        let ds = axis_ds();
        let cfg = TreeConfig { criterion: Criterion::Mse, ..Default::default() };
        assert_eq!(fit(&ds, &cfg).unwrap_err(), FitError::CriterionMismatch);
        let reg = Dataset::regression(vec![vec![0.0]], vec![1.0]).unwrap();
        assert_eq!(
            fit(&reg, &TreeConfig::default()).unwrap_err(),
            FitError::CriterionMismatch
        );
    }

    #[test]
    fn regression_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let ds = Dataset::regression(x, y).unwrap();
        let cfg = TreeConfig { criterion: Criterion::Mse, ..Default::default() };
        let tree = fit(&ds, &cfg).unwrap();
        assert_eq!(tree.n_leaves(), 2);
        assert!((tree.predict_value(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((tree.predict_value(&[15.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_majority() {
        // Same features, conflicting labels; weights decide the prediction.
        let x = vec![vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![0, 1, 1];
        let ds = Dataset::classification_weighted(x, y, 2, vec![10.0, 1.0, 1.0]).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(tree.predict_class(&[0.0]), 0);
    }

    #[test]
    fn weights_shift_split_choice() {
        // Without weights, feature 1 separates 4/6 correctly and feature 0
        // separates all; both datasets are crafted so that upweighting the
        // samples that disagree on f0 moves the best first split.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ];
        let y = vec![0, 0, 1, 1];
        let ds = Dataset::classification(x.clone(), y.clone(), 2).unwrap();
        let t = fit(&ds, &TreeConfig::with_max_leaves(2)).unwrap();
        // Both features separate perfectly; gain ties are broken
        // deterministically, so just check it is perfect.
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert_eq!(t.predict_class(xi), *yi);
        }
    }

    #[test]
    fn decision_path_and_proba() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let path = tree.decision_path(&[0.0, 0.0]);
        assert_eq!(path[0], 0);
        assert_eq!(path.len(), 2);
        let proba = tree.predict_proba(&[0.0, 0.0]).unwrap();
        assert!((proba[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_tree_matches() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let compiled = crate::tree::CompiledTree::compile(&tree);
        for x in [[0.1, 2.0], [0.5, 3.0], [0.9, 1.0]] {
            assert_eq!(tree.predict_class(&x), compiled.predict_class(&x));
        }
    }

    #[test]
    fn compiled_regression_matches() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i * 7 % 5) as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5).sin()).collect();
        let ds = Dataset::regression(x.clone(), y).unwrap();
        let cfg = TreeConfig { criterion: Criterion::Mse, max_leaf_nodes: 8, ..Default::default() };
        let tree = fit(&ds, &cfg).unwrap();
        let compiled = crate::tree::CompiledTree::compile(&tree);
        for xi in &x {
            assert!((tree.predict_value(xi) - compiled.predict_value(xi)).abs() < 1e-12);
        }
    }

    #[test]
    fn feature_importance_prefers_informative_feature() {
        let ds = axis_ds();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        let imp = tree.feature_importance();
        assert!(imp[0] > 0.99, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
