//! Training data for decision trees: features, targets, per-sample weights.
//!
//! Sample weights are first-class because Metis' conversion pipeline
//! resamples/reweights (state, action) pairs by the RL advantage (Eq. 1 of
//! the paper) and oversamples rare actions in the debugging use case (§6.3).

use serde::{Deserialize, Serialize};

/// Targets: class labels (bitrate index, priority, …) or real values
/// (queue thresholds, rate limits, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Targets {
    /// Classification labels in `0..n_classes`.
    Class {
        labels: Vec<usize>,
        n_classes: usize,
    },
    /// Regression values.
    Value(Vec<f64>),
}

impl Targets {
    pub fn len(&self) -> usize {
        match self {
            Targets::Class { labels, .. } => labels.len(),
            Targets::Value(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A weighted supervised dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature rows; all rows must share the same length.
    pub x: Vec<Vec<f64>>,
    pub y: Targets,
    /// Per-sample weights (all 1.0 if unweighted).
    pub w: Vec<f64>,
}

/// Errors raised by dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    Empty,
    RaggedRows,
    LengthMismatch,
    BadLabel,
    NonPositiveWeight,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no samples"),
            DatasetError::RaggedRows => write!(f, "feature rows have differing lengths"),
            DatasetError::LengthMismatch => write!(f, "x, y, w lengths differ"),
            DatasetError::BadLabel => write!(f, "class label out of range"),
            DatasetError::NonPositiveWeight => write!(f, "sample weight must be > 0"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Build a classification dataset with unit weights.
    pub fn classification(
        x: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        let n = x.len();
        let w = vec![1.0; n];
        Self::classification_weighted(x, labels, n_classes, w)
    }

    /// Build a weighted classification dataset.
    pub fn classification_weighted(
        x: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
        w: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        if x.is_empty() {
            return Err(DatasetError::Empty);
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(DatasetError::RaggedRows);
        }
        if labels.len() != x.len() || w.len() != x.len() {
            return Err(DatasetError::LengthMismatch);
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(DatasetError::BadLabel);
        }
        if w.iter().any(|&wi| wi <= 0.0 || !wi.is_finite()) {
            return Err(DatasetError::NonPositiveWeight);
        }
        Ok(Dataset {
            x,
            y: Targets::Class { labels, n_classes },
            w,
        })
    }

    /// Build a regression dataset with unit weights.
    pub fn regression(x: Vec<Vec<f64>>, values: Vec<f64>) -> Result<Self, DatasetError> {
        let n = x.len();
        let w = vec![1.0; n];
        Self::regression_weighted(x, values, w)
    }

    /// Build a weighted regression dataset.
    pub fn regression_weighted(
        x: Vec<Vec<f64>>,
        values: Vec<f64>,
        w: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        if x.is_empty() {
            return Err(DatasetError::Empty);
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(DatasetError::RaggedRows);
        }
        if values.len() != x.len() || w.len() != x.len() {
            return Err(DatasetError::LengthMismatch);
        }
        if w.iter().any(|&wi| wi <= 0.0 || !wi.is_finite()) {
            return Err(DatasetError::NonPositiveWeight);
        }
        Ok(Dataset {
            x,
            y: Targets::Value(values),
            w,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x[0].len()
    }

    /// Number of classes (classification only).
    pub fn n_classes(&self) -> Option<usize> {
        match &self.y {
            Targets::Class { n_classes, .. } => Some(*n_classes),
            Targets::Value(_) => None,
        }
    }

    /// Class label of sample `i` (classification only).
    pub fn label(&self, i: usize) -> Option<usize> {
        match &self.y {
            Targets::Class { labels, .. } => Some(labels[i]),
            Targets::Value(_) => None,
        }
    }

    /// Regression value of sample `i` (regression only).
    pub fn value(&self, i: usize) -> Option<f64> {
        match &self.y {
            Targets::Value(v) => Some(v[i]),
            Targets::Class { .. } => None,
        }
    }

    /// Weighted class histogram over the whole dataset (classification).
    pub fn class_weights(&self) -> Option<Vec<f64>> {
        match &self.y {
            Targets::Class { labels, n_classes } => {
                let mut h = vec![0.0; *n_classes];
                for (l, &w) in labels.iter().zip(self.w.iter()) {
                    h[*l] += w;
                }
                Some(h)
            }
            Targets::Value(_) => None,
        }
    }

    /// Append another dataset of the same schema (used by DAgger rounds).
    pub fn extend(&mut self, other: &Dataset) -> Result<(), DatasetError> {
        if other.is_empty() {
            return Ok(());
        }
        if self.n_features() != other.n_features() {
            return Err(DatasetError::RaggedRows);
        }
        match (&mut self.y, &other.y) {
            (
                Targets::Class { labels, n_classes },
                Targets::Class {
                    labels: ol,
                    n_classes: onc,
                },
            ) => {
                if n_classes != onc {
                    return Err(DatasetError::BadLabel);
                }
                labels.extend_from_slice(ol);
            }
            (Targets::Value(v), Targets::Value(ov)) => v.extend_from_slice(ov),
            _ => return Err(DatasetError::LengthMismatch),
        }
        self.x.extend(other.x.iter().cloned());
        self.w.extend_from_slice(&other.w);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (Vec<Vec<f64>>, Vec<usize>) {
        (vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![0, 1])
    }

    #[test]
    fn classification_ok() {
        let (x, y) = xy();
        let d = Dataset::classification(x, y, 2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), Some(2));
        assert_eq!(d.class_weights(), Some(vec![1.0, 1.0]));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Dataset::classification(vec![], vec![], 2).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn rejects_ragged() {
        let x = vec![vec![0.0], vec![1.0, 2.0]];
        assert_eq!(
            Dataset::classification(x, vec![0, 1], 2).unwrap_err(),
            DatasetError::RaggedRows
        );
    }

    #[test]
    fn rejects_bad_label() {
        let (x, _) = xy();
        assert_eq!(
            Dataset::classification(x, vec![0, 5], 2).unwrap_err(),
            DatasetError::BadLabel
        );
    }

    #[test]
    fn rejects_bad_weights() {
        let (x, y) = xy();
        assert_eq!(
            Dataset::classification_weighted(x, y, 2, vec![1.0, 0.0]).unwrap_err(),
            DatasetError::NonPositiveWeight
        );
    }

    #[test]
    fn regression_value_access() {
        let d = Dataset::regression(vec![vec![1.0], vec![2.0]], vec![10.0, 20.0]).unwrap();
        assert_eq!(d.value(1), Some(20.0));
        assert_eq!(d.label(0), None);
        assert_eq!(d.n_classes(), None);
    }

    #[test]
    fn extend_merges() {
        let (x, y) = xy();
        let mut a = Dataset::classification(x.clone(), y.clone(), 2).unwrap();
        let b = Dataset::classification(x, y, 2).unwrap();
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn extend_schema_mismatch() {
        let (x, y) = xy();
        let mut a = Dataset::classification(x.clone(), y, 2).unwrap();
        let b = Dataset::regression(x, vec![0.0, 1.0]).unwrap();
        assert!(a.extend(&b).is_err());
    }
}
