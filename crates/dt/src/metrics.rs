//! Fidelity metrics between a tree and a labelled dataset (or between two
//! prediction sequences) — the accuracy/RMSE axes of the paper's Figures 27
//! and 28.

use crate::dataset::{Dataset, Targets};
use crate::tree::DecisionTree;

/// Fraction of samples whose predicted class matches the label.
pub fn accuracy(tree: &DecisionTree, ds: &Dataset) -> f64 {
    let Targets::Class { labels, .. } = &ds.y else {
        panic!("accuracy requires a classification dataset");
    };
    if ds.is_empty() {
        return 0.0;
    }
    let correct =
        ds.x.iter()
            .zip(labels.iter())
            .filter(|(x, &y)| tree.predict_class(x) == y)
            .count();
    correct as f64 / ds.len() as f64
}

/// Root-mean-square error of tree predictions against regression targets.
pub fn rmse(tree: &DecisionTree, ds: &Dataset) -> f64 {
    let Targets::Value(values) = &ds.y else {
        panic!("rmse requires a regression dataset");
    };
    rmse_slices(
        &ds.x
            .iter()
            .map(|x| tree.predict_value(x))
            .collect::<Vec<_>>(),
        values,
    )
}

/// RMSE between two prediction sequences.
pub fn rmse_slices(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse_slices: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let mse: f64 = pred
        .iter()
        .zip(truth.iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    mse.sqrt()
}

/// Agreement rate between two class sequences (mimicry accuracy between a
/// student tree and its teacher DNN).
pub fn agreement(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "agreement: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b.iter()).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

/// Confusion matrix `m[truth][pred]` for `n_classes` classes.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len());
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred.iter()) {
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fit, Criterion, TreeConfig};

    #[test]
    fn accuracy_perfect_and_partial() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 1, 1];
        let ds = Dataset::classification(x, y, 2).unwrap();
        let tree = fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(accuracy(&tree, &ds), 1.0);
        // Evaluate on shifted labels: half should now mismatch.
        let ds2 = Dataset::classification(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1, 1],
            2,
        )
        .unwrap();
        assert_eq!(accuracy(&tree, &ds2), 0.5);
    }

    #[test]
    fn rmse_zero_for_perfect_fit() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..8).map(|i| if i < 4 { 2.0 } else { 6.0 }).collect();
        let ds = Dataset::regression(x, y).unwrap();
        let cfg = TreeConfig {
            criterion: Criterion::Mse,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        assert!(rmse(&tree, &ds) < 1e-12);
    }

    #[test]
    fn rmse_slices_known_value() {
        assert!((rmse_slices(&[0.0, 0.0], &[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse_slices(&[], &[]), 0.0);
    }

    #[test]
    fn agreement_counts() {
        assert_eq!(agreement(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(agreement(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m[0][0], 2);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    #[should_panic(expected = "classification dataset")]
    fn accuracy_on_regression_panics() {
        let ds = Dataset::regression(vec![vec![0.0]], vec![1.0]).unwrap();
        let cfg = TreeConfig {
            criterion: Criterion::Mse,
            ..Default::default()
        };
        let tree = fit(&ds, &cfg).unwrap();
        let _ = accuracy(&tree, &ds);
    }
}
