//! Cost-complexity pruning (CCP, Breiman et al. 1984) — the pruning method
//! Metis adopts in conversion Step 3 — plus a naive depth-truncation
//! baseline used by the ablation benchmarks.
//!
//! CCP repeatedly collapses the internal node with the smallest
//! "weakest-link" value `g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)`,
//! where `R` is resubstitution error (weighted misclassification for
//! classifiers, SSE for regressors).

use crate::tree::{DecisionTree, Node};

/// One step of the pruning sequence: collapsing at `alpha` leaves
/// `n_leaves` leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStep {
    pub alpha: f64,
    pub n_leaves: usize,
}

/// Subtree summary: (error sum over leaves, number of leaves).
fn subtree_stats(nodes: &[Node], idx: usize) -> (f64, usize) {
    match &nodes[idx].split {
        None => (nodes[idx].stats.leaf_error(), 1),
        Some(s) => {
            let (el, ll) = subtree_stats(nodes, s.left);
            let (er, lr) = subtree_stats(nodes, s.right);
            (el + er, ll + lr)
        }
    }
}

/// Find the internal node with the smallest weakest-link value.
/// Returns `(node index, g value)` or `None` if the tree is a single leaf.
fn weakest_link(nodes: &[Node]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    // Walk every reachable internal node from the root.
    let mut stack = vec![0usize];
    while let Some(idx) = stack.pop() {
        if let Some(s) = &nodes[idx].split {
            stack.push(s.left);
            stack.push(s.right);
            let (err_subtree, leaves) = subtree_stats(nodes, idx);
            let err_leaf = nodes[idx].stats.leaf_error();
            let g = (err_leaf - err_subtree) / (leaves.saturating_sub(1)).max(1) as f64;
            // Prefer strictly smaller g; on ties prefer the *deeper* node is
            // not tracked, instead prefer larger index for determinism.
            match best {
                None => best = Some((idx, g)),
                Some((bi, bg)) => {
                    if g < bg - 1e-15 || (g <= bg + 1e-15 && idx > bi) {
                        best = Some((idx, g));
                    }
                }
            }
        }
    }
    best
}

fn count_leaves(nodes: &[Node]) -> usize {
    let mut n = 0;
    let mut stack = vec![0usize];
    while let Some(idx) = stack.pop() {
        match &nodes[idx].split {
            None => n += 1,
            Some(s) => {
                stack.push(s.left);
                stack.push(s.right);
            }
        }
    }
    n
}

/// Prune the tree with CCP until it has at most `max_leaves` leaves.
pub fn prune_to_leaves(tree: &DecisionTree, max_leaves: usize) -> DecisionTree {
    let max_leaves = max_leaves.max(1);
    let mut work = tree.compact();
    while count_leaves(&work.nodes) > max_leaves {
        let Some((idx, _)) = weakest_link(&work.nodes) else {
            break;
        };
        work.nodes[idx].split = None;
    }
    work.compact()
}

/// Prune every subtree whose weakest-link value is `<= alpha`.
pub fn prune_alpha(tree: &DecisionTree, alpha: f64) -> DecisionTree {
    let mut work = tree.compact();
    loop {
        match weakest_link(&work.nodes) {
            Some((idx, g)) if g <= alpha => work.nodes[idx].split = None,
            _ => break,
        }
    }
    work.compact()
}

/// The full weakest-link sequence down to the root-only tree.
///
/// The returned alphas are non-decreasing (a classic CCP invariant, checked
/// by the property tests).
pub fn alpha_sequence(tree: &DecisionTree) -> Vec<PruneStep> {
    let mut work = tree.compact();
    let mut steps = Vec::new();
    while let Some((idx, g)) = weakest_link(&work.nodes) {
        work.nodes[idx].split = None;
        steps.push(PruneStep {
            alpha: g,
            n_leaves: count_leaves(&work.nodes),
        });
    }
    steps
}

/// Ablation baseline: truncate all splits below `max_depth` (root = 0),
/// replacing them with leaves. Unlike CCP this ignores error contributions.
pub fn truncate_depth(tree: &DecisionTree, max_depth: usize) -> DecisionTree {
    let mut work = tree.compact();
    fn rec(nodes: &mut Vec<Node>, idx: usize, depth: usize, max_depth: usize) {
        if depth >= max_depth {
            nodes[idx].split = None;
            return;
        }
        if let Some(s) = nodes[idx].split.clone() {
            rec(nodes, s.left, depth + 1, max_depth);
            rec(nodes, s.right, depth + 1, max_depth);
        }
    }
    rec(&mut work.nodes, 0, 0, max_depth);
    work.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{fit, TreeConfig};
    use crate::dataset::Dataset;
    use crate::metrics;

    /// Alternating-block dataset: 16 blocks of 4 samples.
    fn blocks() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            x.push(vec![i as f64]);
            y.push((i / 4) % 2);
        }
        Dataset::classification(x, y, 2).unwrap()
    }

    /// A noisy dataset where a large tree overfits: strong signal on f0 with
    /// a few label flips.
    fn noisy() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![i as f64, (i * 37 % 17) as f64]);
            let mut label = usize::from(i >= 50);
            if i % 23 == 0 {
                label = 1 - label; // flip ~4% of labels
            }
            y.push(label);
        }
        Dataset::classification(x, y, 2).unwrap()
    }

    #[test]
    fn prune_to_leaves_reduces_and_respects_bound() {
        let ds = blocks();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        assert_eq!(full.n_leaves(), 16);
        for target in [1, 2, 4, 8, 16, 100] {
            let pruned = prune_to_leaves(&full, target);
            assert!(pruned.n_leaves() <= target.max(1));
            assert!(pruned.n_leaves() >= 1);
        }
    }

    #[test]
    fn prune_keeps_strongest_structure() {
        let ds = noisy();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        let pruned = prune_to_leaves(&full, 2);
        // With 2 leaves the tree must keep the dominant i>=50 split.
        assert_eq!(pruned.n_leaves(), 2);
        let acc = metrics::accuracy(&pruned, &ds);
        assert!(acc > 0.9, "pruned accuracy {acc}");
        let split = pruned.node(0).split.as_ref().unwrap();
        assert_eq!(split.feature, 0);
        assert!(
            (split.threshold - 50.0).abs() < 3.0,
            "threshold {}",
            split.threshold
        );
    }

    #[test]
    fn alpha_sequence_nondecreasing() {
        let ds = noisy();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        let seq = alpha_sequence(&full);
        assert!(!seq.is_empty());
        for pair in seq.windows(2) {
            assert!(
                pair[1].alpha >= pair[0].alpha - 1e-9,
                "alphas must be non-decreasing: {:?}",
                pair
            );
            assert!(pair[1].n_leaves < pair[0].n_leaves + 1);
        }
        assert_eq!(seq.last().unwrap().n_leaves, 1);
    }

    #[test]
    fn prune_alpha_zero_removes_only_free_splits() {
        let ds = blocks();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        // Every split in the perfect tree reduces error, so alpha<0 keeps all.
        let pruned = prune_alpha(&full, -1.0);
        assert_eq!(pruned.n_leaves(), full.n_leaves());
        // A huge alpha collapses to a stump.
        let stump = prune_alpha(&full, 1e18);
        assert_eq!(stump.n_leaves(), 1);
    }

    #[test]
    fn truncate_depth_caps_depth() {
        let ds = blocks();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        for d in [0, 1, 2, 3] {
            let t = truncate_depth(&full, d);
            assert!(t.depth() <= d, "depth {} > {d}", t.depth());
        }
    }

    #[test]
    fn ccp_beats_truncation_at_same_leaf_budget() {
        // The paper argues CCP yields smaller trees at similar error [54].
        // Here: at an equal leaf budget, CCP accuracy >= truncation accuracy.
        let ds = noisy();
        let full = fit(&ds, &TreeConfig::with_max_leaves(64)).unwrap();
        let ccp = prune_to_leaves(&full, 4);
        let mut trunc = truncate_depth(&full, 2); // at most 4 leaves
        while trunc.n_leaves() > ccp.n_leaves() {
            trunc = prune_to_leaves(&trunc, ccp.n_leaves());
        }
        let acc_ccp = metrics::accuracy(&ccp, &ds);
        let acc_trunc = metrics::accuracy(&trunc, &ds);
        assert!(
            acc_ccp >= acc_trunc - 1e-9,
            "ccp {acc_ccp} should be >= truncation {acc_trunc}"
        );
    }

    #[test]
    fn pruning_regression_tree() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| if i < 20 { 1.0 } else { 5.0 } + if i % 7 == 0 { 0.2 } else { 0.0 })
            .collect();
        let ds = Dataset::regression(x, y).unwrap();
        let cfg = TreeConfig {
            criterion: crate::builder::Criterion::Mse,
            max_leaf_nodes: 32,
            ..Default::default()
        };
        let full = fit(&ds, &cfg).unwrap();
        let pruned = prune_to_leaves(&full, 2);
        assert_eq!(pruned.n_leaves(), 2);
        assert!((pruned.predict_value(&[0.0]) - 1.0).abs() < 0.3);
        assert!((pruned.predict_value(&[39.0]) - 5.0).abs() < 0.3);
    }
}
