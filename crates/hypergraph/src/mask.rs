//! Critical-connection search (§4.2, Figure 6 / Eqs. 4–9).
//!
//! We optimize a fractional incidence mask `W ∈ [0,1]^{|E|×|V|}` so that
//!
//! ```text
//! min ℓ(W) = D(Y_W, Y_I) + λ₁·‖W‖ + λ₂·H(W)      s.t. 0 ≤ W_ev ≤ I_ev
//! ```
//!
//! * `D` — output similarity when features are damped by the mask
//!   (KL divergence for discrete outputs, MSE for continuous, Eq. 6),
//! * `‖W‖` — conciseness: Σ|W_ev| (Eq. 7),
//! * `H(W)` — determinism: binary entropy pushing each mask to 0 or 1
//!   (Eq. 8).
//!
//! The constraint is enforced with the gating of Eq. 9:
//! `W = I ∘ sigmoid(W′)` — we only parameterize logits for *existing*
//! connections, so `W_ev = 0` wherever `I_ev = 0` by construction.
//!
//! A *high* surviving mask value marks a connection whose damping would
//! change the system output a lot — a **critical** connection.

use metis_nn::par::parallel_map_indexed;
use metis_nn::tape::{sum, Tape, Var};
use metis_nn::{Adam, Optimizer, ParamGrad};

/// What the system's masked output represents, selecting the `D` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Probability vectors (possibly several distributions concatenated):
    /// compared with KL divergence `Σ Y_W ln(Y_W / Y_I)`.
    Discrete,
    /// Real-valued outputs: compared with squared error `Σ (Y_W − Y_I)²`.
    Continuous,
}

/// A system whose output can be recomputed under a connection mask.
///
/// `mask[i]` aligns with the `i`-th entry of
/// [`crate::structure::Hypergraph::connections`] of the formulated system.
/// Implementations damp the corresponding input features and rebuild their
/// output *on the tape* so gradients flow back to the mask.
pub trait MaskedSystem {
    /// Number of maskable connections.
    fn n_connections(&self) -> usize;

    /// Reference output `Y_I` (all-ones mask).
    fn reference_output(&self) -> Vec<f64>;

    /// Output under the given mask, recorded on `tape`.
    fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>>;

    /// Which `D` to use.
    fn output_kind(&self) -> OutputKind;

    /// Value of the similarity term `D(Y_W, Y_I)` (Eq. 6) and its gradient
    /// with respect to the mask values, against a precomputed reference.
    ///
    /// The default records one scalar tape over the full
    /// [`MaskedSystem::masked_output`] — correct for monolithic systems
    /// whose output couples every connection (RouteNet message passing).
    /// Row-separable systems (one independent output block per
    /// observation, e.g. [`crate::nnmask::MaskedMlp`]) override this with
    /// a batched, thread-sharded evaluation whose result is **bit-identical
    /// for any thread count** (per-row gradients merged in row order).
    fn d_value_grad(&self, mask: &[f64], reference: &[f64], _threads: usize) -> (f64, Vec<f64>) {
        let tape = Tape::new();
        let mask_vars = tape.vars(mask);
        let output = self.masked_output(&tape, &mask_vars);
        assert_eq!(
            output.len(),
            reference.len(),
            "masked_output length must match reference_output"
        );
        let d = d_term(&tape, &output, reference, self.output_kind());
        let grads = d.grad();
        (d.value(), mask_vars.iter().map(|v| grads.wrt(*v)).collect())
    }
}

/// Eq.-6 similarity between a masked output on a tape and the reference.
pub(crate) fn d_term<'t>(
    tape: &'t Tape,
    output: &[Var<'t>],
    reference: &[f64],
    kind: OutputKind,
) -> Var<'t> {
    let terms: Vec<Var<'t>> = match kind {
        OutputKind::Discrete => output
            .iter()
            .zip(reference.iter())
            .map(|(yw, &yi)| {
                // y_w ln(y_w / y_i); reference floored for safety.
                let ratio = *yw / yi.max(1e-12);
                *yw * ratio.ln()
            })
            .collect(),
        OutputKind::Continuous => output
            .iter()
            .zip(reference.iter())
            .map(|(yw, &yi)| (*yw - yi).square())
            .collect(),
    };
    sum(tape, &terms)
}

/// Hyperparameters (paper Table 4: λ₁ = 0.25, λ₂ = 1 for RouteNet*).
#[derive(Debug, Clone)]
pub struct MaskConfig {
    pub lambda1: f64,
    pub lambda2: f64,
    pub learning_rate: f64,
    pub steps: usize,
    /// Initial logit for all connections. The default 0.0 (mask 0.5) sits
    /// at the saddle of the entropy term, so the similarity and
    /// conciseness terms pick each connection's direction before the
    /// determinism term locks it toward 0 or 1. Starting near a pole
    /// instead lets H(W) freeze every mask at that pole — the degenerate
    /// interpretation the paper's Eq. 8 discussion warns about.
    pub init_logit: f64,
    /// Fraction of steps during which λ₂ is held at 0. Early in the search
    /// the D residual is large and briefly drags even unimportant masks
    /// upward; Adam's scale-invariant steps mean they climb as fast as the
    /// truly critical ones. Holding the determinism term off until the
    /// D-vs-λ₁ equilibrium settles prevents that transient from being
    /// frozen at the W=1 pole.
    pub entropy_warmup: f64,
    /// Worker threads for the per-iteration gradient evaluation
    /// (0 = all cores). Results are **identical for any value**: work is
    /// sharded by block/connection index and merged back in index order.
    pub threads: usize,
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig {
            lambda1: 0.25,
            lambda2: 1.0,
            learning_rate: 0.05,
            steps: 300,
            init_logit: 0.0,
            entropy_warmup: 0.5,
            threads: 0,
        }
    }
}

/// Result of the mask search.
#[derive(Debug, Clone)]
pub struct MaskResult {
    /// Final mask value per connection (same order as `connections()`).
    pub mask: Vec<f64>,
    /// Total loss per optimization step.
    pub loss_history: Vec<f64>,
    /// Final loss decomposition.
    pub final_d: f64,
    pub final_l1: f64,
    pub final_entropy: f64,
}

impl MaskResult {
    /// Connection indices sorted by descending mask value.
    pub fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.mask.len()).collect();
        idx.sort_by(|&a, &b| self.mask[b].partial_cmp(&self.mask[a]).unwrap());
        idx
    }

    /// `‖W‖ / ‖I‖`: mean mask value (the Fig.-30 y-axis).
    pub fn scale(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().sum::<f64>() / self.mask.len() as f64
    }

    /// Mean binary entropy of the mask (the other Fig.-30 y-axis).
    pub fn mean_entropy(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        metis_nn::loss::binary_entropy_sum(&self.mask) / self.mask.len() as f64
    }

    /// Fraction of masks in the "undetermined" middle band (Fig. 9a).
    pub fn median_fraction(&self, lo: f64, hi: f64) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&m| m > lo && m < hi).count() as f64 / self.mask.len() as f64
    }
}

/// Binary entropy of one mask value with the tape's log clamping.
fn binary_entropy_val(w: f64) -> f64 {
    -(w * w.max(1e-300).ln() + (1.0 - w) * (1.0 - w).max(1e-300).ln())
}

/// `dH/dw` with the same clamping: `ln(1-w) − ln(w)`.
fn binary_entropy_grad(w: f64) -> f64 {
    (1.0 - w).max(1e-300).ln() - w.max(1e-300).ln()
}

/// Run the critical-connection search (Adam on the gating logits).
///
/// Each iteration evaluates the `D` term's mask gradient through
/// [`MaskedSystem::d_value_grad`] (batched/thread-sharded where the
/// system supports it), adds the closed-form ‖W‖ and `H(W)` gradients,
/// chains through the Eq.-9 sigmoid gate per connection, and takes one
/// Adam step. Per-connection work is sharded across `cfg.threads` workers
/// and merged back by connection index, so the result is identical for
/// any thread count. The pre-refactor single-tape optimizer is retained
/// as [`reference::optimize_mask_single_tape`] and pinned by parity tests.
pub fn optimize_mask<S: MaskedSystem>(system: &S, cfg: &MaskConfig) -> MaskResult {
    let n = system.n_connections();
    let reference = system.reference_output();
    let mut logits = vec![cfg.init_logit; n];
    let mut opt = Adam::new(cfg.learning_rate);
    let mut loss_history = Vec::with_capacity(cfg.steps);
    let (mut final_d, mut final_l1, mut final_entropy) = (0.0, 0.0, 0.0);

    for step in 0..cfg.steps {
        let warmup_steps = cfg.entropy_warmup * cfg.steps as f64;
        let l2_now = if (step as f64) < warmup_steps {
            0.0
        } else {
            cfg.lambda2
        };
        // Eq. 9 gate: W = sigmoid(W′), elementwise per connection.
        let mask: Vec<f64> = logits.iter().map(|&l| 1.0 / (1.0 + (-l).exp())).collect();

        let (d_val, d_grad) = system.d_value_grad(&mask, &reference, cfg.threads);
        assert_eq!(d_grad.len(), n, "d_value_grad: gradient length mismatch");

        // ‖W‖ (Eq. 7) and H(W) (Eq. 8) plus the per-connection chain rule
        // through the sigmoid gate: independent across connections, so the
        // steps shard across threads and merge by connection index.
        let per_conn = parallel_map_indexed(n, threads_for(cfg.threads, n), |i| {
            let w = mask[i];
            let dw_dlogit = w * (1.0 - w);
            let dl_dw = d_grad[i] + cfg.lambda1 + l2_now * binary_entropy_grad(w);
            (w, binary_entropy_val(w), dl_dw * dw_dlogit)
        });
        let l1_val = per_conn.iter().fold(0.0, |acc, &(w, _, _)| acc + w);
        let ent_val = per_conn.iter().fold(0.0, |acc, &(_, h, _)| acc + h);
        let mut grad_vec: Vec<f64> = per_conn.into_iter().map(|(_, _, g)| g).collect();

        loss_history.push(d_val + l1_val * cfg.lambda1 + ent_val * l2_now);
        final_d = d_val;
        final_l1 = l1_val;
        final_entropy = ent_val;

        let mut params = [ParamGrad {
            param: &mut logits,
            grad: &mut grad_vec,
        }];
        opt.step(&mut params);
    }

    let mask = logits.iter().map(|&l| 1.0 / (1.0 + (-l).exp())).collect();
    MaskResult {
        mask,
        loss_history,
        final_d,
        final_l1,
        final_entropy,
    }
}

/// Shard the per-connection loop only when there is enough work for the
/// fork/join to pay off; below the threshold the sequential path produces
/// the identical index-ordered result.
fn threads_for(requested: usize, n: usize) -> usize {
    if n < 512 {
        1
    } else {
        requested
    }
}

/// The pre-refactor optimizer, kept verbatim as the behavioural oracle
/// for the batched/parallel implementation: one scalar tape per step
/// carrying the gate, the D term, and both penalties. Gradients agree
/// with the new path up to floating-point association (the λ-terms are
/// now closed-form), so parity is asserted on the *ranked* masks.
#[doc(hidden)]
pub mod reference {
    use super::*;

    pub fn optimize_mask_single_tape<S: MaskedSystem>(system: &S, cfg: &MaskConfig) -> MaskResult {
        let n = system.n_connections();
        let reference = system.reference_output();
        let mut logits = vec![cfg.init_logit; n];
        let mut opt = Adam::new(cfg.learning_rate);
        let mut loss_history = Vec::with_capacity(cfg.steps);
        let (mut final_d, mut final_l1, mut final_entropy) = (0.0, 0.0, 0.0);

        for step in 0..cfg.steps {
            let warmup_steps = cfg.entropy_warmup * cfg.steps as f64;
            let l2_now = if (step as f64) < warmup_steps {
                0.0
            } else {
                cfg.lambda2
            };
            let tape = Tape::new();
            let logit_vars = tape.vars(&logits);
            let mask: Vec<Var<'_>> = logit_vars.iter().map(|v| v.sigmoid()).collect();

            let output = system.masked_output(&tape, &mask);
            assert_eq!(
                output.len(),
                reference.len(),
                "masked_output length must match reference_output"
            );
            let d = d_term(&tape, &output, &reference, system.output_kind());

            // ‖W‖ — Eq. 7 (masks are already in (0,1): |W| = W).
            let l1 = sum(&tape, &mask);

            // H(W) — Eq. 8.
            let ent_terms: Vec<Var<'_>> = mask.iter().map(|w| w.binary_entropy()).collect();
            let entropy = sum(&tape, &ent_terms);

            let loss = d + l1 * cfg.lambda1 + entropy * l2_now;
            loss_history.push(loss.value());
            final_d = d.value();
            final_l1 = l1.value();
            final_entropy = entropy.value();

            let grads = loss.grad();
            let mut grad_vec: Vec<f64> = logit_vars.iter().map(|v| grads.wrt(*v)).collect();
            let mut params = [ParamGrad {
                param: &mut logits,
                grad: &mut grad_vec,
            }];
            opt.step(&mut params);
        }

        let mask = logits.iter().map(|&l| 1.0 / (1.0 + (-l).exp())).collect();
        MaskResult {
            mask,
            loss_history,
            final_d,
            final_l1,
            final_entropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear toy system: output_j = Σ_c mask_c · a_jc · x_c, continuous.
    /// Connections with large |a·x| contributions are "critical".
    struct LinearSystem {
        /// contributions[j][c]
        contributions: Vec<Vec<f64>>,
    }

    impl MaskedSystem for LinearSystem {
        fn n_connections(&self) -> usize {
            self.contributions[0].len()
        }

        fn reference_output(&self) -> Vec<f64> {
            self.contributions
                .iter()
                .map(|row| row.iter().sum())
                .collect()
        }

        fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>> {
            self.contributions
                .iter()
                .map(|row| {
                    let terms: Vec<Var<'t>> =
                        row.iter().zip(mask.iter()).map(|(&a, m)| *m * a).collect();
                    sum(tape, &terms)
                })
                .collect()
        }

        fn output_kind(&self) -> OutputKind {
            OutputKind::Continuous
        }
    }

    fn toy() -> LinearSystem {
        // Connection 0 dominates the output; connections 1, 2 are noise.
        LinearSystem {
            contributions: vec![vec![10.0, 0.05, 0.02]],
        }
    }

    #[test]
    fn critical_connection_survives_unimportant_pruned() {
        let result = optimize_mask(&toy(), &MaskConfig::default());
        assert!(
            result.mask[0] > 0.9,
            "critical connection should stay on: {:?}",
            result.mask
        );
        assert!(
            result.mask[1] < 0.1 && result.mask[2] < 0.1,
            "noise connections should be suppressed: {:?}",
            result.mask
        );
    }

    /// The refactored per-connection optimizer must agree with the
    /// retained single-tape oracle: same ranking, near-identical masks.
    #[test]
    fn new_optimizer_matches_single_tape_reference() {
        let sys = LinearSystem {
            contributions: vec![vec![8.0, 3.0, 1.0, 0.3, 0.05]],
        };
        let cfg = MaskConfig::default();
        let new = optimize_mask(&sys, &cfg);
        let old = reference::optimize_mask_single_tape(&sys, &cfg);
        assert_eq!(new.ranked(), old.ranked());
        for (a, b) in new.mask.iter().zip(old.mask.iter()) {
            assert!((a - b).abs() < 1e-6, "mask drift: {a} vs {b}");
        }
        assert!((new.final_d - old.final_d).abs() < 1e-6);
        assert!((new.final_l1 - old.final_l1).abs() < 1e-9);
        assert!((new.final_entropy - old.final_entropy).abs() < 1e-9);
    }

    /// Thread count must not change a single bit of the result.
    #[test]
    fn optimizer_thread_count_invariant() {
        let sys = LinearSystem {
            contributions: vec![(0..600).map(|i| (i as f64 * 0.37).sin()).collect()],
        };
        let run = |threads: usize| {
            optimize_mask(
                &sys,
                &MaskConfig {
                    steps: 25,
                    threads,
                    ..Default::default()
                },
            )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn masks_respect_unit_interval() {
        let result = optimize_mask(&toy(), &MaskConfig::default());
        assert!(result.mask.iter().all(|&m| m > 0.0 && m < 1.0));
    }

    #[test]
    fn loss_decreases() {
        let result = optimize_mask(
            &toy(),
            &MaskConfig {
                steps: 200,
                ..Default::default()
            },
        );
        let first = result.loss_history[0];
        let last = *result.loss_history.last().unwrap();
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn lambda1_shrinks_masks() {
        // Figure 29(a): increasing λ₁ penalizes ‖W‖ and shifts the mask CDF
        // downward.
        let lo = optimize_mask(
            &toy(),
            &MaskConfig {
                lambda1: 0.05,
                ..Default::default()
            },
        );
        let hi = optimize_mask(
            &toy(),
            &MaskConfig {
                lambda1: 2.0,
                ..Default::default()
            },
        );
        assert!(
            hi.scale() < lo.scale(),
            "higher lambda1 must shrink scale: {} vs {}",
            hi.scale(),
            lo.scale()
        );
    }

    #[test]
    fn lambda2_reduces_median_masks() {
        // Figure 29(b): higher λ₂ pushes masks toward {0,1}.
        let sys = LinearSystem {
            contributions: vec![vec![2.0, 1.5, 1.0, 0.75, 0.5, 0.25, 0.1, 0.05]],
        };
        let lo = optimize_mask(
            &sys,
            &MaskConfig {
                lambda2: 0.0,
                steps: 400,
                ..Default::default()
            },
        );
        let hi = optimize_mask(
            &sys,
            &MaskConfig {
                lambda2: 3.0,
                steps: 400,
                ..Default::default()
            },
        );
        assert!(
            hi.mean_entropy() <= lo.mean_entropy() + 1e-9,
            "higher lambda2 must reduce entropy: {} vs {}",
            hi.mean_entropy(),
            lo.mean_entropy()
        );
    }

    #[test]
    fn discrete_kl_system() {
        /// Two-way distribution steered by one connection; masking it moves
        /// probability mass, which KL penalizes.
        struct DistSystem;
        impl MaskedSystem for DistSystem {
            fn n_connections(&self) -> usize {
                2
            }
            fn reference_output(&self) -> Vec<f64> {
                vec![0.8, 0.2]
            }
            fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>> {
                // p0 = (0.8·m0 + eps) / norm; p1 = (0.2·m1 + eps) / norm
                let a = mask[0] * 0.8 + 1e-6;
                let b = mask[1] * 0.2 + 1e-6;
                let norm = a + b;
                let _ = tape;
                vec![a / norm, b / norm]
            }
            fn output_kind(&self) -> OutputKind {
                OutputKind::Discrete
            }
        }
        let result = optimize_mask(
            &DistSystem,
            &MaskConfig {
                steps: 400,
                ..Default::default()
            },
        );
        // The dominant-mass connection must rank first.
        assert_eq!(result.ranked()[0], 0);
        assert!(result.final_d.is_finite());
    }

    #[test]
    fn ranked_orders_by_mask() {
        let r = MaskResult {
            mask: vec![0.2, 0.9, 0.5],
            loss_history: vec![],
            final_d: 0.0,
            final_l1: 0.0,
            final_entropy: 0.0,
        };
        assert_eq!(r.ranked(), vec![1, 2, 0]);
        assert!((r.scale() - (0.2 + 0.9 + 0.5) / 3.0).abs() < 1e-12);
        assert!((r.median_fraction(0.3, 0.7) - 1.0 / 3.0).abs() < 1e-12);
    }
}
