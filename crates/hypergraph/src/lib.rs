//! # metis-hypergraph — hypergraph interpretation substrate
//!
//! §4 of the Metis paper: global DL-based networking systems (SDN routing,
//! NFV placement, ultra-dense cellular, cluster scheduling) are formulated
//! as hypergraphs, and interpretability is obtained by searching for the
//! vertex–hyperedge connections that are *critical* to the system output.
//!
//! * [`structure::Hypergraph`] — vertices, hyperedges, features, and the
//!   incidence matrix of Eq. 3 (the Figure-5 example is a unit test),
//! * [`mask`] — the differentiable critical-connection search of Figure 6:
//!   `min D(Y_W, Y_I) + λ₁‖W‖ + λ₂H(W)` with the sigmoid gating of Eq. 9,
//!   optimized with Adam over the `metis-nn` autodiff tape; per-iteration
//!   gradients are sharded across threads and merged by connection index,
//!   so results are identical for any thread count,
//! * [`nnmask::MaskedMlp`] — the local-system instance: a feature mask on
//!   an MLP policy over a batch of observations, with a batched
//!   block-parallel gradient path pinned bit-for-bit to a per-obs oracle.
//!
//! Domain formulations (which system maps to which hypergraph) live in
//! `metis-core::formulate`; this crate is domain-agnostic.

pub mod mask;
pub mod nnmask;
pub mod structure;

pub use mask::{optimize_mask, MaskConfig, MaskResult, MaskedSystem, OutputKind};
pub use nnmask::MaskedMlp;
pub use structure::{EdgeId, Hypergraph, HypergraphError, VertexId};
