//! §4 critical-connection search over **local** systems: a feature mask on
//! an MLP policy, evaluated over a batch of recorded observations.
//!
//! The paper's hypergraph formulation of a local system (§4.1) makes the
//! observation features the vertices and the decision the hyperedge, so a
//! connection is simply one input feature feeding the network; damping
//! connection `f` multiplies feature column `f` by the mask before the
//! forward pass. `D` compares the masked decision distribution (or raw
//! outputs) against the unmasked one, summed over the observation batch.
//!
//! Because rows (observations) are independent given the mask, the D term
//! is **row-separable** — the property the batched gradient path exploits:
//! observations are chunked into fixed-size blocks, each block replays the
//! network on one [`BatchTape`] (a batched forward/backward: every tape
//! node carries the whole block's rows), blocks fan out across threads,
//! and per-row gradients merge back in global row order. The merge order
//! depends on neither the block size nor the thread count, so the search
//! is bit-identical to the per-obs oracle ([`MaskedMlp::d_value_grad_per_obs`],
//! one scalar tape per observation) for any configuration — the §4
//! mirror of the conversion engine's batched-labelling parity contract.

use crate::mask::{MaskedSystem, OutputKind};
use metis_nn::par::parallel_map_indexed;
use metis_nn::tape::{sum, sum_batch, BVar, BatchTape, Tape, Var};
use metis_nn::{softmax_rows, Matrix, Mlp};

/// Rows per [`BatchTape`] block. A knob, not a contract: results are
/// bit-identical for any value (see the module docs).
const DEFAULT_BLOCK_ROWS: usize = 64;

/// An MLP policy under a per-input-feature mask, evaluated over a batch
/// of observations. Implements [`MaskedSystem`], overriding the gradient
/// path with the batched block evaluation.
pub struct MaskedMlp<'a> {
    net: &'a Mlp,
    obs: Vec<Vec<f64>>,
    kind: OutputKind,
    /// Unmasked per-row reference outputs (decision distributions for
    /// [`OutputKind::Discrete`], raw outputs otherwise).
    reference: Vec<Vec<f64>>,
    block_rows: usize,
}

impl<'a> MaskedMlp<'a> {
    /// Formulate the masked system for `net` over recorded observations.
    /// `Discrete` applies a softmax head (policy networks, KL similarity);
    /// `Continuous` compares raw outputs (value nets, MSE).
    pub fn new(net: &'a Mlp, obs: Vec<Vec<f64>>, kind: OutputKind) -> Self {
        assert!(!obs.is_empty(), "MaskedMlp: empty observation batch");
        assert!(
            obs.iter().all(|o| o.len() == net.in_dim()),
            "MaskedMlp: observation width must match the network input"
        );
        let out = net.forward_inference(&Matrix::from_rows_vec(&obs));
        let reference = match kind {
            OutputKind::Discrete => {
                let p = softmax_rows(&out);
                (0..p.rows()).map(|r| p.row(r).to_vec()).collect()
            }
            OutputKind::Continuous => (0..out.rows()).map(|r| out.row(r).to_vec()).collect(),
        };
        MaskedMlp {
            net,
            obs,
            kind,
            reference,
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }

    /// Override the rows-per-block batching knob (results are identical
    /// for any value; this only tunes throughput).
    pub fn block_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "MaskedMlp: block_rows must be positive");
        self.block_rows = rows;
        self
    }

    /// Observations in the batch.
    pub fn n_rows(&self) -> usize {
        self.obs.len()
    }

    /// Masked network output of one observation on a scalar tape.
    ///
    /// This and [`Self::masked_block`] are deliberate op-for-op mirrors:
    /// each records the same node sequence (leaf mask gates, per-layer
    /// weighted sums, activations, optional softmax head), which is what
    /// makes the batched path bit-identical per row.
    fn masked_row<'t>(&self, tape: &'t Tape, mask: &[Var<'t>], row: usize) -> Vec<Var<'t>> {
        let x = &self.obs[row];
        let mut h: Vec<Var<'t>> = mask.iter().zip(x.iter()).map(|(m, &xi)| *m * xi).collect();
        for layer in self.net.layers() {
            let w = layer.weights();
            let b = layer.bias();
            h = (0..layer.out_dim())
                .map(|j| {
                    let mut acc = tape.var(b[j]);
                    for (k, hk) in h.iter().enumerate() {
                        acc = acc + *hk * w[(k, j)];
                    }
                    acc.activation(layer.activation())
                })
                .collect();
        }
        match self.kind {
            OutputKind::Continuous => h,
            OutputKind::Discrete => {
                // Numerically stable softmax: subtract the row max as a
                // tape constant before exponentiating. Softmax is
                // invariant under a uniform shift, so both the values and
                // the mask gradients are unchanged — but large logits no
                // longer overflow `exp` into inf/inf = NaN.
                let max = h
                    .iter()
                    .map(|v| v.value())
                    .fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<Var<'t>> = h.iter().map(|v| (*v - max).exp()).collect();
                let total = sum(tape, &exps);
                exps.into_iter().map(|e| e / total).collect()
            }
        }
    }

    /// Masked network output of rows `lo..hi` on a batch tape — the
    /// batched twin of [`Self::masked_row`].
    fn masked_block<'t>(&self, bt: &'t BatchTape, mask: &[BVar<'t>], lo: usize) -> Vec<BVar<'t>> {
        let rows = bt.batch();
        let column = |f: usize| -> Vec<f64> { (lo..lo + rows).map(|r| self.obs[r][f]).collect() };
        let mut h: Vec<BVar<'t>> = mask
            .iter()
            .enumerate()
            .map(|(f, m)| *m * bt.var(&column(f)))
            .collect();
        for layer in self.net.layers() {
            let w = layer.weights();
            let b = layer.bias();
            h = (0..layer.out_dim())
                .map(|j| {
                    let mut acc = bt.broadcast(b[j]);
                    for (k, hk) in h.iter().enumerate() {
                        acc = acc + *hk * w[(k, j)];
                    }
                    acc.activation(layer.activation())
                })
                .collect();
        }
        match self.kind {
            OutputKind::Continuous => h,
            OutputKind::Discrete => {
                // Stable softmax, batched twin of the per-row path: the
                // per-row logit max enters as a leaf (its adjoint is
                // discarded), so each row computes exactly the scalar
                // path's `(v - max).exp()`.
                let maxes: Vec<f64> = (0..rows)
                    .map(|r| {
                        h.iter()
                            .map(|v| v.value(r))
                            .fold(f64::NEG_INFINITY, f64::max)
                    })
                    .collect();
                let max_var = bt.var(&maxes);
                let exps: Vec<BVar<'t>> = h.iter().map(|v| (*v - max_var).exp()).collect();
                let total = sum_batch(bt, &exps);
                exps.into_iter().map(|e| e / total).collect()
            }
        }
    }

    /// Per-obs oracle for the D term: one scalar tape per observation,
    /// values and gradients accumulated in row order — the reference the
    /// batched path is pinned against, bit for bit.
    pub fn d_value_grad_per_obs(&self, mask: &[f64]) -> (f64, Vec<f64>) {
        let mut d_total = 0.0;
        let mut grad = vec![0.0; mask.len()];
        for row in 0..self.obs.len() {
            let tape = Tape::new();
            let mask_vars = tape.vars(mask);
            let output = self.masked_row(&tape, &mask_vars, row);
            let d = self.row_d_scalar(&tape, &output, row);
            d_total += d.value();
            let grads = d.grad();
            for (g, v) in grad.iter_mut().zip(mask_vars.iter()) {
                *g += grads.wrt(*v);
            }
        }
        (d_total, grad)
    }

    /// Eq.-6 D term of one row on a scalar tape. The reference enters as a
    /// tape var (mirroring the batch path's per-row leaf) so both record
    /// the identical division node.
    fn row_d_scalar<'t>(&self, tape: &'t Tape, output: &[Var<'t>], row: usize) -> Var<'t> {
        let reference = &self.reference[row];
        let terms: Vec<Var<'t>> = match self.kind {
            OutputKind::Discrete => output
                .iter()
                .zip(reference.iter())
                .map(|(yw, &yi)| {
                    let yr = tape.var(yi.max(1e-12));
                    let ratio = *yw / yr;
                    *yw * ratio.ln()
                })
                .collect(),
            OutputKind::Continuous => output
                .iter()
                .zip(reference.iter())
                .map(|(yw, &yi)| {
                    let yr = tape.var(yi);
                    (*yw - yr).square()
                })
                .collect(),
        };
        sum(tape, &terms)
    }

    /// Eq.-6 D term of a block on a batch tape (per-row values).
    fn block_d<'t>(&self, bt: &'t BatchTape, output: &[BVar<'t>], lo: usize) -> BVar<'t> {
        let rows = bt.batch();
        let ref_column = |c: usize, clamp: bool| -> Vec<f64> {
            (lo..lo + rows)
                .map(|r| {
                    let yi = self.reference[r][c];
                    if clamp {
                        yi.max(1e-12)
                    } else {
                        yi
                    }
                })
                .collect()
        };
        let terms: Vec<BVar<'t>> = match self.kind {
            OutputKind::Discrete => output
                .iter()
                .enumerate()
                .map(|(c, yw)| {
                    let yr = bt.var(&ref_column(c, true));
                    let ratio = *yw / yr;
                    *yw * ratio.ln()
                })
                .collect(),
            OutputKind::Continuous => output
                .iter()
                .enumerate()
                .map(|(c, yw)| {
                    let yr = bt.var(&ref_column(c, false));
                    (*yw - yr).square()
                })
                .collect(),
        };
        sum_batch(bt, &terms)
    }
}

impl MaskedSystem for MaskedMlp<'_> {
    fn n_connections(&self) -> usize {
        self.net.in_dim()
    }

    fn reference_output(&self) -> Vec<f64> {
        self.reference.iter().flatten().copied().collect()
    }

    /// Monolithic scalar-tape output (all rows on one tape, concatenated)
    /// — the path the retained single-tape reference optimizer exercises.
    fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>> {
        (0..self.obs.len())
            .flat_map(|row| self.masked_row(tape, mask, row))
            .collect()
    }

    fn output_kind(&self) -> OutputKind {
        self.kind
    }

    /// Batched, thread-sharded D gradient: observation blocks on
    /// [`BatchTape`]s fan out across threads; per-row gradients merge in
    /// global row order, so the result is bit-identical for any block
    /// size and thread count — and to [`Self::d_value_grad_per_obs`].
    fn d_value_grad(&self, mask: &[f64], _reference: &[f64], threads: usize) -> (f64, Vec<f64>) {
        let n_rows = self.obs.len();
        let n_blocks = n_rows.div_ceil(self.block_rows);
        let blocks = parallel_map_indexed(n_blocks, threads, |b| {
            let lo = b * self.block_rows;
            let rows = self.block_rows.min(n_rows - lo);
            let bt = BatchTape::new(rows);
            let mask_vars = bt.broadcasts(mask);
            let output = self.masked_block(&bt, &mask_vars, lo);
            let d = self.block_d(&bt, &output, lo);
            let grads = d.grad();
            let per_conn: Vec<Vec<f64>> =
                mask_vars.iter().map(|v| grads.wrt(*v).to_vec()).collect();
            (d.values(), per_conn)
        });

        let mut d_total = 0.0;
        let mut grad = vec![0.0; mask.len()];
        for (d_rows, per_conn) in blocks {
            for r in 0..d_rows.len() {
                d_total += d_rows[r];
                for (g, rows) in grad.iter_mut().zip(per_conn.iter()) {
                    *g += rows[r];
                }
            }
        }
        (d_total, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::{optimize_mask, MaskConfig};
    use metis_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rows: usize) -> (Mlp, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(77);
        let net = Mlp::new(&[6, 10, 4], Activation::Tanh, Activation::Linear, &mut rng);
        let obs: Vec<Vec<f64>> = (0..rows)
            .map(|r| (0..6).map(|c| ((r * 6 + c) as f64 * 0.13).sin()).collect())
            .collect();
        (net, obs)
    }

    /// The batched block gradient must be bit-identical to the per-obs
    /// oracle for any block size and thread count.
    #[test]
    fn batched_gradient_matches_per_obs_oracle_bitwise() {
        let (net, obs) = setup(23);
        let mask: Vec<f64> = (0..6).map(|i| 0.2 + 0.1 * i as f64).collect();
        for kind in [OutputKind::Discrete, OutputKind::Continuous] {
            let reference_sys = MaskedMlp::new(&net, obs.clone(), kind);
            let (d_oracle, g_oracle) = reference_sys.d_value_grad_per_obs(&mask);
            for block_rows in [1usize, 4, 16, 64] {
                for threads in [1usize, 3] {
                    let sys = MaskedMlp::new(&net, obs.clone(), kind).block_rows(block_rows);
                    let reference = sys.reference_output();
                    let (d, g) = sys.d_value_grad(&mask, &reference, threads);
                    assert_eq!(
                        d.to_bits(),
                        d_oracle.to_bits(),
                        "D diverges at block={block_rows} threads={threads} ({kind:?})"
                    );
                    for (a, b) in g.iter().zip(g_oracle.iter()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "gradient diverges at block={block_rows} threads={threads}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Full search: identical masks for threads = 1 vs N.
    #[test]
    fn mask_search_thread_invariant() {
        let (net, obs) = setup(40);
        let run = |threads: usize| {
            let sys = MaskedMlp::new(&net, obs.clone(), OutputKind::Discrete).block_rows(8);
            optimize_mask(
                &sys,
                &MaskConfig {
                    steps: 30,
                    threads,
                    ..Default::default()
                },
            )
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.ranked(), b.ranked());
        assert_eq!(a.loss_history, b.loss_history);
    }

    /// Policies with huge logits must not overflow the masked softmax
    /// (stable max-subtraction on the tape), and the batched path must
    /// still match the per-obs oracle bitwise.
    #[test]
    fn large_logits_stay_finite() {
        let w1 = Matrix::from_fn(3, 2, |r, c| if r == c { 500.0 } else { -400.0 });
        let l1 = metis_nn::Dense::from_weights(w1, vec![0.0; 2], Activation::Linear);
        let net = Mlp::from_layers(vec![l1]);
        let obs: Vec<Vec<f64>> = (0..8)
            .map(|r| {
                (0..3)
                    .map(|c| 1.0 + ((r * 3 + c) as f64 * 0.21).sin())
                    .collect()
            })
            .collect();
        let sys = MaskedMlp::new(&net, obs, OutputKind::Discrete).block_rows(4);
        let mask = vec![0.9; 3];
        let reference = sys.reference_output();
        let (d, g) = sys.d_value_grad(&mask, &reference, 2);
        assert!(d.is_finite(), "D overflowed: {d}");
        assert!(
            g.iter().all(|x| x.is_finite()),
            "gradient overflowed: {g:?}"
        );
        let (d_oracle, g_oracle) = sys.d_value_grad_per_obs(&mask);
        assert_eq!(d.to_bits(), d_oracle.to_bits());
        for (a, b) in g.iter().zip(g_oracle.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A feature the network ignores must be pruned; a dominant feature
    /// must survive.
    #[test]
    fn dominant_feature_survives_dead_feature_pruned() {
        // Hand-build a net that only reads feature 0 (strongly) and
        // feature 1 (weakly); features 2.. are dead.
        let w1 = Matrix::from_fn(4, 3, |r, c| match (r, c) {
            (0, 0) => 3.0,
            (1, 1) => 0.05,
            _ => 0.0,
        });
        let l1 = metis_nn::Dense::from_weights(w1, vec![0.0; 3], Activation::Tanh);
        let w2 = Matrix::from_fn(3, 2, |r, c| match (r, c) {
            (0, 0) => 4.0,
            (0, 1) => -4.0,
            (1, 0) => 0.1,
            _ => 0.0,
        });
        let l2 = metis_nn::Dense::from_weights(w2, vec![0.0; 2], Activation::Linear);
        let net = Mlp::from_layers(vec![l1, l2]);
        let obs: Vec<Vec<f64>> = (0..32)
            .map(|r| (0..4).map(|c| ((r * 4 + c) as f64 * 0.29).cos()).collect())
            .collect();
        let sys = MaskedMlp::new(&net, obs, OutputKind::Discrete);
        let result = optimize_mask(&sys, &MaskConfig::default());
        assert!(
            result.mask[0] > 0.8,
            "dominant feature pruned: {:?}",
            result.mask
        );
        assert!(
            result.mask[2] < 0.2 && result.mask[3] < 0.2,
            "dead features kept: {:?}",
            result.mask
        );
    }
}
