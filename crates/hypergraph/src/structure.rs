//! The hypergraph structure of §4.1: vertices, hyperedges covering multiple
//! vertices, per-vertex features `F_V` and per-hyperedge features `F_E`,
//! and the incidence-matrix view (Eq. 3).

use metis_nn::Matrix;
use serde::{Deserialize, Serialize};

/// Identifier of a hyperedge (index into the edge list).
pub type EdgeId = usize;
/// Identifier of a vertex.
pub type VertexId = usize;

/// Errors raised by hypergraph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    VertexOutOfRange { vertex: VertexId, n_vertices: usize },
    EmptyEdge,
    DuplicateVertexInEdge,
    FeatureLengthMismatch,
}

impl std::fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypergraphError::VertexOutOfRange { vertex, n_vertices } => {
                write!(f, "vertex {vertex} out of range (n_vertices={n_vertices})")
            }
            HypergraphError::EmptyEdge => write!(f, "hyperedge must cover at least one vertex"),
            HypergraphError::DuplicateVertexInEdge => {
                write!(f, "hyperedge covers the same vertex twice")
            }
            HypergraphError::FeatureLengthMismatch => {
                write!(f, "feature vector count does not match element count")
            }
        }
    }
}

impl std::error::Error for HypergraphError {}

/// A hypergraph with optional features and element names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypergraph {
    n_vertices: usize,
    /// Per-hyperedge sorted vertex lists.
    edges: Vec<Vec<VertexId>>,
    /// `F_V`: one feature vector per vertex (may be empty).
    pub vertex_features: Vec<Vec<f64>>,
    /// `F_E`: one feature vector per hyperedge (may be empty).
    pub edge_features: Vec<Vec<f64>>,
    /// Optional display names (e.g. `"link 6->7"`).
    pub vertex_names: Option<Vec<String>>,
    pub edge_names: Option<Vec<String>>,
}

impl Hypergraph {
    /// Create a hypergraph over `n_vertices` vertices with no edges.
    pub fn new(n_vertices: usize) -> Self {
        Hypergraph {
            n_vertices,
            edges: Vec::new(),
            vertex_features: Vec::new(),
            edge_features: Vec::new(),
            vertex_names: None,
            edge_names: None,
        }
    }

    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a hyperedge covering `vertices`. Order is normalized (sorted).
    pub fn add_edge(&mut self, vertices: &[VertexId]) -> Result<EdgeId, HypergraphError> {
        if vertices.is_empty() {
            return Err(HypergraphError::EmptyEdge);
        }
        let mut vs = vertices.to_vec();
        vs.sort_unstable();
        if vs.windows(2).any(|w| w[0] == w[1]) {
            return Err(HypergraphError::DuplicateVertexInEdge);
        }
        if let Some(&max) = vs.last() {
            if max >= self.n_vertices {
                return Err(HypergraphError::VertexOutOfRange {
                    vertex: max,
                    n_vertices: self.n_vertices,
                });
            }
        }
        self.edges.push(vs);
        Ok(self.edges.len() - 1)
    }

    /// Set `F_V` (must supply one vector per vertex).
    pub fn set_vertex_features(&mut self, fv: Vec<Vec<f64>>) -> Result<(), HypergraphError> {
        if fv.len() != self.n_vertices {
            return Err(HypergraphError::FeatureLengthMismatch);
        }
        self.vertex_features = fv;
        Ok(())
    }

    /// Set `F_E` (must supply one vector per hyperedge).
    pub fn set_edge_features(&mut self, fe: Vec<Vec<f64>>) -> Result<(), HypergraphError> {
        if fe.len() != self.n_edges() {
            return Err(HypergraphError::FeatureLengthMismatch);
        }
        self.edge_features = fe;
        Ok(())
    }

    /// Vertices covered by a hyperedge (sorted).
    pub fn edge_vertices(&self, e: EdgeId) -> &[VertexId] {
        &self.edges[e]
    }

    /// Number of vertices a hyperedge covers.
    pub fn edge_size(&self, e: EdgeId) -> usize {
        self.edges[e].len()
    }

    /// Hyperedges covering a vertex.
    pub fn vertex_edges(&self, v: VertexId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, vs)| vs.binary_search(&v).is_ok())
            .map(|(e, _)| e)
            .collect()
    }

    /// Vertex degree: number of hyperedges covering it.
    pub fn vertex_degree(&self, v: VertexId) -> usize {
        self.vertex_edges(v).len()
    }

    /// Whether hyperedge `e` covers vertex `v` (`I_ev = 1`).
    pub fn contains(&self, e: EdgeId, v: VertexId) -> bool {
        self.edges[e].binary_search(&v).is_ok()
    }

    /// All (edge, vertex) connections in a stable order: edges in insertion
    /// order, vertices sorted within each edge. This ordering defines the
    /// layout of mask vectors in the critical-connection search.
    pub fn connections(&self) -> Vec<(EdgeId, VertexId)> {
        let mut out = Vec::new();
        for (e, vs) in self.edges.iter().enumerate() {
            for &v in vs {
                out.push((e, v));
            }
        }
        out
    }

    /// Total number of (edge, vertex) connections.
    pub fn n_connections(&self) -> usize {
        self.edges.iter().map(|vs| vs.len()).sum()
    }

    /// The dense `|E| x |V|` 0-1 incidence matrix of Eq. 3.
    pub fn incidence_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_edges(), self.n_vertices);
        for (e, vs) in self.edges.iter().enumerate() {
            for &v in vs {
                m[(e, v)] = 1.0;
            }
        }
        m
    }

    /// Human-readable name of a vertex.
    pub fn vertex_name(&self, v: VertexId) -> String {
        self.vertex_names
            .as_ref()
            .and_then(|n| n.get(v).cloned())
            .unwrap_or_else(|| format!("v{v}"))
    }

    /// Human-readable name of a hyperedge.
    pub fn edge_name(&self, e: EdgeId) -> String {
        self.edge_names
            .as_ref()
            .and_then(|n| n.get(e).cloned())
            .unwrap_or_else(|| format!("e{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact Figure-5(c) example from the paper: links 1..8 are
    /// vertices (we use 0-based ids 0..7), path e1 covers links {2,5,6} and
    /// e2 covers {1,3,6,8} (1-based), so the incidence matrix must equal
    /// Eq. 3.
    fn figure5() -> Hypergraph {
        let mut h = Hypergraph::new(8);
        // 1-based link ids from the paper mapped to 0-based vertex ids.
        h.add_edge(&[1, 4, 5]).unwrap(); // e1: links 2,5,6
        h.add_edge(&[0, 2, 5, 7]).unwrap(); // e2: links 1,3,6,8
        h
    }

    #[test]
    fn figure5_incidence_matches_eq3() {
        let h = figure5();
        let i = h.incidence_matrix();
        let expected = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0],
        ]);
        assert_eq!(i, expected);
    }

    #[test]
    fn figure5_connections_match_eq2() {
        let h = figure5();
        // Eq. 2 in 0-based form: {(1,e1),(4,e1),(5,e1),(0,e2),(2,e2),(5,e2),(7,e2)}
        assert_eq!(
            h.connections(),
            vec![(0, 1), (0, 4), (0, 5), (1, 0), (1, 2), (1, 5), (1, 7)]
        );
        assert_eq!(h.n_connections(), 7);
    }

    #[test]
    fn shared_vertex_has_degree_two() {
        let h = figure5();
        assert_eq!(h.vertex_degree(5), 2); // link 6 is on both paths
        assert_eq!(h.vertex_edges(5), vec![0, 1]);
        assert_eq!(h.vertex_degree(3), 0); // link 4 unused
    }

    #[test]
    fn contains_queries() {
        let h = figure5();
        assert!(h.contains(0, 4));
        assert!(!h.contains(0, 0));
        assert!(h.contains(1, 7));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut h = Hypergraph::new(3);
        assert_eq!(h.add_edge(&[]).unwrap_err(), HypergraphError::EmptyEdge);
        assert_eq!(
            h.add_edge(&[0, 3]).unwrap_err(),
            HypergraphError::VertexOutOfRange {
                vertex: 3,
                n_vertices: 3
            }
        );
        assert_eq!(
            h.add_edge(&[1, 1]).unwrap_err(),
            HypergraphError::DuplicateVertexInEdge
        );
    }

    #[test]
    fn features_validated() {
        let mut h = figure5();
        assert!(h.set_vertex_features(vec![vec![1.0]; 8]).is_ok());
        assert_eq!(
            h.set_vertex_features(vec![vec![1.0]; 7]).unwrap_err(),
            HypergraphError::FeatureLengthMismatch
        );
        assert!(h.set_edge_features(vec![vec![2.0], vec![3.0]]).is_ok());
        assert_eq!(
            h.set_edge_features(vec![]).unwrap_err(),
            HypergraphError::FeatureLengthMismatch
        );
    }

    #[test]
    fn names_fall_back_to_indices() {
        let mut h = figure5();
        assert_eq!(h.vertex_name(2), "v2");
        h.vertex_names = Some((0..8).map(|i| format!("link {}", i + 1)).collect());
        assert_eq!(h.vertex_name(2), "link 3");
        assert_eq!(h.edge_name(0), "e0");
    }

    #[test]
    fn edge_vertex_order_normalized() {
        let mut h = Hypergraph::new(5);
        let e = h.add_edge(&[4, 0, 2]).unwrap();
        assert_eq!(h.edge_vertices(e), &[0, 2, 4]);
    }
}
