//! # metis-sim — deterministic co-simulation over the live serving fabric
//!
//! The paper's evaluation loop is closed: an ABR client's *next* request
//! time depends on the bitrate the model just returned (download time +
//! buffer-full sleep), so model behaviour reshapes the traffic the model
//! then sees. The serving layers (`metis_serve`, `metis_fabric`) replay
//! open-loop traces; this crate closes the loop — millions of concurrent
//! sessions, each owning real [`metis_abr`] player state, driving the
//! **real** fabric hot path in virtual time on one core:
//!
//! * [`events`] — the deterministic event queue: a binary heap keyed by
//!   `(virtual_time, schedule_seq)`, so the pop order is a pure function
//!   of the push order (dslab-core's discipline),
//! * [`sim`] — [`Simulation`]: the queue + a [`metis_serve::Clock`]
//!   virtual clock + a seeded RNG, with a minimal [`Component`] dispatch
//!   loop for ad-hoc models,
//! * [`cosim`] — [`run_abr_cosim`]: closed-loop ABR sessions against a
//!   [`metis_fabric::Router`] built on [`metis_serve::Clock::virtual_at`],
//!   with scheduled mid-run model hot swaps ([`ModelSwap`]).
//!
//! Determinism contract: same seed and config ⇒ bitwise-identical
//! [`CosimReport`] (per-session QoE, stalls, switches — see
//! [`outcome_digest`]) and identical fabric-side request/epoch counts, for
//! any shard count, worker-pool thread count, or wave interleaving. The
//! property tests live in `tests/sim_determinism.rs` at the workspace
//! root, pinned against a sequential single-session oracle.

pub mod cosim;
pub mod events;
pub mod sim;

pub use cosim::{
    outcome_digest, run_abr_cosim, run_abr_cosim_observed, session_plan, CosimConfig, CosimEvent,
    CosimReport, ModelSwap, SessionOutcome, SessionPlan,
};
pub use events::{EventEntry, EventQueue};
pub use sim::{run, Component, Routed, Simulation};
