//! The deterministic event queue: a binary heap keyed by
//! `(virtual_time, seq)`, in the style of dslab-core's simulation core.
//!
//! Two events at the same virtual time pop in **schedule order** (the
//! monotone `seq` breaks the tie), so the pop sequence is a pure function
//! of the push sequence — no hash iteration, no pointer order, no host
//! dependence. Times compare via `f64::total_cmp`, which is a total
//! order, keeping the heap's `Ord` contract honest for any finite input.

use std::collections::BinaryHeap;

/// One scheduled event: when, which (schedule-order tiebreak), and what.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time the event fires at (seconds).
    pub time_s: f64,
    /// Monotone schedule sequence number — the deterministic tiebreak.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Newtype so the max-heap's `Ord` can invert into earliest-first.
struct HeapEntry<E>(EventEntry<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the BinaryHeap is a max-heap, we want (time, seq) min.
        other
            .0
            .time_s
            .total_cmp(&self.0.time_s)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic `(time, seq)`-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `time_s`; returns the assigned sequence
    /// number. Times must be finite and non-negative (the total order the
    /// virtual clock relies on).
    pub fn push(&mut self, time_s: f64, event: E) -> u64 {
        assert!(
            time_s.is_finite() && time_s >= 0.0,
            "event time must be finite and non-negative, got {time_s}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(EventEntry { time_s, seq, event }));
        seq
    }

    /// The earliest `(time, seq)` event, without removing it.
    pub fn peek(&self) -> Option<&EventEntry<E>> {
        self.heap.peek().map(|h| &h.0)
    }

    /// Remove and return the earliest `(time, seq)` event.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop().map(|h| h.0)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Sequence number the next push will get (== events pushed so far).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_seq_tiebreak() {
        let mut q = EventQueue::new();
        q.push(2.0, "late");
        q.push(1.0, "early-first");
        q.push(1.0, "early-second");
        q.push(0.5, "earliest");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek().unwrap().event, "earliest");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(
            order,
            vec!["earliest", "early-first", "early-second", "late"],
            "same-time events must pop in schedule order"
        );
        assert!(q.is_empty());
        assert_eq!(q.scheduled(), 4);
    }

    #[test]
    fn pop_sequence_is_a_pure_function_of_the_push_sequence() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..500u64 {
                // Collision-heavy schedule: times repeat every 7 pushes.
                q.push((i % 7) as f64 * 0.25, i);
            }
            std::iter::from_fn(move || q.pop())
                .map(|e| (e.time_s.to_bits(), e.seq, e.event))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }
}
