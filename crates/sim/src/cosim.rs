//! Closed-loop ABR co-simulation: millions of client sessions, each
//! owning real [`metis_abr`] player state, driving the **live** serving
//! fabric ([`metis_fabric::Router`]) in virtual time.
//!
//! This is the loop the open-loop traffic replays in `metis_serve` cannot
//! close: there, arrival times are a fixed input; here, each session's
//! next request time *depends on the bitrate the tree actually returned*
//! — the Pensieve trace-replay rule `next = now + download_time + sleep`.
//! A bad model stalls its sessions and reshapes the arrival process the
//! fabric sees; that feedback is the point.
//!
//! ## Determinism
//!
//! Sessions advance in **decision waves**. The earliest pending event
//! opens a wave; every `Decide` within `decision_quantum_s` of it (up to
//! `wave_cap`, and never past a pending model swap or observer tick) is
//! popped in `(time, seq)` order, **submitted as it pops** — so each
//! request's fabric-side stamp is its own event time, and the wave's
//! latency spread (`[0, decision_quantum_s)` back from the closing
//! flush) is schedule-derived, not a wall-clock artifact — and answered
//! by one [`FabricHandle::collect`], whose responses come back sorted by
//! global submission id, i.e. exactly wave order, regardless of shard
//! count, batch sizes, or pool thread count. Session timelines are
//! **exact**: the next `Decide` is scheduled at the popped event's own
//! time plus the chunk's download+sleep, not at the wave boundary.
//!
//! Model swaps are scheduled **before** any session start, so at equal
//! virtual times the swap's lower sequence number pops first: a decision
//! at time `T` always sees the latest swap with `at_s <= T`, the same
//! rule a sequential oracle applies (`tests/sim_determinism.rs`).
//!
//! Health-plane observation composes the same way
//! ([`run_abr_cosim_observed`]): observer ticks are scheduled as
//! ordinary simulation events, fire at quiescent points (between
//! waves), and re-arm themselves while work remains — so every ring
//! sample, burn-rate window, and alert the [`metis_obs::Observer`]
//! produces is a pure function of the schedule, pinned bit-identical
//! across thread counts in `tests/obs_determinism.rs`.

use crate::sim::Simulation;
use metis_abr::{AbrEnv, ChunkDownload, NetworkTrace, VideoModel, OBS_DIM};
use metis_dt::DecisionTree;
use metis_fabric::Router;
use metis_obs::Observer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Co-simulation knobs.
#[derive(Debug, Clone)]
pub struct CosimConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Seed for session placement (trace choice, trace offset, start
    /// time) and the simulation RNG.
    pub seed: u64,
    /// Session start times draw uniformly from `[0, start_window_s)`.
    pub start_window_s: f64,
    /// Wave width in virtual seconds: decisions within this span of the
    /// wave-opening event ride the same fabric round-trip. Larger values
    /// batch better; fabric latency stamps quantize by at most this much.
    pub decision_quantum_s: f64,
    /// Hard cap on decisions per wave (bounds peak in-flight work).
    pub wave_cap: usize,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            sessions: 100,
            seed: 0,
            start_window_s: 4.0,
            decision_quantum_s: 0.25,
            wave_cap: 4096,
        }
    }
}

/// A scheduled hot swap of the scenario's live model: one tree publishes
/// a single model, several publish a majority-vote forest.
#[derive(Debug, Clone)]
pub struct ModelSwap {
    /// Virtual time the swap lands. A decision at exactly `at_s` already
    /// sees the new model (swaps sort before decisions at equal times).
    pub at_s: f64,
    /// The new ensemble (must be non-empty).
    pub trees: Vec<DecisionTree>,
}

/// Events the co-simulation schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CosimEvent {
    /// Session `i` requests its next chunk.
    Decide(u32),
    /// Apply [`ModelSwap`] `i`.
    Swap(u32),
    /// Health-plane observer tick ([`run_abr_cosim_observed`]); re-arms
    /// itself every `ObserverConfig::tick_s` while events remain.
    Tick,
}

/// Where and when one session runs — a pure function of
/// `(CosimConfig::seed, sessions, start_window_s, traces)`, exposed so an
/// oracle can replay the identical placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlan {
    /// Index into the trace pool.
    pub trace_idx: usize,
    /// Offset into that bandwidth trace, seconds.
    pub offset_s: f64,
    /// Virtual time of the session's first request.
    pub start_s: f64,
}

/// Draw every session's placement from the config seed. Deterministic:
/// same config and trace pool ⇒ bitwise-identical plans.
pub fn session_plan(cfg: &CosimConfig, traces: &[Arc<NetworkTrace>]) -> Vec<SessionPlan> {
    assert!(!traces.is_empty(), "session_plan needs at least one trace");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.sessions)
        .map(|_| {
            let trace_idx = rng.gen_range(0..traces.len());
            let dur = traces[trace_idx].duration_s();
            let offset_s = if dur > 0.0 {
                rng.gen_range(0.0..dur)
            } else {
                0.0
            };
            let start_s = if cfg.start_window_s > 0.0 {
                rng.gen_range(0.0..cfg.start_window_s)
            } else {
                0.0
            };
            SessionPlan {
                trace_idx,
                offset_s,
                start_s,
            }
        })
        .collect()
}

/// Per-session rollup — compact on purpose (a million sessions is a
/// million of these, not a million trajectories).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Index into the trace pool the session streamed over.
    pub trace_idx: usize,
    /// Virtual time of the session's first request.
    pub start_s: f64,
    /// Sum of per-chunk linear QoE.
    pub qoe_sum: f64,
    /// Total stall time, seconds.
    pub rebuffer_s: f64,
    /// Chunk-to-chunk quality changes.
    pub switches: u64,
    /// Chunks downloaded.
    pub chunks: u64,
    last_quality: Option<usize>,
}

impl SessionOutcome {
    pub fn new(trace_idx: usize, start_s: f64) -> Self {
        SessionOutcome {
            trace_idx,
            start_s,
            qoe_sum: 0.0,
            rebuffer_s: 0.0,
            switches: 0,
            chunks: 0,
            last_quality: None,
        }
    }

    /// Fold one chunk into the rollup. Shared with the sequential oracle
    /// so both sides accumulate bit-identically.
    pub fn record_chunk(&mut self, reward: f64, d: &ChunkDownload) {
        self.qoe_sum += reward;
        self.rebuffer_s += d.rebuffer_s;
        self.chunks += 1;
        if let Some(q) = self.last_quality {
            if q != d.quality {
                self.switches += 1;
            }
        }
        self.last_quality = Some(d.quality);
    }
}

/// What a co-simulation run produced.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// One rollup per session, in session-id order.
    pub sessions: Vec<SessionOutcome>,
    /// Chunk decisions served by the fabric.
    pub decisions: u64,
    /// Fabric round-trips (submit→collect waves).
    pub waves: u64,
    /// Events fired (decisions + swaps).
    pub events: u64,
    /// Virtual time when the last session finished.
    pub virtual_end_s: f64,
    /// Observer ticks fired (0 without an observer; includes the final
    /// end-of-run tick).
    pub ticks: u64,
    /// Mean per-session QoE sum.
    pub mean_qoe: f64,
    /// FNV-1a over every session's bit patterns — one u64 that differs if
    /// *any* outcome differs by even one ULP.
    pub qoe_digest: u64,
}

/// FNV-1a digest of the per-session outcomes (bitwise on the floats).
pub fn outcome_digest(sessions: &[SessionOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for s in sessions {
        eat(s.qoe_sum.to_bits());
        eat(s.rebuffer_s.to_bits());
        eat(s.switches);
        eat(s.chunks);
    }
    h
}

struct SessionState {
    env: AbrEnv,
    obs: Vec<f64>,
    outcome: SessionOutcome,
}

/// Run the closed loop: every session in `cfg` streams `video` over its
/// planned trace, asking `router`'s `scenario` for each chunk's bitrate,
/// with `swaps` landing mid-run. The router must have been built on a
/// virtual clock ([`metis_serve::Clock::virtual_at`]) — this function
/// drives that clock — and the scenario must serve `OBS_DIM`-wide
/// classification trees over the bitrate ladder.
///
/// The caller keeps ownership of the router: shut it down afterwards for
/// the fabric-side [`metis_fabric::FabricReport`] (batch sizes, per-epoch
/// counts, latency percentiles) of exactly this traffic.
pub fn run_abr_cosim(
    router: &Router,
    scenario: &str,
    video: &Arc<VideoModel>,
    traces: &[Arc<NetworkTrace>],
    swaps: &[ModelSwap],
    cfg: &CosimConfig,
) -> CosimReport {
    run_abr_cosim_observed(router, scenario, video, traces, swaps, cfg, None)
}

/// [`run_abr_cosim`] with a streaming health plane riding along: the
/// observer's ticks are scheduled as simulation events every
/// `observer.config().tick_s` virtual seconds (first tick one period
/// in), firing between waves — quiescent points where every counter and
/// sketch reflects exactly the waves before them — plus one final tick
/// at end-of-run so the tail is observed. The whole health surface
/// (rings, burn rates, alerts, [`metis_obs::HealthReport`]) is therefore
/// a pure function of the schedule.
///
/// Ticks are scheduled whenever an observer is passed, even one whose
/// telemetry plane is disabled (its ticks no-op): the *event schedule*
/// — and with it wave composition and every serving outcome — is
/// identical between an enabled and a disabled observed run.
pub fn run_abr_cosim_observed(
    router: &Router,
    scenario: &str,
    video: &Arc<VideoModel>,
    traces: &[Arc<NetworkTrace>],
    swaps: &[ModelSwap],
    cfg: &CosimConfig,
    observer: Option<&Observer>,
) -> CosimReport {
    assert!(
        router.clock().is_virtual(),
        "co-simulation needs a router built on Clock::virtual_at"
    );
    assert_eq!(
        router.n_features(scenario),
        OBS_DIM,
        "scenario `{scenario}` does not serve the {OBS_DIM}-feature ABR observation"
    );
    assert!(cfg.sessions > 0, "need at least one session");
    let scen_idx = router
        .scenario_index(scenario)
        .unwrap_or_else(|| panic!("unknown scenario `{scenario}`"));
    let n_actions = video.n_qualities();

    let mut sim: Simulation<CosimEvent> =
        Simulation::with_clock(Arc::clone(router.clock()), cfg.seed);
    // Swaps first: at equal times their lower seqs pop before any Decide,
    // giving the oracle rule "a decision at T sees the latest swap with
    // at_s <= T".
    for (i, swap) in swaps.iter().enumerate() {
        assert!(!swap.trees.is_empty(), "swap {i} has no trees");
        sim.schedule_at(swap.at_s, CosimEvent::Swap(i as u32));
    }
    let plans = session_plan(cfg, traces);
    let mut states: Vec<SessionState> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let mut env = AbrEnv::new(
            Arc::clone(video),
            Arc::clone(&traces[plan.trace_idx]),
            plan.offset_s,
        );
        let obs = metis_rl::Env::reset(&mut env);
        states.push(SessionState {
            env,
            obs,
            outcome: SessionOutcome::new(plan.trace_idx, plan.start_s),
        });
        sim.schedule_at(plan.start_s, CosimEvent::Decide(i as u32));
    }
    let tick_s = observer.map(|o| o.config().tick_s).unwrap_or(0.0);
    if observer.is_some() && tick_s > 0.0 {
        sim.schedule_at(tick_s, CosimEvent::Tick);
    }

    let mut handle = router.handle();
    let wave_cap = cfg.wave_cap.max(1);
    let mut wave: Vec<(u32, f64)> = Vec::new();
    let mut decisions = 0u64;
    let mut waves = 0u64;
    let mut ticks = 0u64;
    while let Some(front) = sim.peek() {
        let front_time = front.time_s;
        match front.event {
            CosimEvent::Swap(k) => {
                sim.pop();
                let swap = &swaps[k as usize];
                if swap.trees.len() == 1 {
                    router.publish(scenario, swap.trees[0].clone());
                } else {
                    router.publish_forest(scenario, swap.trees.to_vec());
                }
                continue;
            }
            CosimEvent::Tick => {
                sim.pop();
                ticks += 1;
                if let Some(obs) = observer {
                    obs.tick(front_time);
                }
                // Re-arm only while work remains: the final flush tick
                // after the loop covers the tail.
                if sim.peek().is_some() {
                    sim.schedule_at(front_time + tick_s, CosimEvent::Tick);
                }
                continue;
            }
            CosimEvent::Decide(_) => {}
        }
        // Open a decision wave at the front event's time.
        let horizon = front_time + cfg.decision_quantum_s;
        wave.clear();
        while wave.len() < wave_cap {
            let take = match sim.peek() {
                Some(e) => {
                    matches!(e.event, CosimEvent::Decide(_))
                        && (wave.is_empty() || e.time_s < horizon)
                }
                None => false,
            };
            if !take {
                break;
            }
            let entry = sim.pop().unwrap();
            let CosimEvent::Decide(s) = entry.event else {
                unreachable!()
            };
            // Submit as we pop: the pop advanced the virtual clock to
            // this event's time, so the fabric stamps the request at its
            // own schedule time — the wave's closing flush then carries a
            // deterministic in-wave latency spread instead of zeros.
            handle.submit(scen_idx, s as u64, states[s as usize].obs.clone());
            wave.push((s, entry.time_s));
        }
        let responses = handle.collect(); // sorted by global id == wave order
        waves += 1;
        debug_assert_eq!(responses.len(), wave.len());
        for (resp, &(s, t)) in responses.iter().zip(&wave) {
            debug_assert_eq!(resp.session, s as u64);
            let action = resp.response.prediction.class().min(n_actions - 1);
            let state = &mut states[s as usize];
            let (step, d) = state.env.step_detailed(action);
            state.outcome.record_chunk(step.reward, &d);
            decisions += 1;
            if !step.done {
                state.obs = step.obs;
                // The session's own timeline is exact: next request when
                // this chunk finished downloading (plus any buffer-full
                // sleep), anchored at the event's time, not the wave's.
                sim.schedule_at(t + d.download_time_s + d.sleep_s, CosimEvent::Decide(s));
            }
        }
    }

    // Final flush tick at the run's end: the stretch after the last
    // scheduled tick (or a sub-period run) still reaches the rings and
    // monitors, stamped at the deterministic virtual end time.
    if let Some(obs) = observer {
        obs.tick(sim.now_s());
        ticks += 1;
    }

    let sessions: Vec<SessionOutcome> = states.into_iter().map(|s| s.outcome).collect();
    let mean_qoe = sessions.iter().map(|s| s.qoe_sum).sum::<f64>() / sessions.len() as f64;
    let qoe_digest = outcome_digest(&sessions);
    CosimReport {
        decisions,
        waves,
        events: sim.processed(),
        virtual_end_s: sim.now_s(),
        ticks,
        mean_qoe,
        qoe_digest,
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_dt::{fit, Dataset, TreeConfig};
    use metis_fabric::{FabricConfig, ScenarioSpec, TenantSpec};
    use metis_serve::{Clock, ServeConfig};
    use std::time::Duration;

    /// A single-leaf tree that always answers `action`.
    fn constant_tree(action: usize, classes: usize) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64; OBS_DIM]).collect();
        let y = vec![action; 8];
        fit(
            &Dataset::classification(x, y, classes).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap()
    }

    /// A buffer-threshold policy: low rung when the buffer is shallow,
    /// high rung once it is comfortable (splits on obs[1]).
    fn buffer_tree(classes: usize) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let mut row = vec![0.0; OBS_DIM];
                row[1] = i as f64 / 64.0;
                row
            })
            .collect();
        let y: Vec<usize> = (0..64).map(|i| if i < 32 { 0 } else { 4 }).collect();
        fit(
            &Dataset::classification(x, y, classes).unwrap(),
            &TreeConfig {
                max_leaf_nodes: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn virtual_router(initial: DecisionTree, shards: usize) -> Router {
        virtual_router_with_telemetry(initial, shards, metis_telemetry::Telemetry::off())
    }

    fn virtual_router_with_telemetry(
        initial: DecisionTree,
        shards: usize,
        telemetry: metis_telemetry::Telemetry,
    ) -> Router {
        Router::new(
            vec![TenantSpec::new("abr")],
            vec![ScenarioSpec::new("pensieve", "abr", initial).shards(shards)],
            FabricConfig {
                serve: ServeConfig {
                    max_batch: 32,
                    max_delay: Duration::from_secs(10), // never consulted: virtual
                    ..Default::default()
                },
                mirror_batch: 0,
                clock: Clock::virtual_at(0.0),
                telemetry,
            },
        )
    }

    fn pool() -> (Arc<VideoModel>, Vec<Arc<NetworkTrace>>) {
        let video = Arc::new(VideoModel::standard(16, 7));
        let traces = metis_abr::hsdpa_corpus(3, 9)
            .into_iter()
            .map(Arc::new)
            .collect();
        (video, traces)
    }

    #[test]
    fn session_plans_are_deterministic_and_in_bounds() {
        let (_, traces) = pool();
        let cfg = CosimConfig {
            sessions: 50,
            seed: 3,
            ..Default::default()
        };
        let a = session_plan(&cfg, &traces);
        let b = session_plan(&cfg, &traces);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for p in &a {
            assert!(p.trace_idx < traces.len());
            assert!(p.offset_s >= 0.0 && p.offset_s < traces[p.trace_idx].duration_s());
            assert!(p.start_s >= 0.0 && p.start_s < cfg.start_window_s);
        }
        let distinct: std::collections::HashSet<u64> =
            a.iter().map(|p| p.start_s.to_bits()).collect();
        assert!(distinct.len() > 1, "starts must actually spread");
    }

    #[test]
    fn closed_loop_runs_every_session_to_completion() {
        let (video, traces) = pool();
        let router = virtual_router(buffer_tree(video.n_qualities()), 2);
        let cfg = CosimConfig {
            sessions: 40,
            seed: 1,
            ..Default::default()
        };
        let report = run_abr_cosim(&router, "pensieve", &video, &traces, &[], &cfg);
        assert_eq!(report.sessions.len(), 40);
        for s in &report.sessions {
            assert_eq!(s.chunks, video.n_chunks() as u64);
        }
        assert_eq!(report.decisions, 40 * video.n_chunks() as u64);
        assert_eq!(report.events, report.decisions);
        assert!(
            report.waves < report.decisions,
            "waves must batch decisions"
        );
        assert!(report.virtual_end_s > cfg.start_window_s);
        let fabric = router.shutdown();
        assert_eq!(fabric.served, report.decisions);
    }

    #[test]
    fn two_runs_are_bit_identical_across_shard_counts() {
        let (video, traces) = pool();
        let cfg = CosimConfig {
            sessions: 30,
            seed: 7,
            ..Default::default()
        };
        let swaps = vec![ModelSwap {
            at_s: 30.0,
            trees: vec![constant_tree(2, video.n_qualities())],
        }];
        let run = |shards: usize| {
            let router = virtual_router(buffer_tree(video.n_qualities()), shards);
            let report = run_abr_cosim(&router, "pensieve", &video, &traces, &swaps, &cfg);
            let fabric = router.shutdown();
            (report, fabric)
        };
        let (r1, f1) = run(1);
        let (r2, f2) = run(4);
        assert_eq!(
            r1.sessions, r2.sessions,
            "outcomes must not depend on sharding"
        );
        assert_eq!(r1.qoe_digest, r2.qoe_digest);
        assert_eq!(r1.decisions, r2.decisions);
        assert_eq!(r1.virtual_end_s.to_bits(), r2.virtual_end_s.to_bits());
        assert_eq!(f1.served, f2.served);
        // The swap actually landed on both.
        assert_eq!(f1.scenarios[0].swaps, 1);
        assert_eq!(f2.scenarios[0].swaps, 1);
    }

    #[test]
    fn swap_at_zero_equals_starting_with_the_new_model() {
        let (video, traces) = pool();
        let cfg = CosimConfig {
            sessions: 12,
            seed: 5,
            ..Default::default()
        };
        let new_model = constant_tree(3, video.n_qualities());
        let swapped = {
            let router = virtual_router(constant_tree(0, video.n_qualities()), 2);
            let swaps = vec![ModelSwap {
                at_s: 0.0,
                trees: vec![new_model.clone()],
            }];
            run_abr_cosim(&router, "pensieve", &video, &traces, &swaps, &cfg)
        };
        let native = {
            let router = virtual_router(new_model, 2);
            run_abr_cosim(&router, "pensieve", &video, &traces, &[], &cfg)
        };
        // The swap sorts before every decision at t=0, so no session ever
        // saw the old model.
        assert_eq!(swapped.qoe_digest, native.qoe_digest);
        assert_eq!(swapped.sessions, native.sessions);
    }

    /// A telemetry-enabled co-simulation exports a valid Chrome
    /// trace-event document, its shard scopes account for every fabric
    /// decision, the control scope records the mid-run hot swap, and the
    /// live streaming sketch's p99 brackets the exact recorder p99
    /// within the sketch's documented relative error ([`GAMMA`]).
    #[test]
    fn telemetry_cosim_exports_a_trace_and_tracks_live_percentiles() {
        use metis_telemetry::{Telemetry, CONTROL_SHARD, GAMMA};

        let (video, traces) = pool();
        let telemetry = Telemetry::enabled();
        let router =
            virtual_router_with_telemetry(buffer_tree(video.n_qualities()), 2, telemetry.clone());
        let cfg = CosimConfig {
            sessions: 30,
            seed: 11,
            ..Default::default()
        };
        let swaps = vec![ModelSwap {
            at_s: 25.0,
            trees: vec![constant_tree(2, video.n_qualities())],
        }];
        let report = run_abr_cosim(&router, "pensieve", &video, &traces, &swaps, &cfg);

        // The trace export is a valid JSON document of the expected
        // shape: {"traceEvents": [...], "displayTimeUnit": ...}.
        let json = telemetry.chrome_trace_json();
        let doc: serde::Value = serde_json::from_str(&json).expect("trace is valid JSON");
        let obj = doc.as_object().expect("trace root is an object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v.as_array().expect("traceEvents is an array"))
            .expect("trace has a traceEvents key");
        assert!(
            events.len() > report.waves as usize,
            "at least one duration event per wave plus metadata"
        );

        let scopes = telemetry.scopes();
        assert_eq!(scopes.len(), 3, "2 shard scopes + 1 control scope");
        let control = scopes
            .iter()
            .find(|s| s.shard() == CONTROL_SHARD)
            .expect("control scope");
        assert!(
            control
                .events
                .events()
                .iter()
                .any(|e| e.kind.name() == "hot_swap"),
            "the scheduled swap must land on the control scope"
        );

        let fabric = router.shutdown();
        assert_eq!(fabric.served, report.decisions);
        let shard_reports = &fabric.scenarios[0].shards;
        let mut scoped_served = 0u64;
        for scope in scopes.iter().filter(|s| s.shard() != CONTROL_SHARD) {
            scoped_served += scope.served.get();
            let exact = &shard_reports[scope.shard()].latency;
            let sketch = scope.latency.cumulative();
            assert_eq!(
                sketch.count(),
                exact.count as u64,
                "sketch saw every sample"
            );
            let sketch_p99 = sketch.quantile(0.99).expect("non-empty sketch");
            // The log-spaced sketch over-estimates by at most GAMMA;
            // the epsilon absorbs the smallest bucket's upper edge when
            // the exact p99 is a virtual-time zero.
            let eps = 1.2e-7;
            assert!(
                sketch_p99 >= exact.p99_s - eps && sketch_p99 <= exact.p99_s * GAMMA + eps,
                "sketch p99 {} outside [{}, {}]",
                sketch_p99,
                exact.p99_s - eps,
                exact.p99_s * GAMMA + eps
            );
        }
        assert_eq!(
            scoped_served, report.decisions,
            "shard scopes account for every decision"
        );
    }

    /// An observed co-simulation schedules ticks as simulation events:
    /// ticks fire, the health digest is run-to-run stable, and — because
    /// the tick schedule is identical whether the underlying telemetry
    /// plane is enabled or not — serving outcomes are bit-identical
    /// between an enabled-plane and a disabled-plane observed run (the
    /// disabled observer staying fully inert).
    #[test]
    fn observed_runs_tick_and_stay_behaviour_invariant() {
        use metis_obs::ObserverConfig;
        use metis_telemetry::Telemetry;

        let (video, traces) = pool();
        let cfg = CosimConfig {
            sessions: 20,
            seed: 3,
            ..Default::default()
        };
        let run = |telemetry: Telemetry| {
            let router =
                virtual_router_with_telemetry(buffer_tree(video.n_qualities()), 2, telemetry);
            let obs = router.observer(ObserverConfig {
                tick_s: 10.0,
                ..Default::default()
            });
            let report =
                run_abr_cosim_observed(&router, "pensieve", &video, &traces, &[], &cfg, Some(&obs));
            let digest = obs.digest();
            let n_alerts = obs.alerts().len();
            let obs_ticks = obs.health_report().ticks;
            router.shutdown();
            (report, digest, n_alerts, obs_ticks)
        };
        let (on, digest_on, _, ticks_on) = run(Telemetry::enabled());
        assert!(on.ticks > 1, "periodic + final ticks fired: {}", on.ticks);
        assert_eq!(ticks_on, on.ticks, "every tick event reached the observer");
        let (on2, digest_on2, _, _) = run(Telemetry::enabled());
        assert_eq!(digest_on, digest_on2, "health digest is run-to-run stable");
        assert_eq!(on.qoe_digest, on2.qoe_digest);
        let (off, digest_off, alerts_off, ticks_off) = run(Telemetry::off());
        assert_eq!(
            on.qoe_digest, off.qoe_digest,
            "observation must never change what is served"
        );
        assert_eq!(on.ticks, off.ticks, "tick schedule is plane-independent");
        assert_eq!(ticks_off, 0, "disabled plane: observer ticks no-op");
        assert_eq!(alerts_off, 0, "disabled plane: observer stays inert");
        assert_ne!(digest_on, digest_off);
    }

    #[test]
    #[should_panic(expected = "Clock::virtual_at")]
    fn real_clock_router_is_rejected() {
        let (video, traces) = pool();
        let router = Router::new(
            vec![TenantSpec::new("abr")],
            vec![ScenarioSpec::new(
                "pensieve",
                "abr",
                constant_tree(0, video.n_qualities()),
            )],
            FabricConfig::default(),
        );
        run_abr_cosim(
            &router,
            "pensieve",
            &video,
            &traces,
            &[],
            &CosimConfig::default(),
        );
    }
}
