//! The simulation core: a virtual [`Clock`], the deterministic
//! [`EventQueue`], and a seeded RNG, plus a minimal component-handler
//! dispatch loop — the dslab-core shape (`simulation.rs`) sized to what
//! the co-simulation harness needs.
//!
//! Determinism contract: given the same seed and the same schedule of
//! [`Simulation::schedule_at`] calls, the pop order, the clock trajectory,
//! and every RNG draw are bit-identical — on any host, for any thread
//! count of whatever the popped events drive.

use crate::events::{EventEntry, EventQueue};
use metis_serve::Clock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A deterministic discrete-event simulation over events of type `E`.
pub struct Simulation<E> {
    clock: Arc<Clock>,
    queue: EventQueue<E>,
    rng: StdRng,
    processed: u64,
}

impl<E> Simulation<E> {
    /// An empty simulation at virtual time 0 with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Simulation {
            clock: Clock::virtual_at(0.0),
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// A simulation driving an **existing** virtual clock — typically the
    /// clock a serving fabric was built with
    /// ([`metis_fabric::FabricConfig::clock`]), so event pops and fabric
    /// latency stamps share one timeline. Panics unless the clock is
    /// virtual.
    pub fn with_clock(clock: Arc<Clock>, seed: u64) -> Self {
        assert!(
            clock.is_virtual(),
            "Simulation::with_clock needs a virtual clock"
        );
        Simulation {
            clock,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// The simulation's virtual clock — share it (it is an `Arc`) with
    /// any component that stamps time, e.g. a serving fabric built with
    /// this clock in its `FabricConfig`.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Current virtual time (the clock's high-water mark — see
    /// [`Simulation::pop`]).
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// The simulation's seeded RNG. All randomness must flow through
    /// here (or through other explicitly seeded generators) to keep runs
    /// reproducible.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedule `event` at absolute virtual time `time_s`; returns its
    /// sequence number. A time at or before [`Simulation::now_s`] is
    /// allowed — it fires as soon as the queue reaches it (the clock is a
    /// monotone high-water mark, so such an event pops "now" rather than
    /// rewinding anything); scheduling strictly in the future is the
    /// common case.
    pub fn schedule_at(&mut self, time_s: f64, event: E) -> u64 {
        self.queue.push(time_s, event)
    }

    /// Schedule `event` `delay_s` seconds after the current virtual time.
    pub fn schedule_in(&mut self, delay_s: f64, event: E) -> u64 {
        assert!(
            delay_s.is_finite() && delay_s >= 0.0,
            "delay must be finite and non-negative, got {delay_s}"
        );
        self.schedule_at(self.now_s() + delay_s, event)
    }

    /// The earliest pending event, without firing it.
    pub fn peek(&self) -> Option<&EventEntry<E>> {
        self.queue.peek()
    }

    /// Fire the earliest pending event: advances the clock to
    /// `max(now, event.time_s)` and returns the entry. The `max` is what
    /// makes the clock a high-water mark — an event scheduled "into the
    /// past" (a closed-loop reply that outran a later already-popped
    /// event) still pops in correct `(time, seq)` order, it just cannot
    /// pull time backwards.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.queue.pop()?;
        self.clock.advance_to(entry.time_s.max(self.now_s()));
        self.processed += 1;
        Some(entry)
    }

    /// Events fired so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events scheduled over the simulation's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.queue.scheduled()
    }

    /// Events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Addressed payload for the [`Component`] dispatch loop.
#[derive(Debug, Clone)]
pub struct Routed<E> {
    /// Index of the destination component in the `run` slice.
    pub dst: usize,
    pub payload: E,
}

/// A simulation component: receives its events, schedules new ones.
pub trait Component<E> {
    /// Handle one event addressed to this component. `time_s` is the
    /// event's scheduled time (≤ the clock's high-water mark).
    fn on_event(&mut self, time_s: f64, payload: E, sim: &mut Simulation<Routed<E>>);
}

/// Drive the simulation to exhaustion, dispatching each event to its
/// destination component. Returns the number of events fired.
pub fn run<E>(sim: &mut Simulation<Routed<E>>, components: &mut [&mut dyn Component<E>]) -> u64 {
    let mut fired = 0;
    while let Some(entry) = sim.pop() {
        let dst = entry.event.dst;
        assert!(
            dst < components.len(),
            "event addressed to unknown component {dst}"
        );
        components[dst].on_event(entry.time_s, entry.event.payload, sim);
        fired += 1;
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn clock_follows_pop_order_and_rng_is_seeded() {
        let mut sim: Simulation<&str> = Simulation::new(7);
        assert_eq!(sim.now_s(), 0.0);
        sim.schedule_at(2.0, "b");
        sim.schedule_at(1.0, "a");
        sim.schedule_in(3.0, "c");
        let draw_a: f64 = sim.rng().gen_range(0.0..1.0);
        assert_eq!(sim.pop().unwrap().event, "a");
        assert_eq!(sim.now_s(), 1.0);
        assert_eq!(sim.pop().unwrap().event, "b");
        assert_eq!(sim.now_s(), 2.0);
        assert_eq!(sim.pop().unwrap().event, "c");
        assert_eq!(sim.now_s(), 3.0);
        assert!(sim.pop().is_none());
        assert_eq!(sim.processed(), 3);
        // Same seed ⇒ same draw, bitwise.
        let mut again: Simulation<&str> = Simulation::new(7);
        let draw_b: f64 = again.rng().gen_range(0.0..1.0);
        assert_eq!(draw_a.to_bits(), draw_b.to_bits());
    }

    #[test]
    fn past_schedules_pop_in_order_without_rewinding_the_clock() {
        let mut sim: Simulation<u32> = Simulation::new(0);
        sim.schedule_at(5.0, 50);
        sim.pop();
        assert_eq!(sim.now_s(), 5.0);
        // A reply "from" t=2 after the clock reached 5: fires next, clock
        // holds its high-water mark.
        sim.schedule_at(2.0, 20);
        sim.schedule_at(6.0, 60);
        let e = sim.pop().unwrap();
        assert_eq!((e.event, e.time_s), (20, 2.0));
        assert_eq!(sim.now_s(), 5.0, "high-water mark must not rewind");
        assert_eq!(sim.pop().unwrap().event, 60);
        assert_eq!(sim.now_s(), 6.0);
    }

    /// A two-component ping-pong: each bounce reschedules to the other
    /// side until a hop budget runs out. The trace (times and receivers)
    /// is deterministic and the dispatch loop drains exactly it.
    struct Pinger {
        me: usize,
        other: usize,
        hops_left: u32,
        log: Vec<(f64, usize)>,
    }

    impl Component<u32> for Pinger {
        fn on_event(&mut self, time_s: f64, ball: u32, sim: &mut Simulation<Routed<u32>>) {
            self.log.push((time_s, self.me));
            if ball > 0 {
                sim.schedule_in(
                    0.5,
                    Routed {
                        dst: self.other,
                        payload: ball - 1,
                    },
                );
            }
            let _ = self.hops_left; // budget mirrored in the ball itself
        }
    }

    #[test]
    fn component_dispatch_ping_pong_is_deterministic() {
        let trace = |seed: u64| {
            let mut sim = Simulation::new(seed);
            sim.schedule_at(
                0.0,
                Routed {
                    dst: 0,
                    payload: 4u32,
                },
            );
            let mut a = Pinger {
                me: 0,
                other: 1,
                hops_left: 4,
                log: Vec::new(),
            };
            let mut b = Pinger {
                me: 1,
                other: 0,
                hops_left: 4,
                log: Vec::new(),
            };
            let fired = run(&mut sim, &mut [&mut a, &mut b]);
            assert_eq!(fired, 5);
            assert_eq!(sim.now_s(), 2.0);
            let mut log = a.log;
            log.extend(b.log);
            log
        };
        let t = trace(1);
        assert_eq!(t, trace(1));
        // Receivers alternate 0,1,0,1,0 at 0.5s spacing.
        assert_eq!(t.iter().map(|&(_, who)| who).collect::<Vec<_>>().len(), 5);
    }
}
