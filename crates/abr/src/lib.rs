//! # metis-abr — adaptive-bitrate video streaming substrate
//!
//! The Pensieve side of the Metis reproduction (§5/§6 of the paper). The
//! original system streams real video through dash.js over recorded HSDPA
//! and FCC traces; this crate rebuilds the whole stack in Rust:
//!
//! * [`video::VideoModel`] — chunked video on the 300–4300 kbps ladder,
//! * [`trace`] — piecewise-constant bandwidth traces + synthetic HSDPA-like
//!   and FCC-like corpus generators (DESIGN.md §1.3, substitution 1),
//! * [`sim::StreamingSession`] — download/buffer/rebuffer mechanics,
//! * [`qoe::QoeMetric`] — Pensieve's linear QoE,
//! * [`env::AbrEnv`] — the 25-feature RL environment,
//! * [`baselines`] — BB, RB, FESTIVE, BOLA, robustMPC (all as
//!   [`metis_rl::Policy`], so one rollout harness evaluates everything),
//! * [`pensieve`] — the deep-RL agent in both Figure-10 architectures.

pub mod baselines;
pub mod env;
pub mod pensieve;
pub mod qoe;
pub mod sim;
pub mod trace;
pub mod video;

pub use baselines::{
    baseline_by_name, baseline_names, Bola, BufferBased, Festive, FixedLowest, RateBased, RobustMpc,
};
pub use env::{env_pool, feature_names, AbrEnv, AbrObservation, HISTORY_LEN, OBS_DIM};
pub use pensieve::{
    pensieve_agent, pensieve_train_config, train_pensieve, PensieveArch, PensieveNet,
};
pub use qoe::{percentile, QoeMetric, SessionStats};
pub use sim::{ChunkDownload, StreamingSession, BUFFER_CAP_S};
pub use trace::{fcc_corpus, generate_trace, hsdpa_corpus, NetworkTrace, TraceGenConfig};
pub use video::{bitrate_labels, VideoModel, BITRATES_KBPS, CHUNK_DURATION_S};
