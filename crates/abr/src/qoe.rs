//! The linear QoE metric of Pensieve (and of the paper's evaluation):
//!
//! ```text
//! QoE_t = q(R_t) − μ·rebuffer_t − |q(R_t) − q(R_{t−1})|
//! ```
//!
//! with `q(R) = R` in Mbps and μ = 4.3 (the rebuffering penalty of the
//! Pensieve paper's `QoE_lin`).

use serde::{Deserialize, Serialize};

/// QoE weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeMetric {
    /// Seconds-of-rebuffering penalty (μ).
    pub rebuf_penalty: f64,
    /// Smoothness penalty weight on |Δ quality|.
    pub smooth_penalty: f64,
}

impl Default for QoeMetric {
    fn default() -> Self {
        QoeMetric {
            rebuf_penalty: 4.3,
            smooth_penalty: 1.0,
        }
    }
}

impl QoeMetric {
    /// Per-chunk QoE.
    pub fn chunk_qoe(&self, bitrate_kbps: f64, last_bitrate_kbps: f64, rebuffer_s: f64) -> f64 {
        let q = bitrate_kbps / 1000.0;
        let q_last = last_bitrate_kbps / 1000.0;
        q - self.rebuf_penalty * rebuffer_s - self.smooth_penalty * (q - q_last).abs()
    }
}

/// Aggregate session statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    pub chunk_qoe: Vec<f64>,
    pub bitrates_kbps: Vec<f64>,
    pub rebuffer_s: Vec<f64>,
    pub download_time_s: Vec<f64>,
}

impl SessionStats {
    pub fn push(&mut self, qoe: f64, bitrate_kbps: f64, rebuffer_s: f64, download_time_s: f64) {
        self.chunk_qoe.push(qoe);
        self.bitrates_kbps.push(bitrate_kbps);
        self.rebuffer_s.push(rebuffer_s);
        self.download_time_s.push(download_time_s);
    }

    /// Mean per-chunk QoE (the paper's headline number).
    pub fn mean_qoe(&self) -> f64 {
        if self.chunk_qoe.is_empty() {
            return 0.0;
        }
        self.chunk_qoe.iter().sum::<f64>() / self.chunk_qoe.len() as f64
    }

    pub fn total_rebuffer_s(&self) -> f64 {
        self.rebuffer_s.iter().sum()
    }

    pub fn mean_bitrate_kbps(&self) -> f64 {
        if self.bitrates_kbps.is_empty() {
            return 0.0;
        }
        self.bitrates_kbps.iter().sum::<f64>() / self.bitrates_kbps.len() as f64
    }

    /// Count of bitrate switches.
    pub fn n_switches(&self) -> usize {
        self.bitrates_kbps
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count()
    }
}

/// Percentile of a sample (linear interpolation, p in [0,100]).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (rank - lo as f64) * (v[hi] - v[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qoe_rewards_bitrate() {
        let m = QoeMetric::default();
        assert!(m.chunk_qoe(4300.0, 4300.0, 0.0) > m.chunk_qoe(300.0, 300.0, 0.0));
        assert!((m.chunk_qoe(1000.0, 1000.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qoe_penalizes_rebuffering() {
        let m = QoeMetric::default();
        let base = m.chunk_qoe(1850.0, 1850.0, 0.0);
        let stalled = m.chunk_qoe(1850.0, 1850.0, 1.0);
        assert!((base - stalled - 4.3).abs() < 1e-12);
    }

    #[test]
    fn qoe_penalizes_switching_symmetrically() {
        let m = QoeMetric::default();
        let up = m.chunk_qoe(2850.0, 1850.0, 0.0);
        let down = m.chunk_qoe(1850.0, 2850.0, 0.0);
        // |Δ| term is symmetric; the difference is purely the q(R) term.
        assert!((up - down - 1.0).abs() < 1e-12);
        assert!(up < m.chunk_qoe(2850.0, 2850.0, 0.0));
    }

    #[test]
    fn stats_aggregate() {
        let mut s = SessionStats::default();
        s.push(1.0, 1200.0, 0.0, 2.0);
        s.push(2.0, 1850.0, 0.5, 3.0);
        s.push(2.0, 1850.0, 0.0, 3.0);
        assert!((s.mean_qoe() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.total_rebuffer_s(), 0.5);
        assert_eq!(s.n_switches(), 1);
        assert!((s.mean_bitrate_kbps() - 4900.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }
}
