//! The ABR environment in Pensieve's state/action/reward formulation.
//!
//! The observation is the 25-dimensional state the paper quotes for
//! Pensieve ("25 states", Appendix C): last selected bitrate, buffer
//! occupancy, the past-8 throughput and download-time histories, the six
//! next-chunk sizes, and the fraction of chunks remaining. The action is a
//! ladder index; the reward is the per-chunk linear QoE.

use crate::qoe::QoeMetric;
use crate::sim::{ChunkDownload, StreamingSession};
use crate::trace::NetworkTrace;
use crate::video::VideoModel;
use metis_rl::{Env, Step};
use std::sync::Arc;

/// History window length for throughput / download time.
pub const HISTORY_LEN: usize = 8;

/// Observation dimensionality (1 + 1 + 8 + 8 + 6 + 1).
pub const OBS_DIM: usize = 2 + 2 * HISTORY_LEN + 6 + 1;

/// Normalization constants (documented so trees render in natural units).
const BITRATE_NORM_KBPS: f64 = 4300.0;
const BUFFER_NORM_S: f64 = 10.0;
const THROUGHPUT_NORM_MBPS: f64 = 8.0;
const DL_TIME_NORM_S: f64 = 10.0;
const SIZE_NORM_BYTES: f64 = 1e6;

/// Human-readable feature names aligned with the observation layout
/// (the notation of the paper's Figure 7: `r_t`, `B`, `θ_t`, `T_t`).
pub fn feature_names() -> Vec<String> {
    let mut names = vec![
        "r_t (last bitrate, Mbps)".to_string(),
        "B (buffer, x10s)".to_string(),
    ];
    for i in (1..=HISTORY_LEN).rev() {
        names.push(format!("theta_t-{i} (thr, x8Mbps)"));
    }
    for i in (1..=HISTORY_LEN).rev() {
        names.push(format!("T_t-{i} (dl time, x10s)"));
    }
    for label in crate::video::bitrate_labels() {
        names.push(format!("size_{label} (MB)"));
    }
    names.push("chunks_left (frac)".to_string());
    names
}

/// A decoded observation (used by the heuristic baselines, which consume
/// the same information the DNN sees).
#[derive(Debug, Clone, PartialEq)]
pub struct AbrObservation {
    /// Last selected bitrate in kbps.
    pub last_bitrate_kbps: f64,
    /// Buffer occupancy in seconds.
    pub buffer_s: f64,
    /// Past chunk throughputs in Mbps, oldest first.
    pub throughput_mbps: Vec<f64>,
    /// Past chunk download times in seconds, oldest first.
    pub download_time_s: Vec<f64>,
    /// Next chunk size per quality, bytes.
    pub next_sizes_bytes: Vec<f64>,
    /// Fraction of chunks remaining in (0, 1].
    pub remaining_frac: f64,
}

impl AbrObservation {
    /// Decode the flat observation vector.
    pub fn decode(obs: &[f64]) -> Self {
        assert_eq!(obs.len(), OBS_DIM, "AbrObservation::decode: wrong length");
        let h = HISTORY_LEN;
        AbrObservation {
            last_bitrate_kbps: obs[0] * BITRATE_NORM_KBPS,
            buffer_s: obs[1] * BUFFER_NORM_S,
            throughput_mbps: obs[2..2 + h]
                .iter()
                .map(|x| x * THROUGHPUT_NORM_MBPS)
                .collect(),
            download_time_s: obs[2 + h..2 + 2 * h]
                .iter()
                .map(|x| x * DL_TIME_NORM_S)
                .collect(),
            next_sizes_bytes: obs[2 + 2 * h..2 + 2 * h + 6]
                .iter()
                .map(|x| x * SIZE_NORM_BYTES)
                .collect(),
            remaining_frac: obs[2 + 2 * h + 6],
        }
    }

    /// Index of the ladder rung matching `last_bitrate_kbps`.
    pub fn last_quality(&self, bitrates: &[f64]) -> usize {
        bitrates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - self.last_bitrate_kbps)
                    .abs()
                    .partial_cmp(&(*b - self.last_bitrate_kbps).abs())
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Harmonic mean of the last `k` non-zero throughput samples (Mbps) —
    /// the predictor used by RB, FESTIVE and robustMPC.
    pub fn harmonic_throughput_mbps(&self, k: usize) -> f64 {
        let recent: Vec<f64> = self
            .throughput_mbps
            .iter()
            .rev()
            .filter(|&&t| t > 0.0)
            .take(k)
            .cloned()
            .collect();
        if recent.is_empty() {
            return 0.0;
        }
        recent.len() as f64 / recent.iter().map(|t| 1.0 / t).sum::<f64>()
    }
}

/// The ABR environment.
#[derive(Debug, Clone)]
pub struct AbrEnv {
    video: Arc<VideoModel>,
    trace: Arc<NetworkTrace>,
    trace_offset_s: f64,
    metric: QoeMetric,
    session: StreamingSession,
    last_quality: usize,
    thr_hist_mbps: Vec<f64>,
    dl_hist_s: Vec<f64>,
}

impl AbrEnv {
    pub fn new(video: Arc<VideoModel>, trace: Arc<NetworkTrace>, trace_offset_s: f64) -> Self {
        let session = StreamingSession::new(video.clone(), trace.clone(), trace_offset_s);
        AbrEnv {
            video,
            trace,
            trace_offset_s,
            metric: QoeMetric::default(),
            session,
            last_quality: 0,
            thr_hist_mbps: vec![0.0; HISTORY_LEN],
            dl_hist_s: vec![0.0; HISTORY_LEN],
        }
    }

    pub fn with_metric(mut self, metric: QoeMetric) -> Self {
        self.metric = metric;
        self
    }

    pub fn metric(&self) -> QoeMetric {
        self.metric
    }

    pub fn video(&self) -> &VideoModel {
        &self.video
    }

    /// [`Env::step`] plus the raw [`ChunkDownload`] mechanics behind the
    /// transition — download time, stall, and the sleep the client takes
    /// when its buffer is full. Closed-loop co-simulation (`metis_sim`)
    /// needs these to schedule the session's *next* request at
    /// `now + download_time_s + sleep_s`, the Pensieve trace-replay rule
    /// where the served bitrate decides when the client asks again.
    /// `step` delegates here, so the two are bit-identical transitions.
    pub fn step_detailed(&mut self, action: usize) -> (Step, ChunkDownload) {
        let d = self.session.download_next(action);
        let reward = self.metric.chunk_qoe(
            self.video.bitrate_kbps(action),
            self.video.bitrate_kbps(self.last_quality),
            d.rebuffer_s,
        );
        self.last_quality = action;
        self.thr_hist_mbps.remove(0);
        self.thr_hist_mbps
            .push(d.size_bytes * 8.0 / d.download_time_s.max(1e-9) / 1e6);
        self.dl_hist_s.remove(0);
        self.dl_hist_s.push(d.download_time_s);
        let step = Step {
            obs: self.observe(),
            reward,
            done: self.session.finished(),
        };
        (step, d)
    }

    fn observe(&self) -> Vec<f64> {
        let mut obs = Vec::with_capacity(OBS_DIM);
        obs.push(self.video.bitrate_kbps(self.last_quality) / BITRATE_NORM_KBPS);
        obs.push(self.session.buffer_s() / BUFFER_NORM_S);
        for &t in &self.thr_hist_mbps {
            obs.push(t / THROUGHPUT_NORM_MBPS);
        }
        for &d in &self.dl_hist_s {
            obs.push(d / DL_TIME_NORM_S);
        }
        let chunk = self.session.next_chunk().min(self.video.n_chunks() - 1);
        for &s in self.video.chunk_sizes(chunk) {
            obs.push(s / SIZE_NORM_BYTES);
        }
        obs.push(self.session.chunks_remaining() as f64 / self.video.n_chunks() as f64);
        obs
    }
}

impl Env for AbrEnv {
    fn reset(&mut self) -> Vec<f64> {
        self.session =
            StreamingSession::new(self.video.clone(), self.trace.clone(), self.trace_offset_s);
        self.last_quality = 0;
        self.thr_hist_mbps = vec![0.0; HISTORY_LEN];
        self.dl_hist_s = vec![0.0; HISTORY_LEN];
        self.observe()
    }

    fn step(&mut self, action: usize) -> Step {
        self.step_detailed(action).0
    }

    fn n_actions(&self) -> usize {
        self.video.n_qualities()
    }

    fn obs_dim(&self) -> usize {
        OBS_DIM
    }
}

/// Build one environment per trace (the standard evaluation pool).
pub fn env_pool(video: &Arc<VideoModel>, traces: &[Arc<NetworkTrace>]) -> Vec<AbrEnv> {
    traces
        .iter()
        .map(|t| AbrEnv::new(video.clone(), t.clone(), 0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NetworkTrace;
    use metis_rl::{rollout, ActionMode, ConstantPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(kbps: f64) -> AbrEnv {
        AbrEnv::new(
            Arc::new(VideoModel::standard(48, 7)),
            Arc::new(NetworkTrace::fixed(kbps, 1000.0)),
            0.0,
        )
    }

    #[test]
    fn obs_dim_is_25_as_in_the_paper() {
        assert_eq!(OBS_DIM, 25);
        let mut e = env(3000.0);
        assert_eq!(e.reset().len(), 25);
        assert_eq!(e.obs_dim(), 25);
        assert_eq!(feature_names().len(), 25);
    }

    #[test]
    fn episode_runs_to_video_end() {
        let mut e = env(3000.0);
        let mut rng = StdRng::seed_from_u64(0);
        let traj = rollout(
            &mut e,
            &ConstantPolicy {
                action: 2,
                n_actions: 6,
            },
            ActionMode::Greedy,
            1000,
            &mut rng,
        );
        assert_eq!(traj.len(), 48);
        assert!(traj.terminated);
    }

    #[test]
    fn reward_matches_qoe_formula() {
        let mut e = env(6000.0);
        e.reset();
        let s1 = e.step(2); // 1200kbps from initial 300kbps baseline
                            // First chunk: full download is a stall.
        let obs = AbrObservation::decode(&s1.obs);
        assert!(obs.buffer_s > 0.0);
        let m = QoeMetric::default();
        // Reward must equal the formula with measured rebuffer.
        assert!(s1.reward <= m.chunk_qoe(1200.0, 300.0, 0.0));
    }

    #[test]
    fn observation_decodes_consistently() {
        let mut e = env(2000.0);
        e.reset();
        let s = e.step(3);
        let obs = AbrObservation::decode(&s.obs);
        assert_eq!(obs.last_bitrate_kbps, 1850.0);
        assert_eq!(obs.last_quality(&crate::video::BITRATES_KBPS), 3);
        // Throughput on a fixed 2000kbps link is ~2 Mbps.
        let thr = *obs.throughput_mbps.last().unwrap();
        assert!((thr - 2.0).abs() < 0.1, "throughput {thr}");
        assert_eq!(obs.next_sizes_bytes.len(), 6);
        assert!(obs.remaining_frac < 1.0);
    }

    #[test]
    fn harmonic_mean_ignores_zeros() {
        let mut obs = AbrObservation::decode(&[0.0; OBS_DIM]);
        assert_eq!(obs.harmonic_throughput_mbps(5), 0.0);
        obs.throughput_mbps = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 4.0];
        let hm = obs.harmonic_throughput_mbps(5);
        assert!((hm - 8.0 / 3.0).abs() < 1e-9, "harmonic {hm}");
    }

    #[test]
    fn env_clone_counterfactuals_are_exact() {
        let mut e = env(1500.0);
        e.reset();
        e.step(1);
        let q = metis_rl::q_by_cloning(&e, |_| 0.0, 1.0);
        assert_eq!(q.len(), 6);
        // Picking the same bitrate again avoids the smoothness penalty,
        // so (absent stalls) q[1] is the 750kbps QoE with no switch term.
        let m = QoeMetric::default();
        assert!(q[1] <= m.chunk_qoe(750.0, 750.0, 0.0) + 1e-9);
        // Q must be reproducible (deterministic simulator).
        assert_eq!(q, metis_rl::q_by_cloning(&e, |_| 0.0, 1.0));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut e = env(2500.0);
        let first = e.reset();
        e.step(4);
        e.step(5);
        let again = e.reset();
        assert_eq!(first, again);
    }

    #[test]
    fn pool_builds_one_env_per_trace() {
        let video = Arc::new(VideoModel::standard(10, 1));
        let traces: Vec<Arc<NetworkTrace>> = crate::trace::hsdpa_corpus(4, 9)
            .into_iter()
            .map(Arc::new)
            .collect();
        assert_eq!(env_pool(&video, &traces).len(), 4);
    }
}
