//! The chunked-video model: every chunk is encoded at six bitrate ladders
//! (the Pensieve ladder, §5 of the paper) with deterministic per-chunk size
//! variation mimicking VBR encoding.

use serde::{Deserialize, Serialize};

/// The bitrate ladder used by Pensieve and by all experiments (kbps).
pub const BITRATES_KBPS: [f64; 6] = [300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0];

/// Chunk play-time in seconds.
pub const CHUNK_DURATION_S: f64 = 4.0;

/// Display labels for the ladder (used in tree rendering and reports).
pub fn bitrate_labels() -> Vec<String> {
    BITRATES_KBPS
        .iter()
        .map(|b| format!("{}kbps", *b as u64))
        .collect()
}

/// A video asset: `n_chunks` chunks, each encoded at every ladder rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoModel {
    n_chunks: usize,
    chunk_duration_s: f64,
    bitrates_kbps: Vec<f64>,
    /// `sizes_bytes[chunk][quality]`.
    sizes_bytes: Vec<Vec<f64>>,
}

/// SplitMix64 — deterministic per-chunk hash for VBR size jitter.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl VideoModel {
    /// Build a video with the standard ladder. `seed` controls the VBR
    /// jitter (±15% around the nominal chunk size, deterministic).
    pub fn standard(n_chunks: usize, seed: u64) -> Self {
        assert!(n_chunks > 0, "VideoModel: need at least one chunk");
        let bitrates = BITRATES_KBPS.to_vec();
        let sizes_bytes = (0..n_chunks)
            .map(|c| {
                // All qualities of one chunk share the same scene-complexity
                // jitter: complex scenes are bigger at every rung.
                let h = splitmix(seed ^ (c as u64).wrapping_mul(0x5851F42D4C957F2D));
                let jitter = 0.85 + 0.30 * (h as f64 / u64::MAX as f64);
                bitrates
                    .iter()
                    .map(|&b| b * 1000.0 / 8.0 * CHUNK_DURATION_S * jitter)
                    .collect()
            })
            .collect();
        VideoModel {
            n_chunks,
            chunk_duration_s: CHUNK_DURATION_S,
            bitrates_kbps: bitrates,
            sizes_bytes,
        }
    }

    /// The short (~190 s) sample video of the original Pensieve setup.
    pub fn pensieve_default(seed: u64) -> Self {
        Self::standard(48, seed)
    }

    /// The 1000-second video used by the paper's debugging deep dive (§6.3).
    pub fn long_debug_video(seed: u64) -> Self {
        Self::standard(250, seed)
    }

    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    pub fn n_qualities(&self) -> usize {
        self.bitrates_kbps.len()
    }

    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    pub fn bitrates_kbps(&self) -> &[f64] {
        &self.bitrates_kbps
    }

    pub fn bitrate_kbps(&self, quality: usize) -> f64 {
        self.bitrates_kbps[quality]
    }

    /// Size in bytes of one chunk at one quality.
    pub fn chunk_size_bytes(&self, chunk: usize, quality: usize) -> f64 {
        self.sizes_bytes[chunk][quality]
    }

    /// Sizes of every quality for a chunk (the "next chunk sizes" feature).
    pub fn chunk_sizes(&self, chunk: usize) -> &[f64] {
        &self.sizes_bytes[chunk]
    }

    /// Total play time in seconds.
    pub fn duration_s(&self) -> f64 {
        self.n_chunks as f64 * self.chunk_duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_video_shape() {
        let v = VideoModel::standard(48, 7);
        assert_eq!(v.n_chunks(), 48);
        assert_eq!(v.n_qualities(), 6);
        assert_eq!(v.duration_s(), 192.0);
    }

    #[test]
    fn sizes_scale_with_bitrate() {
        let v = VideoModel::standard(10, 7);
        for c in 0..10 {
            for q in 1..6 {
                assert!(
                    v.chunk_size_bytes(c, q) > v.chunk_size_bytes(c, q - 1),
                    "higher quality must be bigger"
                );
            }
        }
    }

    #[test]
    fn sizes_near_nominal() {
        let v = VideoModel::standard(100, 3);
        for c in 0..100 {
            for (q, &b) in BITRATES_KBPS.iter().enumerate() {
                let nominal = b * 1000.0 / 8.0 * CHUNK_DURATION_S;
                let s = v.chunk_size_bytes(c, q);
                assert!(
                    s >= 0.84 * nominal && s <= 1.16 * nominal,
                    "size {s} vs nominal {nominal}"
                );
            }
        }
    }

    #[test]
    fn jitter_varies_across_chunks_not_qualities() {
        let v = VideoModel::standard(20, 11);
        // Ratio size/bitrate must be constant within a chunk...
        for c in 0..20 {
            let r0 = v.chunk_size_bytes(c, 0) / BITRATES_KBPS[0];
            for (q, &kbps) in BITRATES_KBPS.iter().enumerate().skip(1) {
                let rq = v.chunk_size_bytes(c, q) / kbps;
                assert!((r0 - rq).abs() < 1e-9);
            }
        }
        // ...but differ between chunks.
        let r0 = v.chunk_size_bytes(0, 0);
        assert!((0..20).any(|c| (v.chunk_size_bytes(c, 0) - r0).abs() > 1.0));
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(VideoModel::standard(5, 42), VideoModel::standard(5, 42));
        assert_ne!(VideoModel::standard(5, 42), VideoModel::standard(5, 43));
    }

    #[test]
    fn labels_match_ladder() {
        let l = bitrate_labels();
        assert_eq!(l[0], "300kbps");
        assert_eq!(l[5], "4300kbps");
    }
}
