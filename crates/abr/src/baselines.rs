//! The five heuristic ABR baselines of the paper's evaluation (§5):
//! BB [34], RB [50], FESTIVE [37], BOLA [71], and robustMPC [82].
//!
//! Every baseline implements [`metis_rl::Policy`] over the same observation
//! the DNN sees (decoded via [`AbrObservation`]), so baselines, teacher
//! DNNs and student trees are all evaluated by the same rollout machinery.

use crate::env::AbrObservation;
use crate::qoe::QoeMetric;
use crate::video::{BITRATES_KBPS, CHUNK_DURATION_S};
use metis_rl::Policy;

fn onehot(n: usize, idx: usize) -> Vec<f64> {
    let mut p = vec![0.0; n];
    p[idx] = 1.0;
    p
}

/// Highest rung whose bitrate is at most `kbps` (rung 0 if none).
fn highest_below(kbps: f64) -> usize {
    let mut best = 0;
    for (i, &b) in BITRATES_KBPS.iter().enumerate() {
        if b <= kbps {
            best = i;
        }
    }
    best
}

/// **BB** — buffer-based rate adaptation (Huang et al., SIGCOMM 2014):
/// a reservoir of low-rate protection, then a linear cushion mapping
/// buffer occupancy to the ladder.
#[derive(Debug, Clone)]
pub struct BufferBased {
    pub reservoir_s: f64,
    pub cushion_s: f64,
}

impl Default for BufferBased {
    fn default() -> Self {
        BufferBased {
            reservoir_s: 5.0,
            cushion_s: 10.0,
        }
    }
}

impl Policy for BufferBased {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        let o = AbrObservation::decode(obs);
        let n = BITRATES_KBPS.len();
        let action = if o.buffer_s < self.reservoir_s {
            0
        } else if o.buffer_s >= self.reservoir_s + self.cushion_s {
            n - 1
        } else {
            let frac = (o.buffer_s - self.reservoir_s) / self.cushion_s;
            ((frac * (n - 1) as f64).floor() as usize).min(n - 1)
        };
        onehot(n, action)
    }
}

/// **RB** — rate-based: harmonic-mean throughput of the last 5 chunks,
/// pick the highest rung below it.
#[derive(Debug, Clone, Default)]
pub struct RateBased;

impl Policy for RateBased {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        let o = AbrObservation::decode(obs);
        let predicted_kbps = o.harmonic_throughput_mbps(5) * 1000.0;
        onehot(BITRATES_KBPS.len(), highest_below(predicted_kbps))
    }
}

/// **FESTIVE** (Jiang et al., CoNEXT 2012) — rate-based target with an
/// efficiency margin and gradual switch-up for stability.
#[derive(Debug, Clone)]
pub struct Festive {
    /// Fraction of predicted bandwidth considered safe to use.
    pub efficiency: f64,
}

impl Default for Festive {
    fn default() -> Self {
        Festive { efficiency: 0.85 }
    }
}

impl Policy for Festive {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        let o = AbrObservation::decode(obs);
        let target_kbps = o.harmonic_throughput_mbps(5) * 1000.0 * self.efficiency;
        let reference = highest_below(target_kbps);
        let last = o.last_quality(&BITRATES_KBPS);
        // Stability: step up at most one rung at a time; drop immediately.
        let action = if reference > last {
            last + 1
        } else {
            reference
        };
        onehot(BITRATES_KBPS.len(), action)
    }
}

/// **BOLA** (Spiteri et al., INFOCOM 2016) — Lyapunov-based buffer control:
/// maximize `(V·(u_q + γp) − Q) / S_q` where `u_q = ln(S_q/S_min)`,
/// `Q` is the buffer in chunks and `S_q` the chunk size.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Target maximum buffer, in chunks.
    pub buffer_target_chunks: f64,
    /// Rebuffer-vs-quality tradeoff γp (in utility units).
    pub gamma_p: f64,
}

impl Default for Bola {
    fn default() -> Self {
        Bola {
            buffer_target_chunks: 15.0,
            gamma_p: 5.0,
        }
    }
}

impl Policy for Bola {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        let o = AbrObservation::decode(obs);
        let n = BITRATES_KBPS.len();
        let s_min = BITRATES_KBPS[0];
        let utilities: Vec<f64> = BITRATES_KBPS.iter().map(|&b| (b / s_min).ln()).collect();
        // Control parameter V chosen so the top rung is preferred exactly
        // when the buffer reaches the target (standard BOLA tuning).
        let v = (self.buffer_target_chunks - 1.0) / (utilities[n - 1] + self.gamma_p);
        let q_chunks = o.buffer_s / CHUNK_DURATION_S;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..n {
            // Sizes proportional to bitrate; the constant cancels in argmax
            // scale but not in the score, so use relative size.
            let rel_size = BITRATES_KBPS[i] / s_min;
            let score = (v * (utilities[i] + self.gamma_p) - q_chunks) / rel_size;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        onehot(n, best)
    }
}

/// **robustMPC** (Yin et al., SIGCOMM 2015) — model-predictive control over
/// a 5-chunk horizon with a robust (discounted) throughput estimate.
#[derive(Debug, Clone)]
pub struct RobustMpc {
    pub horizon: usize,
    pub metric: QoeMetric,
}

impl Default for RobustMpc {
    fn default() -> Self {
        RobustMpc {
            horizon: 5,
            metric: QoeMetric::default(),
        }
    }
}

impl RobustMpc {
    /// Robust throughput: harmonic mean discounted by the recent maximum
    /// prediction error (computed inside the observation window, keeping
    /// the policy stateless).
    fn robust_throughput_mbps(o: &AbrObservation) -> f64 {
        let hm = o.harmonic_throughput_mbps(5);
        if hm <= 0.0 {
            return 0.0;
        }
        // Rolling one-step prediction errors within the window.
        let thr = &o.throughput_mbps;
        let mut max_err: f64 = 0.0;
        for t in 5..thr.len() {
            let past: Vec<f64> = thr[t - 5..t].iter().cloned().filter(|&x| x > 0.0).collect();
            if past.is_empty() || thr[t] <= 0.0 {
                continue;
            }
            let pred = past.len() as f64 / past.iter().map(|x| 1.0 / x).sum::<f64>();
            max_err = max_err.max((pred - thr[t]).abs() / thr[t]);
        }
        hm / (1.0 + max_err)
    }

    fn best_first_action(&self, o: &AbrObservation) -> usize {
        let n = BITRATES_KBPS.len();
        let thr_mbps = Self::robust_throughput_mbps(o);
        if thr_mbps <= 0.0 {
            return 0; // no estimate yet: be conservative
        }
        let rate_bytes_per_s = thr_mbps * 1e6 / 8.0;
        let last = o.last_quality(&BITRATES_KBPS);

        // Exhaustive search over the horizon (6^5 = 7776 sequences).
        let mut best_action = 0;
        let mut best_score = f64::NEG_INFINITY;
        let mut seq = vec![0usize; self.horizon];
        loop {
            // Simulate the buffer forward under the candidate sequence.
            let mut buffer = o.buffer_s;
            let mut prev = last;
            let mut score = 0.0;
            for (step, &q) in seq.iter().enumerate() {
                // First step uses the true next-chunk sizes; later steps
                // fall back to nominal sizes (future sizes unknown).
                let size = if step == 0 {
                    o.next_sizes_bytes[q]
                } else {
                    BITRATES_KBPS[q] * 1000.0 / 8.0 * CHUNK_DURATION_S
                };
                let dt = size / rate_bytes_per_s;
                let rebuf = (dt - buffer).max(0.0);
                buffer = (buffer - dt).max(0.0) + CHUNK_DURATION_S;
                score += self
                    .metric
                    .chunk_qoe(BITRATES_KBPS[q], BITRATES_KBPS[prev], rebuf);
                prev = q;
            }
            if score > best_score {
                best_score = score;
                best_action = seq[0];
            }
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                seq[i] += 1;
                if seq[i] < n {
                    break;
                }
                seq[i] = 0;
                i += 1;
                if i == self.horizon {
                    return best_action;
                }
            }
        }
    }
}

impl Policy for RobustMpc {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        let o = AbrObservation::decode(obs);
        onehot(BITRATES_KBPS.len(), self.best_first_action(&o))
    }
}

/// A fixed-bitrate "algorithm" (always the lowest rung) — the resource
/// baseline of Figure 17(b).
#[derive(Debug, Clone, Default)]
pub struct FixedLowest;

impl Policy for FixedLowest {
    fn action_probs(&self, _obs: &[f64]) -> Vec<f64> {
        onehot(BITRATES_KBPS.len(), 0)
    }
}

/// All named baselines, for sweep-style experiments.
pub fn baseline_names() -> Vec<&'static str> {
    vec!["BB", "RB", "FESTIVE", "BOLA", "rMPC"]
}

/// Instantiate a baseline by name.
pub fn baseline_by_name(name: &str) -> Box<dyn Policy + Sync> {
    match name {
        "BB" => Box::new(BufferBased::default()),
        "RB" => Box::new(RateBased),
        "FESTIVE" => Box::new(Festive::default()),
        "BOLA" => Box::new(Bola::default()),
        "rMPC" => Box::new(RobustMpc::default()),
        "Fixed" => Box::new(FixedLowest),
        other => panic!("unknown baseline {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{AbrEnv, OBS_DIM};
    use crate::trace::NetworkTrace;
    use crate::video::VideoModel;
    use metis_rl::{rollout, ActionMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Build a raw observation with the given buffer and throughput.
    fn obs_with(buffer_s: f64, thr_mbps: f64, last_quality: usize) -> Vec<f64> {
        let mut obs = vec![0.0; OBS_DIM];
        obs[0] = BITRATES_KBPS[last_quality] / 4300.0;
        obs[1] = buffer_s / 10.0;
        obs[2..10].fill(thr_mbps / 8.0);
        obs[10..18].fill(0.4); // 4s downloads
        for (k, &b) in BITRATES_KBPS.iter().enumerate() {
            obs[18 + k] = b * 1000.0 / 8.0 * 4.0 / 1e6;
        }
        obs[24] = 0.5;
        obs
    }

    #[test]
    fn bb_low_buffer_lowest_bitrate() {
        let bb = BufferBased::default();
        assert_eq!(bb.act_greedy(&obs_with(2.0, 5.0, 3)), 0);
        assert_eq!(bb.act_greedy(&obs_with(30.0, 5.0, 3)), 5);
        // Monotone in buffer.
        let mut prev = 0;
        for b in [5.0, 7.0, 9.0, 11.0, 13.0, 15.0] {
            let a = bb.act_greedy(&obs_with(b, 5.0, 3));
            assert!(a >= prev, "BB must be monotone in buffer");
            prev = a;
        }
    }

    #[test]
    fn rb_follows_throughput() {
        let rb = RateBased;
        assert_eq!(rb.act_greedy(&obs_with(10.0, 0.5, 0)), 0); // 500kbps -> 300
        assert_eq!(rb.act_greedy(&obs_with(10.0, 2.0, 0)), 3); // 2000kbps -> 1850
        assert_eq!(rb.act_greedy(&obs_with(10.0, 5.0, 0)), 5); // 5000 -> 4300
    }

    #[test]
    fn festive_steps_up_gradually() {
        let f = Festive::default();
        // Huge bandwidth but last quality 0: may only step to 1.
        assert_eq!(f.act_greedy(&obs_with(20.0, 6.0, 0)), 1);
        // Low bandwidth: drops immediately regardless of last quality.
        assert!(f.act_greedy(&obs_with(20.0, 0.4, 5)) <= 1);
    }

    #[test]
    fn bola_monotone_in_buffer() {
        let bola = Bola::default();
        let low = bola.act_greedy(&obs_with(1.0, 2.0, 2));
        let high = bola.act_greedy(&obs_with(55.0, 2.0, 2));
        assert!(low <= high);
        assert_eq!(low, 0, "near-empty buffer must choose the lowest rung");
        assert_eq!(high, 5, "a full buffer must allow the top rung");
    }

    #[test]
    fn rmpc_matches_bandwidth_on_steady_link() {
        let mpc = RobustMpc::default();
        // 3 Mbps steady at the steady-state buffer (~6 s): the sustainable
        // rung is 2850 kbps. (At a very full buffer, finite-horizon MPC
        // legitimately rides a higher rung until stalls enter the horizon.)
        let a = mpc.act_greedy(&obs_with(6.0, 3.0, 4));
        assert_eq!(a, 4, "rMPC should hold 2850kbps on a 3Mbps link");
        // 0.5 Mbps: must drop to the lowest rungs.
        let a_slow = mpc.act_greedy(&obs_with(4.0, 0.5, 4));
        assert!(
            a_slow <= 1,
            "rMPC must drop on a 0.5Mbps link, got {a_slow}"
        );
    }

    #[test]
    fn rmpc_no_estimate_is_conservative() {
        let mpc = RobustMpc::default();
        let obs = vec![0.0; OBS_DIM];
        assert_eq!(mpc.act_greedy(&obs), 0);
    }

    #[test]
    fn all_baselines_complete_an_episode() {
        let video = Arc::new(VideoModel::standard(20, 3));
        let trace = Arc::new(NetworkTrace::fixed(2000.0, 400.0));
        let mut rng = StdRng::seed_from_u64(0);
        for name in baseline_names() {
            let policy = baseline_by_name(name);
            let mut env = AbrEnv::new(video.clone(), trace.clone(), 0.0);
            let traj = rollout(&mut env, policy.as_ref(), ActionMode::Greedy, 100, &mut rng);
            assert_eq!(traj.len(), 20, "{name} must finish the video");
            assert!(traj.terminated);
            assert!(
                traj.total_reward().is_finite(),
                "{name} produced a non-finite QoE"
            );
        }
    }

    #[test]
    fn baselines_beat_fixed_lowest_on_good_link() {
        let video = Arc::new(VideoModel::standard(30, 5));
        let trace = Arc::new(NetworkTrace::fixed(4000.0, 600.0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut score = |p: &dyn Policy| {
            let mut env = AbrEnv::new(video.clone(), trace.clone(), 0.0);
            rollout(&mut env, p, ActionMode::Greedy, 100, &mut rng).total_reward()
        };
        let fixed = score(&FixedLowest);
        for name in baseline_names() {
            let s = score(baseline_by_name(name).as_ref());
            assert!(
                s > fixed,
                "{name} ({s:.2}) should beat always-lowest ({fixed:.2}) on a 4Mbps link"
            );
        }
    }
}
