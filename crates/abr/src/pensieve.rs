//! The Pensieve-style deep-RL ABR agent, in both architectures of the
//! paper's Figure 10:
//!
//! * [`PensieveArch::Original`] — state → 2×128 hidden → 6 logits,
//! * [`PensieveArch::LastBitrateSkip`] — the §6.2 redesign: the last-chunk
//!   bitrate `r_t` is additionally concatenated onto the final hidden layer
//!   so it reaches the output directly. Mathematically equivalent in
//!   expressive power, but the shorter path makes the optimizer exploit the
//!   feature Metis identified as dominant (Figure 7's top split).

use crate::env::AbrEnv;
use metis_nn::{Activation, Dense, Init, Matrix, Mlp, Network, ParamGrad};
use metis_rl::{ActorCritic, TrainConfig};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Which Figure-10 structure to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PensieveArch {
    Original,
    LastBitrateSkip,
}

/// The Pensieve actor network.
///
/// Layout: `x → Dense(in,h) → Dense(h,h)`; the head consumes either the
/// hidden vector (Original) or `[hidden ‖ r_t]` (LastBitrateSkip), where
/// `r_t` is input feature 0 (the last-bitrate observation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PensieveNet {
    arch: PensieveArch,
    l1: Dense,
    l2: Dense,
    head: Dense,
    #[serde(skip)]
    cache_input: Option<Matrix>,
}

impl PensieveNet {
    pub fn new(
        arch: PensieveArch,
        obs_dim: usize,
        hidden: usize,
        n_actions: usize,
        rng: &mut StdRng,
    ) -> Self {
        let head_in = match arch {
            PensieveArch::Original => hidden,
            PensieveArch::LastBitrateSkip => hidden + 1,
        };
        PensieveNet {
            arch,
            l1: Dense::new(obs_dim, hidden, Activation::Tanh, Init::XavierUniform, rng),
            l2: Dense::new(hidden, hidden, Activation::Tanh, Init::XavierUniform, rng),
            head: Dense::new(
                head_in,
                n_actions,
                Activation::Linear,
                Init::XavierUniform,
                rng,
            ),
            cache_input: None,
        }
    }

    pub fn arch(&self) -> PensieveArch {
        self.arch
    }

    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count() + self.head.param_count()
    }

    /// Serialized artifact size in bytes (deployment cost model).
    pub fn artifact_bytes(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Extract the `r_t` column (input feature 0) as a `(batch, 1)` matrix.
    fn rt_column(input: &Matrix) -> Matrix {
        Matrix::from_fn(input.rows(), 1, |r, _| input[(r, 0)])
    }
}

impl Network for PensieveNet {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cache_input = Some(input.clone());
        let h = self.l2.forward(&self.l1.forward(input));
        match self.arch {
            PensieveArch::Original => self.head.forward(&h),
            PensieveArch::LastBitrateSkip => self.head.forward(&h.hconcat(&Self::rt_column(input))),
        }
    }

    fn forward_inference(&self, input: &Matrix) -> Matrix {
        let h = self.l2.forward_inference(&self.l1.forward_inference(input));
        match self.arch {
            PensieveArch::Original => self.head.forward_inference(&h),
            PensieveArch::LastBitrateSkip => self
                .head
                .forward_inference(&h.hconcat(&Self::rt_column(input))),
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let g_head_in = self.head.backward(grad_out);
        let (g_hidden, g_rt) = match self.arch {
            PensieveArch::Original => (g_head_in, None),
            PensieveArch::LastBitrateSkip => {
                let (gh, gr) = g_head_in.hsplit(1);
                (gh, Some(gr))
            }
        };
        let mut g_input = self.l1.backward(&self.l2.backward(&g_hidden));
        if let Some(gr) = g_rt {
            // Route the skip gradient back onto input feature 0.
            for r in 0..g_input.rows() {
                g_input[(r, 0)] += gr[(r, 0)];
            }
        }
        g_input
    }

    fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
        self.head.zero_grad();
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p.extend(self.head.params());
        p
    }

    fn in_dim(&self) -> usize {
        self.l1.in_dim()
    }

    fn out_dim(&self) -> usize {
        self.head.out_dim()
    }
}

/// Default Pensieve training configuration (scaled-down single-process A3C;
/// see DESIGN.md §1.3, substitution 6).
pub fn pensieve_train_config() -> TrainConfig {
    TrainConfig {
        gamma: 0.99,
        actor_lr: 1e-3,
        critic_lr: 2e-3,
        entropy_coef: 0.02,
        episodes_per_epoch: 8,
        max_steps: 512,
        grad_clip: 5.0,
        normalize_advantages: true,
    }
}

/// Build an untrained Pensieve agent (actor + critic) for the given
/// architecture.
pub fn pensieve_agent(
    arch: PensieveArch,
    hidden: usize,
    rng: &mut StdRng,
) -> ActorCritic<PensieveNet> {
    let obs_dim = crate::env::OBS_DIM;
    let actor = PensieveNet::new(
        arch,
        obs_dim,
        hidden,
        crate::video::BITRATES_KBPS.len(),
        rng,
    );
    let critic = Mlp::new(
        &[obs_dim, hidden, 1],
        Activation::Tanh,
        Activation::Linear,
        rng,
    );
    ActorCritic::from_networks(actor, critic, pensieve_train_config())
}

/// Train a Pensieve agent for `epochs` epochs on an environment pool,
/// returning per-epoch mean returns (the Figure-11 training curve).
pub fn train_pensieve(
    agent: &mut ActorCritic<PensieveNet>,
    pool: &[AbrEnv],
    epochs: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut curve = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let stats = agent.train_epoch(pool, rng);
        curve.push(stats.mean_return);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::OBS_DIM;
    use crate::trace::NetworkTrace;
    use crate::video::VideoModel;
    use metis_nn::loss;
    use metis_rl::{evaluate, Policy};
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn shapes_for_both_architectures() {
        let mut rng = StdRng::seed_from_u64(0);
        for arch in [PensieveArch::Original, PensieveArch::LastBitrateSkip] {
            let net = PensieveNet::new(arch, OBS_DIM, 32, 6, &mut rng);
            assert_eq!(net.in_dim(), OBS_DIM);
            assert_eq!(net.out_dim(), 6);
            let out = net.predict(&[0.1; OBS_DIM]);
            assert_eq!(out.len(), 6);
        }
    }

    #[test]
    fn skip_arch_has_six_more_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let orig = PensieveNet::new(PensieveArch::Original, OBS_DIM, 32, 6, &mut rng);
        let skip = PensieveNet::new(PensieveArch::LastBitrateSkip, OBS_DIM, 32, 6, &mut rng);
        assert_eq!(skip.param_count(), orig.param_count() + 6);
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = StdRng::seed_from_u64(1);
        for arch in [PensieveArch::Original, PensieveArch::LastBitrateSkip] {
            let mut net = PensieveNet::new(arch, 5, 8, 3, &mut rng);
            let x = Matrix::from_rows(&[&[0.5, 0.1, -0.2, 0.3, 0.9]]);
            assert_eq!(net.forward(&x), net.forward_inference(&x));
        }
    }

    /// Finite-difference gradient check through the skip architecture —
    /// validates the manual gradient routing of the concatenation.
    #[test]
    fn skip_net_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = PensieveNet::new(PensieveArch::LastBitrateSkip, 4, 6, 3, &mut rng);
        let x = Matrix::from_rows(&[&[0.7, -0.2, 0.4, 0.1]]);
        let target = 2usize;
        let logits = net.forward(&x);
        let (_, grad) = loss::softmax_cross_entropy(logits.row(0), target);
        net.zero_grad();
        let gin = net.backward(&Matrix::row_vector(&grad));
        let eps = 1e-6;
        for c in 0..4 {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let (lp, _) = loss::softmax_cross_entropy(net.forward_inference(&xp).row(0), target);
            let (lm, _) = loss::softmax_cross_entropy(net.forward_inference(&xm).row(0), target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin[(0, c)]).abs() < 1e-5,
                "skip-net grad mismatch at input {c}: fd={fd} got={}",
                gin[(0, c)]
            );
        }
    }

    #[test]
    fn rt_gradient_flows_through_skip() {
        // With the skip, input 0 must receive gradient from BOTH paths;
        // zero out the tower and only the skip remains.
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = PensieveNet::new(PensieveArch::LastBitrateSkip, 3, 4, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, 0.0, 0.0]]);
        net.forward(&x);
        net.zero_grad();
        let gin = net.backward(&Matrix::row_vector(&[1.0, 0.0]));
        assert!(gin[(0, 0)].abs() > 0.0, "r_t must receive gradient");
    }

    #[test]
    fn untrained_agent_runs_and_training_improves_it() {
        let mut rng = StdRng::seed_from_u64(77);
        let video = Arc::new(VideoModel::standard(16, 3));
        let trace = Arc::new(NetworkTrace::fixed(2000.0, 400.0));
        let pool = vec![AbrEnv::new(video, trace, 0.0)];
        let mut agent = pensieve_agent(PensieveArch::Original, 24, &mut rng);
        let before = evaluate(&pool[0], &agent.policy, 1, 100, &mut rng);
        let curve = train_pensieve(&mut agent, &pool, 60, &mut rng);
        assert_eq!(curve.len(), 60);
        let after = evaluate(&pool[0], &agent.policy, 1, 100, &mut rng);
        assert!(
            after > before,
            "training should improve QoE: before {before:.3}, after {after:.3}"
        );
        // And the learned policy must produce valid distributions.
        let probs = agent.policy.action_probs(&[0.1; OBS_DIM]);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = PensieveNet::new(PensieveArch::LastBitrateSkip, OBS_DIM, 16, 6, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let back: PensieveNet = serde_json::from_str(&json).unwrap();
        let x = vec![0.3; OBS_DIM];
        for (a, b) in net.predict(&x).iter().zip(back.predict(&x).iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(net.artifact_bytes() > 1000);
    }
}
