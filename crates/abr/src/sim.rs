//! The chunk download / playback-buffer mechanics shared by the RL
//! environment and the heuristic-baseline evaluations. Mirrors the Pensieve
//! simulator: sequential chunk downloads over a bandwidth trace, a playback
//! buffer capped at 60 s (the client sleeps when it is full), rebuffering
//! whenever a download outlasts the buffer.

use crate::trace::NetworkTrace;
use crate::video::VideoModel;
use std::sync::Arc;

/// Playback buffer cap in seconds.
pub const BUFFER_CAP_S: f64 = 60.0;

/// Outcome of downloading one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkDownload {
    pub quality: usize,
    pub size_bytes: f64,
    pub download_time_s: f64,
    /// Stall time incurred while this chunk downloaded.
    pub rebuffer_s: f64,
    /// Client sleep after the download because the buffer was full.
    pub sleep_s: f64,
    /// Buffer level after the chunk was appended (and any sleep).
    pub buffer_after_s: f64,
}

/// A single client session streaming `video` over `trace`.
#[derive(Debug, Clone)]
pub struct StreamingSession {
    video: Arc<VideoModel>,
    trace: Arc<NetworkTrace>,
    /// Absolute position on the trace (download clock).
    time_s: f64,
    buffer_s: f64,
    next_chunk: usize,
}

impl StreamingSession {
    /// Start a session at `trace_offset_s` into the bandwidth trace.
    pub fn new(video: Arc<VideoModel>, trace: Arc<NetworkTrace>, trace_offset_s: f64) -> Self {
        StreamingSession {
            video,
            trace,
            time_s: trace_offset_s,
            buffer_s: 0.0,
            next_chunk: 0,
        }
    }

    pub fn video(&self) -> &VideoModel {
        &self.video
    }

    pub fn trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// Index of the chunk the next download will fetch.
    pub fn next_chunk(&self) -> usize {
        self.next_chunk
    }

    /// Chunks still to download.
    pub fn chunks_remaining(&self) -> usize {
        self.video.n_chunks() - self.next_chunk
    }

    pub fn finished(&self) -> bool {
        self.next_chunk >= self.video.n_chunks()
    }

    pub fn buffer_s(&self) -> f64 {
        self.buffer_s
    }

    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Download the next chunk at `quality`, advancing the session clock,
    /// draining/refilling the buffer, and accounting rebuffer and sleep.
    ///
    /// # Panics
    /// Panics if the session is finished or `quality` is out of range.
    pub fn download_next(&mut self, quality: usize) -> ChunkDownload {
        assert!(
            !self.finished(),
            "download_next called on a finished session"
        );
        assert!(quality < self.video.n_qualities(), "quality out of range");

        let size = self.video.chunk_size_bytes(self.next_chunk, quality);
        let dt = self.trace.download_time(self.time_s, size);
        self.time_s += dt;

        // Buffer drains while downloading; a stall occurs if it runs dry.
        let rebuffer = (dt - self.buffer_s).max(0.0);
        self.buffer_s = (self.buffer_s - dt).max(0.0) + self.video.chunk_duration_s();

        // If the buffer exceeds the cap, the client pauses requests while
        // playback drains it back to the cap.
        let sleep = (self.buffer_s - BUFFER_CAP_S).max(0.0);
        if sleep > 0.0 {
            self.time_s += sleep;
            self.buffer_s = BUFFER_CAP_S;
        }

        self.next_chunk += 1;
        ChunkDownload {
            quality,
            size_bytes: size,
            download_time_s: dt,
            rebuffer_s: rebuffer,
            sleep_s: sleep,
            buffer_after_s: self.buffer_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NetworkTrace;
    use crate::video::VideoModel;
    use proptest::prelude::*;

    fn session(kbps: f64) -> StreamingSession {
        StreamingSession::new(
            Arc::new(VideoModel::standard(48, 7)),
            Arc::new(NetworkTrace::fixed(kbps, 1000.0)),
            0.0,
        )
    }

    #[test]
    fn first_chunk_always_stalls() {
        // Empty buffer: the whole first download is a stall.
        let mut s = session(3000.0);
        let d = s.download_next(0);
        assert!(d.rebuffer_s > 0.0);
        assert!((d.rebuffer_s - d.download_time_s).abs() < 1e-12);
        assert!((d.buffer_after_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fast_link_builds_buffer_no_more_stalls() {
        let mut s = session(6000.0);
        s.download_next(0);
        let mut total_rebuf = 0.0;
        while !s.finished() {
            total_rebuf += s.download_next(2).rebuffer_s;
        }
        assert_eq!(total_rebuf, 0.0, "1200kbps on a 6Mbps link must not stall");
        assert!(s.buffer_s() > 4.0);
    }

    #[test]
    fn oversized_bitrate_on_slow_link_stalls() {
        let mut s = session(500.0);
        s.download_next(0);
        let mut stalls = 0;
        for _ in 0..10 {
            if s.download_next(5).rebuffer_s > 0.0 {
                stalls += 1;
            }
        }
        assert!(
            stalls >= 9,
            "4300kbps on a 500kbps link must stall, got {stalls}/10"
        );
    }

    #[test]
    fn buffer_cap_triggers_sleep() {
        let mut s = session(6000.0);
        let mut slept = false;
        while !s.finished() {
            let d = s.download_next(0);
            assert!(d.buffer_after_s <= BUFFER_CAP_S + 1e-9);
            slept |= d.sleep_s > 0.0;
        }
        assert!(slept, "tiny chunks on a fast link must hit the buffer cap");
    }

    #[test]
    fn chunk_accounting() {
        let mut s = session(3000.0);
        assert_eq!(s.chunks_remaining(), 48);
        s.download_next(1);
        assert_eq!(s.next_chunk(), 1);
        assert_eq!(s.chunks_remaining(), 47);
        while !s.finished() {
            s.download_next(1);
        }
        assert_eq!(s.chunks_remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "finished session")]
    fn download_after_finish_panics() {
        let mut s = session(3000.0);
        while !s.finished() {
            s.download_next(0);
        }
        s.download_next(0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = session(3000.0);
        a.download_next(2);
        let mut b = a.clone();
        let da = a.download_next(3);
        let db = b.download_next(3);
        assert_eq!(da, db, "clones must evolve identically from the same state");
        b.download_next(0);
        assert_eq!(a.next_chunk(), 2);
        assert_eq!(
            b.next_chunk(),
            3,
            "advancing the clone must not move the original"
        );
    }

    proptest! {
        /// Invariants under arbitrary action sequences on arbitrary fixed
        /// links: buffer in [0, cap], time monotone, rebuffer/sleep >= 0.
        #[test]
        fn prop_session_invariants(
            kbps in 300.0_f64..6000.0,
            actions in proptest::collection::vec(0usize..6, 48)
        ) {
            let mut s = session(kbps);
            let mut last_time = 0.0;
            for &a in &actions {
                if s.finished() { break; }
                let d = s.download_next(a);
                prop_assert!(d.rebuffer_s >= 0.0);
                prop_assert!(d.sleep_s >= 0.0);
                prop_assert!(d.download_time_s > 0.0);
                prop_assert!((0.0..=BUFFER_CAP_S + 1e-9).contains(&d.buffer_after_s));
                prop_assert!(s.time_s() > last_time);
                last_time = s.time_s();
            }
        }

        /// Download time equals bytes/rate on a fixed link.
        #[test]
        fn prop_fixed_link_download_time(kbps in 300.0_f64..6000.0, q in 0usize..6) {
            let mut s = session(kbps);
            let d = s.download_next(q);
            let expected = d.size_bytes / (kbps * 1000.0 / 8.0);
            prop_assert!((d.download_time_s - expected).abs() < 1e-6);
        }
    }
}
