//! Network bandwidth traces and synthetic generators.
//!
//! The paper evaluates on 250 HSDPA (Norwegian 3G commute) and 205 FCC
//! (US fixed broadband) traces; those datasets are not available offline,
//! so we generate Markov-modulated bandwidth processes matched to their
//! published characteristics (DESIGN.md §1.3, substitution 1):
//!
//! * **HSDPA-like** — mobile: low mean (~1.2 Mbps), bursty, deep fades,
//!   strong temporal correlation.
//! * **FCC-like** — broadband: higher mean (~2.3 Mbps after Pensieve's
//!   0.2–6 Mbps filtering), lower variance, occasional congestion dips.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A piecewise-constant bandwidth trace. Between `timestamps_s[i]` and
/// `timestamps_s[i+1]` the bandwidth is `bandwidths_kbps[i]`; playback
/// wraps around at the end (like the Pensieve simulator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    pub name: String,
    pub timestamps_s: Vec<f64>,
    pub bandwidths_kbps: Vec<f64>,
}

impl NetworkTrace {
    /// Construct and validate a trace.
    pub fn new(name: impl Into<String>, timestamps_s: Vec<f64>, bandwidths_kbps: Vec<f64>) -> Self {
        assert!(
            !timestamps_s.is_empty(),
            "trace must have at least one point"
        );
        assert_eq!(
            timestamps_s.len(),
            bandwidths_kbps.len(),
            "trace arrays must align"
        );
        assert!(
            timestamps_s.windows(2).all(|w| w[1] > w[0]),
            "timestamps must be strictly increasing"
        );
        assert!(
            bandwidths_kbps.iter().all(|&b| b > 0.0 && b.is_finite()),
            "bandwidths must be positive"
        );
        NetworkTrace {
            name: name.into(),
            timestamps_s,
            bandwidths_kbps,
        }
    }

    /// A constant-bandwidth trace (the §6.3 fixed-link debugging setup).
    pub fn fixed(kbps: f64, duration_s: f64) -> Self {
        NetworkTrace::new(
            format!("fixed-{}kbps", kbps as u64),
            vec![0.0, duration_s],
            vec![kbps, kbps],
        )
    }

    /// Total covered duration before wrap-around.
    pub fn duration_s(&self) -> f64 {
        *self.timestamps_s.last().unwrap()
    }

    /// Bandwidth at an absolute time (wraps around).
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        let d = self.duration_s();
        // A single-point trace is constant.
        if self.timestamps_s.len() == 1 || d <= 0.0 {
            return self.bandwidths_kbps[0];
        }
        let t = t.rem_euclid(d);
        // Find the segment containing t.
        match self
            .timestamps_s
            .binary_search_by(|ts| ts.partial_cmp(&t).unwrap())
        {
            Ok(i) => self.bandwidths_kbps[i.min(self.bandwidths_kbps.len() - 1)],
            Err(0) => self.bandwidths_kbps[0],
            Err(i) => self.bandwidths_kbps[i - 1],
        }
    }

    /// Time needed to download `bytes` starting at absolute time `start_s`,
    /// integrating the piecewise-constant bandwidth (with wrap-around).
    pub fn download_time(&self, start_s: f64, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        if bytes == 0.0 {
            return 0.0;
        }
        let mut remaining = bytes;
        let mut t = start_s;
        let mut elapsed = 0.0;
        // Advance in sub-second steps bounded by segment edges.
        let step_cap: f64 = 1.0; // seconds; matches the 1 s granularity of traces
        loop {
            let bw_bytes_per_s = self.bandwidth_at(t) * 1000.0 / 8.0;
            let dt = step_cap.min(remaining / bw_bytes_per_s);
            let got = bw_bytes_per_s * dt;
            remaining -= got;
            t += dt;
            elapsed += dt;
            if remaining <= 1e-9 {
                return elapsed;
            }
            // Safety valve: pathological traces cannot stall forever since
            // bandwidths are validated positive, but guard regardless.
            assert!(
                elapsed < 1e7,
                "download_time diverged: {remaining} bytes left after {elapsed} s"
            );
        }
    }

    /// Mean bandwidth (time-weighted) in kbps.
    pub fn mean_kbps(&self) -> f64 {
        if self.timestamps_s.len() == 1 {
            return self.bandwidths_kbps[0];
        }
        let mut acc = 0.0;
        let mut total = 0.0;
        for w in 0..self.timestamps_s.len() - 1 {
            let dt = self.timestamps_s[w + 1] - self.timestamps_s[w];
            acc += self.bandwidths_kbps[w] * dt;
            total += dt;
        }
        acc / total
    }
}

/// Parameters of the Markov-modulated generator.
#[derive(Debug, Clone)]
pub struct TraceGenConfig {
    /// Mean of the log-bandwidth random walk (kbps).
    pub mean_kbps: f64,
    /// Per-step standard deviation of the log random walk.
    pub volatility: f64,
    /// Mean-reversion strength toward `mean_kbps` (0..1).
    pub reversion: f64,
    /// Probability per step of entering a deep fade.
    pub fade_prob: f64,
    /// Multiplier applied during a fade.
    pub fade_depth: f64,
    /// Trace duration in seconds (1 s granularity).
    pub duration_s: usize,
    /// Clamp range (Pensieve filters traces to 0.2–6 Mbps).
    pub min_kbps: f64,
    pub max_kbps: f64,
}

impl TraceGenConfig {
    /// Mobile 3G profile (HSDPA-like).
    pub fn hsdpa_like() -> Self {
        TraceGenConfig {
            mean_kbps: 1200.0,
            volatility: 0.35,
            reversion: 0.15,
            fade_prob: 0.02,
            fade_depth: 0.25,
            duration_s: 320,
            min_kbps: 200.0,
            max_kbps: 6000.0,
        }
    }

    /// Fixed-broadband profile (FCC-like).
    pub fn fcc_like() -> Self {
        TraceGenConfig {
            mean_kbps: 2300.0,
            volatility: 0.12,
            reversion: 0.25,
            fade_prob: 0.005,
            fade_depth: 0.4,
            duration_s: 320,
            min_kbps: 200.0,
            max_kbps: 6000.0,
        }
    }
}

/// Standard normal via Box–Muller (keeps us inside the allowed `rand` API).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate one trace from a profile.
pub fn generate_trace(cfg: &TraceGenConfig, name: impl Into<String>, seed: u64) -> NetworkTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log_bw = cfg.mean_kbps.ln() + gauss(&mut rng) * cfg.volatility;
    let mut fade_left = 0usize;
    let mut timestamps = Vec::with_capacity(cfg.duration_s);
    let mut bandwidths = Vec::with_capacity(cfg.duration_s);
    for t in 0..cfg.duration_s {
        // Mean-reverting log random walk.
        log_bw += cfg.reversion * (cfg.mean_kbps.ln() - log_bw) + gauss(&mut rng) * cfg.volatility;
        if fade_left == 0 && rng.gen_range(0.0..1.0) < cfg.fade_prob {
            fade_left = rng.gen_range(3..10); // fades last a few seconds
        }
        let mut bw = log_bw.exp();
        if fade_left > 0 {
            bw *= cfg.fade_depth;
            fade_left -= 1;
        }
        timestamps.push(t as f64);
        bandwidths.push(bw.clamp(cfg.min_kbps, cfg.max_kbps));
    }
    NetworkTrace::new(name, timestamps, bandwidths)
}

/// Generate the HSDPA-like corpus (paper: 250 traces).
pub fn hsdpa_corpus(count: usize, seed: u64) -> Vec<NetworkTrace> {
    (0..count)
        .map(|i| {
            generate_trace(
                &TraceGenConfig::hsdpa_like(),
                format!("hsdpa-{i}"),
                seed ^ (i as u64) << 17 | 1,
            )
        })
        .collect()
}

/// Generate the FCC-like corpus (paper: 205 traces).
pub fn fcc_corpus(count: usize, seed: u64) -> Vec<NetworkTrace> {
    (0..count)
        .map(|i| {
            generate_trace(
                &TraceGenConfig::fcc_like(),
                format!("fcc-{i}"),
                seed ^ (i as u64) << 21 | 2,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_trace_constant() {
        let t = NetworkTrace::fixed(3000.0, 100.0);
        assert_eq!(t.bandwidth_at(0.0), 3000.0);
        assert_eq!(t.bandwidth_at(55.5), 3000.0);
        assert_eq!(t.bandwidth_at(250.0), 3000.0); // wraps
        assert!((t.mean_kbps() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn download_time_fixed_rate() {
        let t = NetworkTrace::fixed(8000.0, 100.0); // 1 MB/s
        let dt = t.download_time(0.0, 2_000_000.0);
        assert!((dt - 2.0).abs() < 1e-6, "expected 2 s, got {dt}");
    }

    #[test]
    fn download_time_integrates_across_segments() {
        // 1 MB/s for 2 s, then 0.5 MB/s.
        let t = NetworkTrace::new("seg", vec![0.0, 2.0, 100.0], vec![8000.0, 4000.0, 4000.0]);
        // 3 MB: 2 MB in the first 2 s, remaining 1 MB at 0.5 MB/s -> 2 s.
        let dt = t.download_time(0.0, 3_000_000.0);
        assert!((dt - 4.0).abs() < 1e-6, "expected 4 s, got {dt}");
    }

    #[test]
    fn download_time_wraps_around() {
        let t = NetworkTrace::new("short", vec![0.0, 10.0], vec![8000.0, 8000.0]);
        // Start near the end; crosses the wrap boundary seamlessly.
        let dt = t.download_time(9.0, 5_000_000.0);
        assert!((dt - 5.0).abs() < 1e-6, "expected 5 s, got {dt}");
    }

    #[test]
    fn bandwidth_lookup_segments() {
        let t = NetworkTrace::new("seg", vec![0.0, 1.0, 2.0], vec![100.0, 200.0, 300.0]);
        assert_eq!(t.bandwidth_at(0.0), 100.0);
        assert_eq!(t.bandwidth_at(0.99), 100.0);
        assert_eq!(t.bandwidth_at(1.0), 200.0);
        assert_eq!(t.bandwidth_at(1.5), 200.0);
        // Duration is 2.0, so t=2.5 wraps to 0.5 -> first segment.
        assert_eq!(t.bandwidth_at(2.5), 100.0);
    }

    #[test]
    fn corpus_statistics_match_profiles() {
        let hsdpa = hsdpa_corpus(30, 42);
        let fcc = fcc_corpus(30, 42);
        let mean =
            |ts: &[NetworkTrace]| ts.iter().map(|t| t.mean_kbps()).sum::<f64>() / ts.len() as f64;
        let m_h = mean(&hsdpa);
        let m_f = mean(&fcc);
        assert!(m_h > 600.0 && m_h < 2200.0, "hsdpa mean {m_h}");
        assert!(m_f > 1600.0 && m_f < 3400.0, "fcc mean {m_f}");
        assert!(m_f > m_h, "fcc should be faster than hsdpa on average");
        // Variability: coefficient of variation within a trace.
        let cv = |t: &NetworkTrace| {
            let m = t.mean_kbps();
            let var = t
                .bandwidths_kbps
                .iter()
                .map(|b| (b - m) * (b - m))
                .sum::<f64>()
                / t.bandwidths_kbps.len() as f64;
            var.sqrt() / m
        };
        let cv_h = hsdpa.iter().map(cv).sum::<f64>() / 30.0;
        let cv_f = fcc.iter().map(cv).sum::<f64>() / 30.0;
        assert!(cv_h > cv_f, "hsdpa must be burstier: {cv_h} vs {cv_f}");
    }

    #[test]
    fn traces_respect_clamps() {
        for t in hsdpa_corpus(10, 1) {
            assert!(t
                .bandwidths_kbps
                .iter()
                .all(|&b| (200.0..=6000.0).contains(&b)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&TraceGenConfig::hsdpa_like(), "x", 5);
        let b = generate_trace(&TraceGenConfig::hsdpa_like(), "x", 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_timestamps() {
        let _ = NetworkTrace::new("bad", vec![0.0, 2.0, 1.0], vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = generate_trace(&TraceGenConfig::fcc_like(), "t", 9);
        let json = serde_json::to_string(&t).unwrap();
        let back: NetworkTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t.name, back.name);
        assert_eq!(t.bandwidths_kbps.len(), back.bandwidths_kbps.len());
    }
}
