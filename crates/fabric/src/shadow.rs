//! Shadow serving: stage the next model beside the live one, replay
//! mirrored traffic through both, and only hot-swap when the audit says
//! so.
//!
//! A staged *candidate* — a [`ServedModel`], so a single compiled tree
//! or a majority-vote [`metis_dt::Forest`] ensemble — pins the live
//! epoch it would replace ([`metis_serve::ModelRegistry::current`] at
//! staging time) as its **baseline**. Mirrored feature rows are diffed
//! bit-exactly — candidate vs baseline — via
//! [`ServedModel::diff_batch`] (the same comparator as
//! [`metis_dt::CompiledTree::diff_batch`], so tree and ensemble audits
//! share one semantics); once `audit_rows` rows have been mirrored the
//! [`PromotePolicy`] decides:
//!
//! * [`PromotePolicy::OnZeroDiff`] — promote only a clean audit: the swap
//!   is provably a behavioural no-op on observed traffic (a safe
//!   refresh); a dirty candidate is *rejected* and its mismatch count
//!   surfaced instead of silently going live.
//! * [`PromotePolicy::AfterAudit`] — promote unconditionally once
//!   audited, recording how many mirrored rows changed answer. This is
//!   the serve-while-converting mode: each conversion round's student
//!   *should* differ, and the audit quantifies by how much before it
//!   takes traffic.
//! * [`PromotePolicy::Hold`] — never auto-promote; audits accumulate for
//!   an operator decision.
//!
//! Mirroring costs: most submits pay one feature-row copy while a
//! candidate is staged (and nothing when none is); the submit that
//! crosses the flush threshold additionally pays the batched diff of its
//! buffered block under the scenario's shadow lock, and the one that
//! crosses the audit quota pays the registry pointer swap (the candidate
//! is compiled at staging time, never on the submit path). Promotion is
//! a compare-and-swap on the baseline epoch: if a direct publish landed
//! mid-audit, the candidate is *superseded* — recorded, never installed.

use metis_serve::{EpochModel, ModelRegistry, ServedModel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What to do with a staged candidate once its audit quota is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotePolicy {
    /// Promote only when every mirrored row answered identically to the
    /// baseline; reject otherwise.
    OnZeroDiff,
    /// Promote once audited, whatever the diff count (recorded in the
    /// [`PromotionRecord`]).
    AfterAudit,
    /// Accumulate audits, never auto-promote.
    Hold,
}

/// Shadow-serving knobs of one scenario.
#[derive(Debug, Clone, Copy)]
pub struct ShadowConfig {
    /// Mirrored rows a candidate must see before a promotion decision.
    pub audit_rows: usize,
    /// Decision rule at the quota.
    pub policy: PromotePolicy,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            audit_rows: 256,
            policy: PromotePolicy::OnZeroDiff,
        }
    }
}

/// One audited hot swap that went live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromotionRecord {
    /// Epoch the candidate became.
    pub epoch: u64,
    /// Live epoch the candidate was audited against.
    pub baseline_epoch: u64,
    /// Mirrored rows in the audit.
    pub audited_rows: usize,
    /// Rows that answered differently from the baseline (always 0 under
    /// [`PromotePolicy::OnZeroDiff`]).
    pub mismatches: usize,
    /// Ensemble width of the promoted model (1 = a single tree, k = a
    /// k-tree majority-vote forest).
    pub trees: usize,
}

/// Lifetime shadow accounting of one scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Candidates ever staged.
    pub staged: u64,
    /// Candidates replaced by a newer staging before their audit decided.
    pub replaced: u64,
    /// Candidates rejected by [`PromotePolicy::OnZeroDiff`] (with their
    /// total mismatch rows folded into `mismatch_rows`).
    pub rejected: u64,
    /// Candidates whose audit passed but whose baseline epoch was no
    /// longer live at promotion time (a direct publish landed mid-audit)
    /// — the swap was refused rather than clobbering an unaudited model.
    pub superseded: u64,
    /// Mirrored rows diffed across all candidates.
    pub mirrored_rows: u64,
    /// Mirrored rows that answered differently from their baseline.
    pub mismatch_rows: u64,
    /// Every promotion that went live, in order.
    pub promotions: Vec<PromotionRecord>,
    /// `(mirrored, mismatches)` of a candidate still staged at shutdown.
    pub pending: Option<(usize, usize)>,
}

struct Candidate {
    model: ServedModel,
    baseline: Arc<EpochModel>,
    /// Staging generation (monotone per slot) — mirrored rows carry the
    /// generation they were captured under, so traffic buffered before a
    /// candidate was staged (or for an already-decided one) can never be
    /// counted toward a different candidate's audit.
    generation: u64,
    mirrored: usize,
    mismatches: usize,
}

/// One concluded audit, for the telemetry plane's flight recorder:
/// which epoch the verdict concerned, how many mirrored rows diverged,
/// and whether the candidate went live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AuditDecision {
    pub epoch: u64,
    pub mismatches: u64,
    pub promoted: bool,
}

/// Per-scenario shadow slot: at most one staged candidate plus the
/// accumulated report. Callers serialize access (the router wraps this in
/// a `Mutex`).
pub(crate) struct ShadowState {
    cfg: ShadowConfig,
    candidate: Option<Candidate>,
    next_generation: u64,
    report: ShadowReport,
    /// Verdict of the most recent concluded audit, until taken — the
    /// router forwards it to the scenario's telemetry control scope.
    last_decision: Option<AuditDecision>,
}

impl ShadowState {
    pub(crate) fn new(cfg: ShadowConfig) -> Self {
        assert!(cfg.audit_rows >= 1, "audit_rows must be at least 1");
        ShadowState {
            cfg,
            candidate: None,
            next_generation: 1,
            report: ShadowReport::default(),
            last_decision: None,
        }
    }

    /// Take the most recent concluded audit verdict, if one landed since
    /// the last call. `epoch` is the newly live epoch on promotion, the
    /// audited baseline epoch on rejection/supersession.
    pub(crate) fn take_last_decision(&mut self) -> Option<AuditDecision> {
        self.last_decision.take()
    }

    /// Generation of the staged candidate, or `None` when the slot is
    /// empty (the router caches this in an atomic — 0 = empty — so the
    /// submit path can skip mirroring without the lock).
    pub(crate) fn active_generation(&self) -> Option<u64> {
        self.candidate.as_ref().map(|c| c.generation)
    }

    /// Stage a candidate model (tree or ensemble) against the registry's
    /// current epoch, replacing any undecided predecessor (latest round
    /// wins). The caller compiles the candidate **before** locking this
    /// state (mirroring the registry's compile-outside-the-lock rule) so
    /// live submits flushing mirrors never stall behind a compile.
    pub(crate) fn stage(&mut self, model: ServedModel, registry: &ModelRegistry) {
        let baseline = registry.current();
        assert_eq!(
            model.n_features(),
            baseline.model.n_features(),
            "stage: candidate takes {} features, the scenario serves {}",
            model.n_features(),
            baseline.model.n_features()
        );
        if let Some(old) = self.candidate.take() {
            self.report.replaced += 1;
            self.report.mirrored_rows += old.mirrored as u64;
            self.report.mismatch_rows += old.mismatches as u64;
        }
        self.report.staged += 1;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.candidate = Some(Candidate {
            model,
            baseline,
            generation,
            mirrored: 0,
            mismatches: 0,
        });
    }

    /// Diff a block of mirrored feature rows (row-major) against the
    /// staged candidate's baseline, and decide promotion when the audit
    /// quota is reached. Rows captured under a different `generation`
    /// than the staged candidate are discarded (they mirror traffic the
    /// candidate never shadowed). Returns the promotion if one went live.
    pub(crate) fn mirror(
        &mut self,
        rows: &[f64],
        generation: u64,
        registry: &ModelRegistry,
    ) -> Option<PromotionRecord> {
        let candidate = self.candidate.as_mut()?;
        if candidate.generation != generation {
            return None;
        }
        let diff = candidate.model.diff_batch(&candidate.baseline.model, rows);
        candidate.mirrored += diff.rows;
        candidate.mismatches += diff.mismatches;
        if candidate.mirrored < self.cfg.audit_rows {
            return None;
        }
        match self.cfg.policy {
            PromotePolicy::Hold => None,
            PromotePolicy::OnZeroDiff if candidate.mismatches > 0 => {
                let rejected = self.candidate.take().unwrap();
                self.report.rejected += 1;
                self.report.mirrored_rows += rejected.mirrored as u64;
                self.report.mismatch_rows += rejected.mismatches as u64;
                self.last_decision = Some(AuditDecision {
                    epoch: rejected.baseline.epoch,
                    mismatches: rejected.mismatches as u64,
                    promoted: false,
                });
                None
            }
            PromotePolicy::OnZeroDiff | PromotePolicy::AfterAudit => {
                let promoted = self.candidate.take().unwrap();
                self.report.mirrored_rows += promoted.mirrored as u64;
                self.report.mismatch_rows += promoted.mismatches as u64;
                // Compare-and-swap on the baseline epoch: if a direct
                // publish landed mid-audit, this candidate was audited
                // against a model that is no longer live — refusing to
                // install it is the only honest outcome (a clobbered
                // hotfix would be far worse than a lost refresh).
                let trees = promoted.model.n_trees();
                let Some(epoch) =
                    registry.publish_if_current(promoted.model, promoted.baseline.epoch)
                else {
                    self.report.superseded += 1;
                    self.last_decision = Some(AuditDecision {
                        epoch: promoted.baseline.epoch,
                        mismatches: promoted.mismatches as u64,
                        promoted: false,
                    });
                    return None;
                };
                self.last_decision = Some(AuditDecision {
                    epoch,
                    mismatches: promoted.mismatches as u64,
                    promoted: true,
                });
                let record = PromotionRecord {
                    epoch,
                    baseline_epoch: promoted.baseline.epoch,
                    audited_rows: promoted.mirrored,
                    mismatches: promoted.mismatches,
                    trees,
                };
                self.report.promotions.push(record.clone());
                Some(record)
            }
        }
    }

    /// Close the slot at shutdown: a still-staged candidate is surfaced
    /// as `pending` rather than silently dropped.
    pub(crate) fn finish(mut self) -> ShadowReport {
        if let Some(pending) = self.candidate.take() {
            self.report.mirrored_rows += pending.mirrored as u64;
            self.report.mismatch_rows += pending.mismatches as u64;
            self.report.pending = Some((pending.mirrored, pending.mismatches));
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_dt::{fit, Dataset, DecisionTree, TreeConfig};

    fn tree(leaves: usize) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..160)
            .map(|i| vec![i as f64 / 160.0, (i % 5) as f64])
            .collect();
        let y: Vec<usize> = (0..160).map(|i| (i * 6 / 160) % 6).collect();
        fit(
            &Dataset::classification(x, y, 6).unwrap(),
            &TreeConfig {
                max_leaf_nodes: leaves,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn rows(n: usize) -> Vec<f64> {
        (0..n)
            .flat_map(|k| vec![(k % 160) as f64 / 160.0, (k % 5) as f64])
            .collect()
    }

    /// Test-side staging: compile then stage, as the router does.
    fn stage(shadow: &mut ShadowState, tree: DecisionTree, registry: &ModelRegistry) {
        shadow.stage(ServedModel::from_tree(tree), registry);
    }

    #[test]
    fn zero_diff_candidate_promotes_at_the_quota_and_not_before() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 100,
            policy: PromotePolicy::OnZeroDiff,
        });
        stage(&mut shadow, tree(16), &registry); // identical fit: zero diffs
        let gen = shadow.active_generation().expect("staged");
        assert!(
            shadow.mirror(&rows(60), gen, &registry).is_none(),
            "below quota"
        );
        let promo = shadow
            .mirror(&rows(60), gen, &registry)
            .expect("clean audit at quota must promote");
        assert_eq!(promo.baseline_epoch, 0);
        assert_eq!(promo.epoch, 1);
        assert_eq!(promo.audited_rows, 120);
        assert_eq!(promo.mismatches, 0);
        assert_eq!(registry.epoch(), 1, "promotion goes live");
        assert!(shadow.active_generation().is_none());
        let report = shadow.finish();
        assert_eq!(report.staged, 1);
        assert_eq!(report.promotions.len(), 1);
        assert_eq!(report.mismatch_rows, 0);
        assert_eq!(report.pending, None);
    }

    #[test]
    fn dirty_candidate_is_rejected_under_zero_diff_and_promoted_after_audit() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 64,
            policy: PromotePolicy::OnZeroDiff,
        });
        stage(&mut shadow, tree(2), &registry); // coarse fit: must diverge
        let gen = shadow.active_generation().unwrap();
        assert!(
            shadow.mirror(&rows(64), gen, &registry).is_none(),
            "dirty audit"
        );
        assert_eq!(registry.epoch(), 0, "rejected candidate must not go live");
        assert!(shadow.active_generation().is_none());
        let report = shadow.finish();
        assert_eq!(report.rejected, 1);
        assert!(report.mismatch_rows > 0);

        // The same candidate under AfterAudit goes live with its diff
        // count on the record.
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 64,
            policy: PromotePolicy::AfterAudit,
        });
        stage(&mut shadow, tree(2), &registry);
        let gen = shadow.active_generation().unwrap();
        let promo = shadow
            .mirror(&rows(64), gen, &registry)
            .expect("audited swap");
        assert!(promo.mismatches > 0);
        assert_eq!(registry.epoch(), 1);
    }

    #[test]
    fn restaging_replaces_the_undecided_candidate_and_hold_never_promotes() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 32,
            policy: PromotePolicy::Hold,
        });
        stage(&mut shadow, tree(2), &registry);
        let first_gen = shadow.active_generation().unwrap();
        shadow.mirror(&rows(10), first_gen, &registry);
        stage(&mut shadow, tree(16), &registry); // replaces the first
        let second_gen = shadow.active_generation().unwrap();
        assert_ne!(first_gen, second_gen, "restaging advances the generation");
        assert!(
            shadow.mirror(&rows(64), second_gen, &registry).is_none(),
            "Hold never swaps"
        );
        assert_eq!(registry.epoch(), 0);
        let report = shadow.finish();
        assert_eq!(report.staged, 2);
        assert_eq!(report.replaced, 1);
        assert_eq!(
            report.pending,
            Some((64, 0)),
            "undecided candidate surfaces at shutdown"
        );
        assert_eq!(report.mirrored_rows, 74);
    }

    /// Rows buffered under a previous staging must never count toward a
    /// later candidate's audit.
    #[test]
    fn stale_generation_rows_are_discarded() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 32,
            policy: PromotePolicy::OnZeroDiff,
        });
        stage(&mut shadow, tree(2), &registry);
        let stale = shadow.active_generation().unwrap();
        stage(&mut shadow, tree(16), &registry);
        let live = shadow.active_generation().unwrap();
        // 64 stale rows would cross the quota — they must be ignored.
        assert!(shadow.mirror(&rows(64), stale, &registry).is_none());
        assert!(shadow.active_generation().is_some(), "candidate untouched");
        let promo = shadow.mirror(&rows(32), live, &registry);
        assert!(promo.is_some(), "only live-generation rows audit");
        assert_eq!(promo.unwrap().audited_rows, 32);
    }

    /// A direct publish landing mid-audit supersedes the candidate: the
    /// audit passed, but against a baseline that is no longer live — the
    /// hotfix must win.
    #[test]
    fn mid_audit_publish_supersedes_the_candidate_instead_of_being_clobbered() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 64,
            policy: PromotePolicy::OnZeroDiff,
        });
        stage(&mut shadow, tree(16), &registry); // clean candidate vs epoch 0
        let gen = shadow.active_generation().unwrap();
        shadow.mirror(&rows(32), gen, &registry);
        // Hotfix goes straight to the registry mid-audit.
        let hotfix_epoch = registry.publish(tree(4));
        assert_eq!(hotfix_epoch, 1);
        // Audit completes clean — but the baseline is stale, so the
        // candidate must NOT be installed over the hotfix.
        assert!(shadow.mirror(&rows(32), gen, &registry).is_none());
        assert_eq!(registry.epoch(), 1, "hotfix must stay live");
        assert!(shadow.active_generation().is_none(), "slot cleared");
        let report = shadow.finish();
        assert_eq!(report.superseded, 1);
        assert!(report.promotions.is_empty());
        assert_eq!(report.rejected, 0);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn staging_a_different_schema_panics() {
        let registry = ModelRegistry::new(tree(8));
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
        let narrow = fit(
            &Dataset::classification(x, y, 2).unwrap(),
            &TreeConfig::default(),
        )
        .unwrap();
        ShadowState::new(ShadowConfig::default()).stage(ServedModel::from_tree(narrow), &registry);
    }

    /// Ensemble candidates ride the same audit: a 1-tree forest of the
    /// live tree diffs clean (the kernel guarantees a 1-tree forest is
    /// bit-identical to its tree) and promotes a forest epoch; a wider
    /// ensemble whose vote diverges is rejected under OnZeroDiff.
    #[test]
    fn forest_candidates_audit_and_promote_like_trees() {
        let registry = ModelRegistry::new(tree(16));
        let mut shadow = ShadowState::new(ShadowConfig {
            audit_rows: 64,
            policy: PromotePolicy::OnZeroDiff,
        });
        let clean = ServedModel::from_trees(vec![tree(16)]).unwrap();
        shadow.stage(clean, &registry);
        let gen = shadow.active_generation().unwrap();
        let promo = shadow
            .mirror(&rows(64), gen, &registry)
            .expect("1-tree forest of the live tree must audit clean");
        assert_eq!(promo.mismatches, 0);
        assert_eq!(registry.epoch(), 1);
        assert_eq!(
            registry.current().model.n_trees(),
            1,
            "promoted model is the staged forest"
        );

        // A coarse ensemble diverges from the live tree: rejected.
        let dirty = ServedModel::from_trees(vec![tree(2), tree(3), tree(4)]).unwrap();
        shadow.stage(dirty, &registry);
        let gen = shadow.active_generation().unwrap();
        assert!(shadow.mirror(&rows(64), gen, &registry).is_none());
        assert_eq!(registry.epoch(), 1, "dirty ensemble must not go live");
        let report = shadow.finish();
        assert_eq!(report.rejected, 1);
        assert!(report.mismatch_rows > 0);
    }
}
