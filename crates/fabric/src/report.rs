//! Merged fabric accounting: per-shard engine reports rolled up into
//! per-scenario and per-tenant views, with SLO budgets checked.
//!
//! Two merge flavours, deliberately both exercised: scenario and tenant
//! percentiles are **exact** — the shards' raw
//! [`metis_serve::LatencyRecorder`]s are unioned before summarizing, and
//! every SLO decision reads these — while the fabric-wide line uses
//! [`metis_serve::LatencySummary::merge`], a display rollup whose
//! percentiles take the larger input (accurate for well-sampled inputs,
//! but able to understate the union tail when inputs are tiny; see its
//! docs). Nothing is enforced off the rollup.

use crate::shadow::ShadowReport;
use metis_serve::{EngineReport, LatencySummary};
use serde::{Deserialize, Serialize};

/// One scenario's merged view: its shards' engine reports, the exact
/// union latency summary, and its shadow audit trail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    pub key: String,
    /// Owning tenant's name.
    pub tenant: String,
    /// Requests served across all shards.
    pub served: u64,
    /// Hot swaps (audited promotions + direct publishes).
    pub swaps: u64,
    /// Epoch live at shutdown.
    pub live_epoch: u64,
    /// Ensemble width of the model live at shutdown (1 = a single tree,
    /// k = a k-tree majority-vote [`metis_dt::Forest`]).
    pub live_trees: usize,
    /// Exact percentile summary over the union of all shards' samples.
    pub latency: LatencySummary,
    /// Per-shard engine reports, in shard order.
    pub shards: Vec<EngineReport>,
    /// Shadow-serving audit trail.
    pub shadow: ShadowReport,
}

/// One tenant's SLO view across every scenario it owns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantReport {
    pub name: String,
    /// Deadline class its pool submissions carried (lower = more urgent).
    pub deadline_class: u8,
    /// The p99 budget the tenant declared (seconds).
    pub p99_budget_s: f64,
    /// Requests served for this tenant.
    pub served: u64,
    /// Exact percentile summary over every request the tenant's
    /// scenarios served.
    pub latency: LatencySummary,
    /// True when `latency.p99_s` is within `p99_budget_s` (an idle tenant
    /// cannot violate).
    pub met_p99_budget: bool,
}

/// Everything one fabric run produced, returned by
/// [`crate::Router::shutdown`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricReport {
    /// Requests served across the whole fabric.
    pub served: u64,
    /// Fabric-wide display rollup via [`LatencySummary::merge`]
    /// (count/mean/max exact; percentiles take the larger input — not a
    /// bound for tiny sample sets, so SLO checks use the exact
    /// per-scenario/per-tenant summaries instead).
    pub latency_rollup: LatencySummary,
    /// Per-scenario views, in construction order.
    pub scenarios: Vec<ScenarioReport>,
    /// Per-tenant SLO views, in construction order.
    pub tenants: Vec<TenantReport>,
}

impl FabricReport {
    /// Tenants that blew their p99 budget, most urgent class first —
    /// the page-worthy list.
    pub fn violations(&self) -> Vec<&TenantReport> {
        let mut out: Vec<&TenantReport> =
            self.tenants.iter().filter(|t| !t.met_p99_budget).collect();
        out.sort_by_key(|t| t.deadline_class);
        out
    }

    /// Look up one scenario's report by key.
    pub fn scenario(&self, key: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.key == key)
    }

    /// Look up one tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::PromotionRecord;
    use metis_serve::{summarize, LatencyRecorder};

    fn tenant(name: &str, class: u8, met: bool) -> TenantReport {
        TenantReport {
            name: name.into(),
            deadline_class: class,
            p99_budget_s: 0.5,
            served: 10,
            latency: summarize(&[0.1, 0.2, 0.3]),
            met_p99_budget: met,
        }
    }

    fn report() -> FabricReport {
        let mut recorder = LatencyRecorder::new();
        recorder.record(0.001);
        recorder.record(0.002);
        let latency = recorder.summary();
        FabricReport {
            served: 10,
            latency_rollup: latency,
            scenarios: vec![ScenarioReport {
                key: "abr".into(),
                tenant: "video".into(),
                served: 10,
                swaps: 1,
                live_epoch: 1,
                live_trees: 3,
                latency,
                shards: vec![],
                shadow: ShadowReport {
                    staged: 2,
                    mirrored_rows: 67,
                    promotions: vec![PromotionRecord {
                        epoch: 1,
                        baseline_epoch: 0,
                        audited_rows: 64,
                        mismatches: 0,
                        trees: 3,
                    }],
                    pending: Some((3, 1)),
                    ..Default::default()
                },
            }],
            tenants: vec![
                tenant("video", 2, false),
                tenant("dc", 0, false),
                tenant("idle", 1, true),
            ],
        }
    }

    /// `violations` pages the blown budgets most-urgent-class first;
    /// the key/name lookups resolve hits and miss cleanly.
    #[test]
    fn violations_sort_by_urgency_and_lookups_resolve() {
        let report = report();
        let paged = report.violations();
        assert_eq!(paged.len(), 2, "the met tenant is not a violation");
        assert_eq!(paged[0].name, "dc", "class 0 pages before class 2");
        assert_eq!(paged[1].name, "video");
        assert_eq!(report.scenario("abr").unwrap().live_trees, 3);
        assert!(report.scenario("nope").is_none());
        assert_eq!(report.tenant("idle").unwrap().deadline_class, 1);
        assert!(report.tenant("nope").is_none());
    }

    /// Every report type serializes to JSON and deserializes back to an
    /// equivalent value (fixed-point re-serialization, since the nested
    /// recorders don't implement `PartialEq`).
    #[test]
    fn reports_round_trip_through_json() {
        let report = report();
        let json = serde_json::to_string(&report).expect("reports serialize");
        let back: FabricReport = serde_json::from_str(&json).expect("reports deserialize");
        assert_eq!(
            json,
            serde_json::to_string(&back).unwrap(),
            "round trip is a fixed point"
        );
        assert_eq!(back.served, report.served);
        assert_eq!(back.scenarios[0].shadow, report.scenarios[0].shadow);
        assert_eq!(back.tenants.len(), 3);
        assert_eq!(back.tenants[0].latency.count, 3);
        assert_eq!(
            back.latency_rollup.p99_s.to_bits(),
            report.latency_rollup.p99_s.to_bits()
        );
    }
}
