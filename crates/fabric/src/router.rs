//! The request router: one ingest surface fanned across scenarios,
//! session-affine shards, and tenants.
//!
//! A [`Router`] owns, per *scenario*, one
//! [`metis_serve::ModelRegistry`] and `shards` independent
//! [`metis_serve::TreeServer`] micro-batchers over it, each batcher on
//! its own pool group. A request names its scenario and a **session id**;
//! [`shard_for_session`] hashes the session to a shard, so a sticky
//! client (an ABR session carrying per-client state) always flows through
//! the same micro-batcher — its decisions stay ordered relative to each
//! other — while unrelated sessions spread across shards. The hash is a
//! pure SplitMix64 finalize of the session id: stable across thread
//! counts, process restarts, and request interleavings.
//!
//! Tenancy: every scenario belongs to a [`TenantSpec`], whose
//! `deadline_class` is stamped onto the shards' pool submissions (the
//! pool drains urgent classes first — [`metis_nn::par::with_deadline_class`])
//! and whose `p99_budget_s` is checked in the shutdown report. Shadow
//! staging ([`Router::stage`], [`Router::stage_forest`]) audits a
//! candidate model — a single tree or a [`metis_dt::Forest`]
//! majority-vote ensemble — on mirrored traffic before (or instead of)
//! letting it serve — see [`crate::shadow`].

use crate::report::{FabricReport, ScenarioReport, TenantReport};
use crate::shadow::{ShadowConfig, ShadowState};
use metis_dt::DecisionTree;
use metis_obs::{Observer, ObserverConfig, SloSpec};
use metis_serve::{
    Clock, LatencyRecorder, LatencySummary, ModelRegistry, Response, ServeConfig, ServedModel,
    ServerHandle, TreeServer,
};
use metis_telemetry::{ShardTelemetry, Telemetry, CONTROL_SHARD};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Map a session id onto one of `shards` batcher shards. Pure function of
/// its arguments (SplitMix64 finalize), so the mapping is identical for
/// any thread count, submission order, or process — the property that
/// makes shard affinity a contract rather than an accident.
pub fn shard_for_session(session: u64, shards: usize) -> usize {
    assert!(shards >= 1, "a scenario has at least one shard");
    (metis_nn::par::mix_seed(session) % shards as u64) as usize
}

/// One SLO tenant: a deadline class (lower = the pool schedules its
/// batches' helper work first) and a p99 latency budget checked in the
/// [`TenantReport`].
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    /// Deadline class of every pool submission made on this tenant's
    /// behalf (see [`metis_nn::par::with_deadline_class`]).
    pub deadline_class: u8,
    /// p99 latency budget in seconds ([`f64::INFINITY`] = unbounded).
    pub p99_budget_s: f64,
}

impl TenantSpec {
    /// An unconstrained tenant: class 0, infinite budget.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            deadline_class: 0,
            p99_budget_s: f64::INFINITY,
        }
    }
}

/// One served scenario: a model family behind one registry, split into
/// session-affine shards, owned by a tenant.
pub struct ScenarioSpec {
    pub key: String,
    /// Name of the owning [`TenantSpec`].
    pub tenant: String,
    /// Epoch-0 model.
    pub initial: DecisionTree,
    /// Session-affine batcher shards (≥ 1).
    pub shards: usize,
    /// Shadow-serving knobs.
    pub shadow: ShadowConfig,
}

impl ScenarioSpec {
    /// A 1-shard scenario with default shadow policy.
    pub fn new(key: impl Into<String>, tenant: impl Into<String>, initial: DecisionTree) -> Self {
        ScenarioSpec {
            key: key.into(),
            tenant: tenant.into(),
            initial,
            shards: 1,
            shadow: ShadowConfig::default(),
        }
    }

    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    pub fn shadow(mut self, shadow: ShadowConfig) -> Self {
        self.shadow = shadow;
        self
    }
}

/// Fabric-wide knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-shard micro-batching template. `group` and `deadline_class`
    /// are **owned by the fabric** and overridden per shard: every shard
    /// gets its own fresh pool group (a user-set shared group would let
    /// one tenant's class re-tag another's queued tickets, silently
    /// defeating per-tenant SLO scheduling) and its tenant's class.
    pub serve: ServeConfig,
    /// Mirrored feature rows a handle buffers before flushing them to a
    /// scenario's shadow audit (0 = flush on every submit).
    pub mirror_batch: usize,
    /// The time source every shard stamps, batches, and paces on. The
    /// default is the real clock (wall-time serving, exactly the
    /// pre-clock fabric); a [`Clock::virtual_at`] fabric is the
    /// discrete-event mode `metis_sim` drives millions of sessions
    /// through.
    pub clock: Arc<Clock>,
    /// The live telemetry plane. [`Telemetry::off`] (the default) costs
    /// one pointer check per shard flush; an enabled plane registers one
    /// scope per `(scenario, shard)` — every flush decomposes into
    /// stage-attributed spans and streaming sketches — plus one
    /// *control scope* per scenario ([`CONTROL_SHARD`]) that records
    /// hot-swap costs and shadow-audit verdicts. All stamps come from
    /// `clock`, so a virtual-time fabric's telemetry is as deterministic
    /// as its responses.
    pub telemetry: Telemetry,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            serve: ServeConfig::default(),
            mirror_batch: 0,
            clock: Clock::real(),
            telemetry: Telemetry::off(),
        }
    }
}

struct ScenarioRuntime {
    key: String,
    tenant: usize,
    registry: Arc<ModelRegistry>,
    shards: Vec<TreeServer>,
    shadow: Mutex<ShadowState>,
    /// Cached [`ShadowState::active_generation`] (0 = nothing staged) so
    /// the submit hot path can skip mirroring — and tag buffered rows
    /// with the staging generation — without taking the lock.
    shadow_gen: AtomicU64,
    /// The scenario's telemetry control scope ([`CONTROL_SHARD`]):
    /// hot-swap costs land here via the registry hook, audit verdicts
    /// via [`ScenarioRuntime::mirror_rows`]. `None` when the plane is
    /// off.
    control: Option<Arc<ShardTelemetry>>,
    /// The fabric clock, cloned here so audit verdicts can be stamped
    /// without threading the clock through every mirror call site.
    clock: Arc<Clock>,
}

impl ScenarioRuntime {
    fn mirror_rows(&self, rows: &[f64], generation: u64) {
        if rows.is_empty() {
            return;
        }
        let mut shadow = self.shadow.lock().unwrap();
        shadow.mirror(rows, generation, &self.registry);
        self.shadow_gen
            .store(shadow.active_generation().unwrap_or(0), Ordering::Relaxed);
        if let Some(scope) = &self.control {
            if let Some(verdict) = shadow.take_last_decision() {
                scope.on_audit(
                    self.clock.now_s(),
                    verdict.epoch,
                    verdict.mismatches,
                    verdict.promoted,
                );
            }
        }
    }
}

/// The serving fabric. Build with [`Router::new`], mint per-client
/// [`FabricHandle`]s, publish or stage new models per scenario, and
/// [`Router::shutdown`] for the merged [`FabricReport`].
pub struct Router {
    scenarios: Vec<ScenarioRuntime>,
    tenants: Vec<TenantSpec>,
    mirror_batch: usize,
    clock: Arc<Clock>,
    telemetry: Telemetry,
}

impl Router {
    /// Start every scenario's shards. Scenario keys and tenant names must
    /// be unique; every scenario's `tenant` must resolve.
    pub fn new(tenants: Vec<TenantSpec>, scenarios: Vec<ScenarioSpec>, cfg: FabricConfig) -> Self {
        assert!(!tenants.is_empty(), "a fabric needs at least one tenant");
        assert!(
            !scenarios.is_empty(),
            "a fabric needs at least one scenario"
        );
        for (i, t) in tenants.iter().enumerate() {
            assert!(
                tenants[..i].iter().all(|o| o.name != t.name),
                "duplicate tenant `{}`",
                t.name
            );
        }
        let mut runtimes: Vec<ScenarioRuntime> = Vec::new();
        for spec in scenarios {
            assert!(spec.shards >= 1, "scenario `{}` needs ≥ 1 shard", spec.key);
            assert!(
                runtimes.iter().all(|o| o.key != spec.key),
                "duplicate scenario key `{}`",
                spec.key
            );
            let tenant = tenants
                .iter()
                .position(|t| t.name == spec.tenant)
                .unwrap_or_else(|| {
                    panic!(
                        "scenario `{}` names unknown tenant `{}`",
                        spec.key, spec.tenant
                    )
                });
            let registry = Arc::new(ModelRegistry::new(spec.initial));
            let tenant_name = &tenants[tenant].name;
            let control = cfg.telemetry.register_scope(
                &spec.key,
                CONTROL_SHARD,
                tenant_name,
                tenants[tenant].deadline_class,
            );
            if let Some(scope) = &control {
                registry.attach_telemetry(Arc::clone(scope), Arc::clone(&cfg.clock));
            }
            let shards = (0..spec.shards)
                .map(|shard_idx| {
                    TreeServer::start_clocked(
                        Arc::clone(&registry),
                        ServeConfig {
                            deadline_class: tenants[tenant].deadline_class,
                            // Always a fresh group per shard: sharing one
                            // group across tenants would let the last
                            // flusher's class re-tag every queued ticket.
                            group: None,
                            telemetry: cfg.telemetry.register_scope(
                                &spec.key,
                                shard_idx,
                                tenant_name,
                                tenants[tenant].deadline_class,
                            ),
                            ..cfg.serve.clone()
                        },
                        Arc::clone(&cfg.clock),
                    )
                })
                .collect();
            runtimes.push(ScenarioRuntime {
                key: spec.key,
                tenant,
                registry,
                shards,
                shadow: Mutex::new(ShadowState::new(spec.shadow)),
                shadow_gen: AtomicU64::new(0),
                control,
                clock: Arc::clone(&cfg.clock),
            });
        }
        let scenarios = runtimes;
        Router {
            scenarios,
            tenants,
            mirror_batch: cfg.mirror_batch,
            clock: cfg.clock,
            telemetry: cfg.telemetry,
        }
    }

    /// The time source every shard runs on ([`FabricConfig::clock`]).
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// The fabric's telemetry plane ([`FabricConfig::telemetry`]):
    /// disabled it answers nothing; enabled it holds every scope the
    /// router registered — live sketches, flight-recorder events, and
    /// the [`Telemetry::chrome_trace_json`] timeline export.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Build a streaming health-plane [`Observer`] over this fabric:
    /// one SLO monitor per tenant (budget and deadline class straight
    /// from the [`TenantSpec`]s), watching every scope the router
    /// registered, stamping [`Observer::tick_now`] from the fabric's
    /// clock. The observer holds no thread — drive it from a scraper
    /// loop (real clock) or schedule its ticks as simulation events
    /// (`metis_sim`'s `run_abr_cosim_observed`).
    pub fn observer(&self, cfg: ObserverConfig) -> Observer {
        let slos = self
            .tenants
            .iter()
            .map(|t| SloSpec::new(&t.name, t.deadline_class, t.p99_budget_s))
            .collect();
        Observer::new(self.telemetry.clone(), slos, cfg).with_clock(Arc::clone(&self.clock))
    }

    /// Index of a scenario key (stable for the router's lifetime; submit
    /// by index on the hot path).
    pub fn scenario_index(&self, key: &str) -> Option<usize> {
        self.scenarios.iter().position(|s| s.key == key)
    }

    fn scenario(&self, key: &str) -> &ScenarioRuntime {
        let idx = self
            .scenario_index(key)
            .unwrap_or_else(|| panic!("unknown scenario `{key}`"));
        &self.scenarios[idx]
    }

    /// The registry behind a scenario (publish to it for an unaudited hot
    /// swap).
    pub fn registry(&self, key: &str) -> &Arc<ModelRegistry> {
        &self.scenario(key).registry
    }

    /// Shards a scenario runs.
    pub fn shard_count(&self, key: &str) -> usize {
        self.scenario(key).shards.len()
    }

    /// Feature width a scenario serves.
    pub fn n_features(&self, key: &str) -> usize {
        self.scenario(key).registry.n_features()
    }

    /// Hot-swap a scenario's live model immediately (no shadow audit);
    /// returns the new epoch.
    pub fn publish(&self, key: &str, tree: DecisionTree) -> u64 {
        self.scenario(key).registry.publish(tree)
    }

    /// Hot-swap a scenario's live model to a majority-vote
    /// [`metis_dt::Forest`] over `sources` (no shadow audit); returns the
    /// new epoch. Panics when the ensemble is empty or mixes widths or
    /// output kinds.
    pub fn publish_forest(&self, key: &str, sources: Vec<DecisionTree>) -> u64 {
        let model = ServedModel::from_trees(sources).expect("published ensemble must be coherent");
        self.scenario(key).registry.publish_model(model)
    }

    /// Stage `tree` as the scenario's shadow candidate: mirrored traffic
    /// diffs it bit-exactly against the live model it would replace, and
    /// the scenario's [`ShadowConfig`] policy decides the swap once the
    /// audit quota is reached. A still-undecided previous candidate is
    /// replaced (latest round wins).
    pub fn stage(&self, key: &str, tree: DecisionTree) {
        self.stage_model(key, ServedModel::from_tree(tree));
    }

    /// Stage a majority-vote [`metis_dt::Forest`] over `sources` as the
    /// scenario's shadow candidate — same mirrored audit and CAS
    /// promotion as [`Router::stage`], but the candidate (and, once
    /// promoted, the live epoch) is a k-tree ensemble. Panics when the
    /// ensemble is empty or mixes widths or output kinds.
    pub fn stage_forest(&self, key: &str, sources: Vec<DecisionTree>) {
        let model = ServedModel::from_trees(sources).expect("staged ensemble must be coherent");
        self.stage_model(key, model);
    }

    fn stage_model(&self, key: &str, model: ServedModel) {
        let scenario = self.scenario(key);
        // `model` was compiled before this call — a mirror flush on the
        // live submit path must never wait out a compile under the lock.
        let mut shadow = scenario.shadow.lock().unwrap();
        shadow.stage(model, &scenario.registry);
        scenario.shadow_gen.store(
            shadow.active_generation().expect("just staged"),
            Ordering::Relaxed,
        );
    }

    /// Mint an independent per-client handle (one per client thread).
    pub fn handle(&self) -> FabricHandle<'_> {
        FabricHandle {
            lanes: self
                .scenarios
                .iter()
                .map(|s| s.shards.iter().map(|shard| shard.handle()).collect())
                .collect(),
            id_maps: self
                .scenarios
                .iter()
                .map(|s| vec![Vec::new(); s.shards.len()])
                .collect(),
            local_base: self
                .scenarios
                .iter()
                .map(|s| vec![0u64; s.shards.len()])
                .collect(),
            submissions: Vec::new(),
            global_base: 0,
            mirror_buf: vec![Vec::new(); self.scenarios.len()],
            mirror_gen: vec![0; self.scenarios.len()],
            router: self,
            outstanding: 0,
        }
    }

    /// Stop every shard (draining all queued requests — zero drops for
    /// clients that finished submitting) and merge the per-shard reports
    /// into the fabric rollup. Drop all handles first.
    pub fn shutdown(self) -> FabricReport {
        let mut tenant_recorders: Vec<LatencyRecorder> = self
            .tenants
            .iter()
            .map(|_| LatencyRecorder::new())
            .collect();
        let mut tenant_served = vec![0u64; self.tenants.len()];
        let mut scenario_reports = Vec::with_capacity(self.scenarios.len());
        let mut summary_rollup = LatencySummary::empty();
        let mut served_total = 0u64;
        for scenario in self.scenarios {
            let shard_reports: Vec<_> = scenario.shards.into_iter().map(|s| s.shutdown()).collect();
            let mut merged = LatencyRecorder::new();
            let mut served = 0u64;
            for report in &shard_reports {
                merged.merge(&report.recorder);
                served += report.served;
            }
            // Exact per-scenario percentiles from the union sample set;
            // the fabric-wide line uses the summary-level merge (upper
            // bound) so both merge flavours are exercised in production.
            let latency = merged.summary();
            summary_rollup = summary_rollup.merge(&latency);
            served_total += served;
            tenant_recorders[scenario.tenant].merge(&merged);
            tenant_served[scenario.tenant] += served;
            scenario_reports.push(ScenarioReport {
                key: scenario.key,
                tenant: self.tenants[scenario.tenant].name.clone(),
                served,
                swaps: scenario.registry.swap_count(),
                live_epoch: scenario.registry.epoch(),
                live_trees: scenario.registry.current().model.n_trees(),
                latency,
                shards: shard_reports,
                shadow: scenario.shadow.into_inner().unwrap().finish(),
            });
        }
        let tenants = self
            .tenants
            .into_iter()
            .zip(tenant_recorders)
            .zip(tenant_served)
            .map(|((spec, recorder), served)| {
                let latency = recorder.summary();
                TenantReport {
                    met_p99_budget: served == 0 || latency.meets_p99_slo(spec.p99_budget_s),
                    name: spec.name,
                    deadline_class: spec.deadline_class,
                    p99_budget_s: spec.p99_budget_s,
                    served,
                    latency,
                }
            })
            .collect();
        FabricReport {
            served: served_total,
            latency_rollup: summary_rollup,
            scenarios: scenario_reports,
            tenants,
        }
    }
}

/// One fabric answer: the engine's [`Response`] plus where it was routed.
#[derive(Debug, Clone)]
pub struct FabricResponse {
    /// Handle-global submission id ([`FabricHandle::collect`] sorts by it).
    pub id: u64,
    /// Scenario index the request named.
    pub scenario: usize,
    /// Shard the session hashed onto.
    pub shard: usize,
    /// Session id the request carried.
    pub session: u64,
    /// The serving engine's answer (its `id` field is shard-local;
    /// use [`FabricResponse::id`]).
    pub response: Response,
}

/// A per-client submission surface over every scenario and shard. Submit
/// open-loop with [`FabricHandle::submit`]; gather everything outstanding
/// with [`FabricHandle::collect`]. Handles are independent — one per
/// client thread.
pub struct FabricHandle<'r> {
    router: &'r Router,
    /// `[scenario][shard]` engine handles.
    lanes: Vec<Vec<ServerHandle>>,
    /// `[scenario][shard][shard-local id - local_base] -> global id`.
    /// Rebased (emptied) whenever a collect leaves nothing outstanding,
    /// so a long-lived handle's memory is bounded by its in-flight
    /// window, not its lifetime request count.
    id_maps: Vec<Vec<Vec<u64>>>,
    /// `[scenario][shard]` shard-local id each `id_maps` entry starts at.
    local_base: Vec<Vec<u64>>,
    /// `[global id - global_base] -> (scenario, shard, session)`.
    submissions: Vec<(u32, u32, u64)>,
    /// Global id the `submissions` window starts at.
    global_base: u64,
    /// Per-scenario mirrored rows awaiting a shadow flush…
    mirror_buf: Vec<Vec<f64>>,
    /// …and the staging generation they were captured under (a buffer
    /// from a decided/replaced candidate is discarded, never counted
    /// toward a later candidate's audit).
    mirror_gen: Vec<u64>,
    outstanding: usize,
}

impl FabricHandle<'_> {
    /// Route one request: hash `session` to its scenario shard, mirror
    /// the features to a staged shadow candidate (when one is staged),
    /// and enqueue. Returns the handle-global id. Never blocks on the
    /// servers; a malformed request panics here, in the client.
    pub fn submit(&mut self, scenario: usize, session: u64, features: Vec<f64>) -> u64 {
        let runtime = &self.router.scenarios[scenario];
        let live_gen = runtime.shadow_gen.load(Ordering::Relaxed);
        if !self.mirror_buf[scenario].is_empty() && self.mirror_gen[scenario] != live_gen {
            // The candidate these rows shadowed was decided or replaced:
            // they must not leak into a different candidate's audit.
            self.mirror_buf[scenario].clear();
        }
        if live_gen != 0 {
            self.mirror_gen[scenario] = live_gen;
            self.mirror_buf[scenario].extend_from_slice(&features);
            let n_features = runtime.registry.n_features().max(1);
            if self.mirror_buf[scenario].len() >= self.router.mirror_batch.max(1) * n_features {
                runtime.mirror_rows(&self.mirror_buf[scenario], live_gen);
                self.mirror_buf[scenario].clear();
            }
        }
        let shard = shard_for_session(session, self.lanes[scenario].len());
        let global = self.global_base + self.submissions.len() as u64;
        let local = self.lanes[scenario][shard].submit(features);
        debug_assert_eq!(
            local,
            self.local_base[scenario][shard] + self.id_maps[scenario][shard].len() as u64
        );
        self.id_maps[scenario][shard].push(global);
        self.submissions
            .push((scenario as u32, shard as u32, session));
        self.outstanding += 1;
        global
    }

    /// Requests submitted through this handle that have not been
    /// collected.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Flush any buffered mirror rows to their shadow audits without
    /// waiting for responses (collect does this implicitly).
    pub fn flush_mirrors(&mut self) {
        for (scenario, buf) in self.mirror_buf.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.router.scenarios[scenario].mirror_rows(buf, self.mirror_gen[scenario]);
                buf.clear();
            }
        }
    }

    /// Block until every outstanding request is answered; returns the
    /// responses **sorted by global id** (deterministic regardless of
    /// scenario, shard, or batching interleavings). Internal id windows
    /// are rebased afterwards, so long-lived handles stay lean.
    pub fn collect(&mut self) -> Vec<FabricResponse> {
        self.flush_mirrors();
        let mut out = Vec::with_capacity(self.outstanding);
        for (scenario, shard_handles) in self.lanes.iter_mut().enumerate() {
            for (shard, handle) in shard_handles.iter_mut().enumerate() {
                for response in handle.collect() {
                    let local = (response.id - self.local_base[scenario][shard]) as usize;
                    let id = self.id_maps[scenario][shard][local];
                    let (_, _, session) = self.submissions[(id - self.global_base) as usize];
                    out.push(FabricResponse {
                        id,
                        scenario,
                        shard,
                        session,
                        response,
                    });
                }
            }
        }
        self.outstanding = 0;
        // Everything in the window is answered: slide the id windows
        // forward and drop the dead mapping entries.
        for (scenario, shard_maps) in self.id_maps.iter_mut().enumerate() {
            for (shard, map) in shard_maps.iter_mut().enumerate() {
                self.local_base[scenario][shard] += map.len() as u64;
                map.clear();
            }
        }
        self.global_base += self.submissions.len() as u64;
        self.submissions.clear();
        out.sort_by_key(|r| r.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::PromotePolicy;
    use metis_dt::{fit, Dataset, TreeConfig};
    use std::time::Duration;

    fn tree(leaves: usize, classes: usize) -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0, (i % 9) as f64])
            .collect();
        let y: Vec<usize> = (0..200).map(|i| (i * classes / 200) % classes).collect();
        fit(
            &Dataset::classification(x, y, classes).unwrap(),
            &TreeConfig {
                max_leaf_nodes: leaves,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn features(k: u64) -> Vec<f64> {
        vec![(k % 200) as f64 / 200.0, (k % 9) as f64]
    }

    fn quick_cfg() -> FabricConfig {
        FabricConfig {
            serve: ServeConfig {
                max_batch: 16,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
            mirror_batch: 32,
            ..Default::default()
        }
    }

    #[test]
    fn session_hashing_is_stable_and_spreads() {
        for shards in [1usize, 2, 3, 8] {
            let mut hits = vec![0usize; shards];
            for session in 0..4096u64 {
                let shard = shard_for_session(session, shards);
                assert_eq!(
                    shard,
                    shard_for_session(session, shards),
                    "mapping must be pure"
                );
                hits[shard] += 1;
            }
            let (min, max) = (
                *hits.iter().min().unwrap() as f64,
                *hits.iter().max().unwrap() as f64,
            );
            assert!(
                max / min.max(1.0) < 1.5,
                "shard load skew {hits:?} for {shards} shards"
            );
        }
    }

    #[test]
    fn requests_fan_across_scenarios_and_stick_to_session_shards() {
        let t_abr = tree(24, 6);
        let t_flow = tree(12, 4);
        let router = Router::new(
            vec![TenantSpec::new("video"), TenantSpec::new("dc")],
            vec![
                ScenarioSpec::new("abr", "video", t_abr.clone()).shards(3),
                ScenarioSpec::new("flow", "dc", t_flow.clone()),
            ],
            quick_cfg(),
        );
        assert_eq!(router.shard_count("abr"), 3);
        assert_eq!(router.shard_count("flow"), 1);
        let abr = router.scenario_index("abr").unwrap();
        let flow = router.scenario_index("flow").unwrap();
        let mut handle = router.handle();
        for k in 0..240u64 {
            let scenario = if k % 3 == 0 { flow } else { abr };
            handle.submit(scenario, k % 17, features(k));
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 240);
        let mut session_shard = std::collections::HashMap::new();
        for resp in &responses {
            // Global ids are submission-ordered.
            let k = resp.id;
            assert_eq!(resp.scenario, if k % 3 == 0 { flow } else { abr });
            assert_eq!(resp.session, k % 17);
            let oracle = if resp.scenario == abr {
                &t_abr
            } else {
                &t_flow
            };
            assert_eq!(resp.response.prediction, oracle.predict(&features(k)));
            // Affinity: one shard per (scenario, session), forever.
            let prev = session_shard
                .entry((resp.scenario, resp.session))
                .or_insert(resp.shard);
            assert_eq!(*prev, resp.shard, "session hopped shards");
        }
        drop(handle);
        let report = router.shutdown();
        assert_eq!(report.served, 240);
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.tenants.len(), 2);
        let abr_report = &report.scenarios[abr];
        assert_eq!(abr_report.served, 160);
        assert_eq!(abr_report.shards.len(), 3);
        assert_eq!(
            abr_report.shards.iter().map(|s| s.served).sum::<u64>(),
            160,
            "per-shard serves must add up"
        );
        assert_eq!(abr_report.latency.count, 160, "merged recorder is exact");
        assert_eq!(report.latency_rollup.count, 240);
        for tenant in &report.tenants {
            assert!(tenant.met_p99_budget, "infinite budgets always met");
        }
        assert_eq!(report.tenants[0].served, 160);
        assert_eq!(report.tenants[1].served, 80);
    }

    /// Long-lived handles: every collect that drains the window rebases
    /// the id maps, so memory is bounded by in-flight requests — and
    /// global ids keep counting across waves with answers staying
    /// correct.
    #[test]
    fn repeated_submit_collect_waves_rebase_and_stay_correct() {
        let t = tree(24, 6);
        let router = Router::new(
            vec![TenantSpec::new("t")],
            vec![ScenarioSpec::new("s", "t", t.clone()).shards(2)],
            quick_cfg(),
        );
        let mut handle = router.handle();
        let mut next_expected = 0u64;
        for wave in 0..5u64 {
            for k in 0..40u64 {
                let id = handle.submit(0, k % 5, features(wave * 40 + k));
                assert_eq!(id, next_expected, "global ids must keep counting");
                next_expected += 1;
            }
            let responses = handle.collect();
            assert_eq!(responses.len(), 40);
            for (k, resp) in responses.iter().enumerate() {
                assert_eq!(resp.id, wave * 40 + k as u64);
                assert_eq!(
                    resp.response.prediction,
                    t.predict(&features(wave * 40 + k as u64))
                );
            }
            // The window is drained: the dead mappings must be gone.
            assert!(handle.submissions.is_empty(), "submissions not rebased");
            assert!(
                handle.id_maps.iter().flatten().all(|m| m.is_empty()),
                "id maps not rebased"
            );
        }
        assert_eq!(handle.global_base, 200);
        drop(handle);
        assert_eq!(router.shutdown().served, 200);
    }

    #[test]
    fn staged_identical_tree_promotes_on_mirrored_traffic() {
        let t = tree(24, 6);
        let router = Router::new(
            vec![TenantSpec::new("t")],
            vec![ScenarioSpec::new("s", "t", t.clone()).shadow(ShadowConfig {
                audit_rows: 64,
                policy: PromotePolicy::OnZeroDiff,
            })],
            quick_cfg(),
        );
        router.stage("s", t.clone());
        let mut handle = router.handle();
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        let responses = handle.collect();
        assert_eq!(responses.len(), 100);
        assert_eq!(router.registry("s").epoch(), 1, "clean audit promoted");
        drop(handle);
        let report = router.shutdown();
        let shadow = &report.scenarios[0].shadow;
        assert_eq!(shadow.promotions.len(), 1);
        assert_eq!(shadow.promotions[0].mismatches, 0);
        assert!(shadow.mirrored_rows >= 64);
        assert_eq!(shadow.mismatch_rows, 0);
        assert_eq!(report.scenarios[0].swaps, 1);
    }

    #[test]
    fn staged_perturbed_tree_is_rejected_with_nonzero_diffs() {
        let t = tree(24, 6);
        let router = Router::new(
            vec![TenantSpec::new("t")],
            vec![ScenarioSpec::new("s", "t", t.clone()).shadow(ShadowConfig {
                audit_rows: 64,
                policy: PromotePolicy::OnZeroDiff,
            })],
            quick_cfg(),
        );
        router.stage("s", tree(2, 6)); // coarse fit: must diverge
        let mut handle = router.handle();
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        let responses = handle.collect();
        // Live answers stay on epoch 0 throughout: the dirty candidate
        // never served.
        for resp in &responses {
            assert_eq!(resp.response.epoch, 0);
            assert_eq!(resp.response.prediction, t.predict(&features(resp.id)));
        }
        assert_eq!(router.registry("s").epoch(), 0);
        drop(handle);
        let report = router.shutdown();
        let shadow = &report.scenarios[0].shadow;
        assert_eq!(shadow.rejected, 1);
        assert!(shadow.mismatch_rows > 0, "audit must surface the diffs");
        assert!(shadow.promotions.is_empty());
    }

    /// A k-tree ensemble flows through the same fabric surfaces a single
    /// tree does: `stage_forest` audits it on mirrored traffic and CAS
    /// promotion makes it live; after the swap every response matches the
    /// offline `Forest` majority vote, and the report carries the live
    /// ensemble width.
    #[test]
    fn staged_and_published_forests_serve_majority_votes() {
        let t = tree(24, 6);
        let members = vec![tree(24, 6), tree(12, 6), tree(6, 6)];
        let oracle = metis_dt::Forest::from_trees(&members).unwrap();
        let router = Router::new(
            vec![TenantSpec::new("t")],
            vec![ScenarioSpec::new("s", "t", t.clone()).shadow(ShadowConfig {
                audit_rows: 64,
                policy: PromotePolicy::OnZeroDiff,
            })],
            quick_cfg(),
        );
        // Identical members ⇒ the forest votes exactly like the live tree
        // on every mirrored row, so the audit is clean and it promotes.
        router.stage_forest("s", vec![t.clone(), t.clone(), t.clone()]);
        let mut handle = router.handle();
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        handle.collect();
        assert_eq!(router.registry("s").epoch(), 1, "clean audit promoted");
        assert_eq!(router.registry("s").current().model.n_trees(), 3);
        // Direct ensemble hot swap, no audit: responses after the publish
        // follow the forest's majority vote row-for-row.
        let epoch = router.publish_forest("s", members);
        assert_eq!(epoch, 2);
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        let responses = handle.collect();
        for resp in &responses {
            assert_eq!(resp.response.epoch, 2);
            assert_eq!(
                resp.response.prediction,
                oracle.predict(&features(resp.id - 100))
            );
        }
        drop(handle);
        let report = router.shutdown();
        assert_eq!(report.scenarios[0].live_trees, 3);
        assert_eq!(report.scenarios[0].swaps, 2);
        assert_eq!(report.scenarios[0].shadow.promotions.len(), 1);
        assert_eq!(report.scenarios[0].shadow.promotions[0].mismatches, 0);
    }

    #[test]
    fn tenant_p99_budget_violations_surface_in_the_report() {
        let t = tree(8, 3);
        let router = Router::new(
            vec![TenantSpec {
                name: "strict".into(),
                deadline_class: 0,
                p99_budget_s: 1e-12, // unmeetably tight
            }],
            vec![ScenarioSpec::new("s", "strict", t)],
            quick_cfg(),
        );
        let mut handle = router.handle();
        for k in 0..50u64 {
            handle.submit(0, k, features(k));
        }
        handle.collect();
        drop(handle);
        let report = router.shutdown();
        assert!(!report.tenants[0].met_p99_budget, "1ps budget must fail");
        assert_eq!(report.tenants[0].deadline_class, 0);
        // A served==0 tenant cannot violate.
        let router = Router::new(
            vec![TenantSpec {
                name: "idle".into(),
                deadline_class: 3,
                p99_budget_s: 1e-12,
            }],
            vec![ScenarioSpec::new("s", "idle", tree(8, 3))],
            quick_cfg(),
        );
        let report = router.shutdown();
        assert!(report.tenants[0].met_p99_budget);
        assert_eq!(report.served, 0);
    }

    /// An enabled plane registers one scope per shard plus a control
    /// scope per scenario; a staged promotion lands on the control scope
    /// as the registry's hot-swap event followed by the audit verdict,
    /// and the shard scopes account for every served request.
    #[test]
    fn telemetry_scopes_cover_shards_and_the_control_plane() {
        let t = tree(24, 6);
        let router = Router::new(
            vec![TenantSpec::new("video")],
            vec![ScenarioSpec::new("abr", "video", t.clone())
                .shards(2)
                .shadow(ShadowConfig {
                    audit_rows: 64,
                    policy: PromotePolicy::OnZeroDiff,
                })],
            FabricConfig {
                telemetry: Telemetry::enabled(),
                ..quick_cfg()
            },
        );
        router.stage("abr", t.clone());
        let mut handle = router.handle();
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        assert_eq!(handle.collect().len(), 100);
        assert_eq!(router.registry("abr").epoch(), 1, "clean audit promoted");
        let scopes = router.telemetry().scopes();
        assert_eq!(scopes.len(), 3, "2 shard scopes + 1 control scope");
        let control = scopes
            .iter()
            .find(|s| s.shard() == CONTROL_SHARD)
            .expect("control scope registered");
        assert_eq!(control.scenario(), "abr");
        assert_eq!(control.tenant(), "video");
        let names: Vec<&str> = control
            .events
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert_eq!(
            names,
            vec!["hot_swap", "audit_verdict"],
            "the registry hook fires inside the promotion CAS, then the \
             verdict is recorded"
        );
        let served: u64 = scopes
            .iter()
            .filter(|s| s.shard() != CONTROL_SHARD)
            .map(|s| s.served.get())
            .sum();
        assert_eq!(served, 100, "shard scopes account for every request");
        // The trace export carries all three scopes' thread metadata.
        let trace = router.telemetry().chrome_trace_json();
        assert!(trace.contains("\"traceEvents\""));
        drop(handle);
        router.shutdown();
    }

    /// `Router::observer` derives one SLO monitor per tenant from the
    /// `TenantSpec`s (budget + deadline class), watches the router's
    /// scopes, and stamps from the router's clock: a tenant with an
    /// impossible budget burns its error budget on the first tick, with
    /// tail attribution over the fabric's stage sketches.
    #[test]
    fn observer_monitors_tenant_slos_over_the_fabric() {
        let router = Router::new(
            vec![TenantSpec {
                name: "gold".into(),
                deadline_class: 2,
                p99_budget_s: 1e-12,
            }],
            vec![ScenarioSpec::new("s", "gold", tree(24, 6)).shards(2)],
            FabricConfig {
                telemetry: Telemetry::enabled(),
                ..quick_cfg()
            },
        );
        let obs = router.observer(metis_obs::ObserverConfig {
            fast_window: 1,
            clear_ticks: 1,
            ..Default::default()
        });
        assert_eq!(obs.slos().len(), 1);
        assert_eq!(obs.slos()[0].deadline_class, 2);
        let mut handle = router.handle();
        for k in 0..200u64 {
            handle.submit(0, k, features(k));
        }
        assert_eq!(handle.collect().len(), 200);
        obs.tick_now();
        let report = obs.health_report();
        assert_eq!(report.ticks, 1);
        assert_eq!(report.tenants[0].served_total, 200);
        assert_eq!(
            report.tenants[0].over_total, 200,
            "every request misses a 1ps budget"
        );
        let fired = obs
            .alerts()
            .into_iter()
            .find(|a| a.kind == metis_obs::AlertKind::FastBurn && a.firing)
            .expect("impossible budget fires fast burn on tick 1");
        assert_eq!(fired.tenant, "gold");
        assert_eq!(fired.deadline_class, 2);
        assert!(
            !fired.attribution.is_empty(),
            "fired alert attributes stages"
        );
        // Scope series cover both shards + control, classes attached.
        assert_eq!(report.scopes.len(), 3);
        assert!(report.scopes.iter().all(|s| s.deadline_class == 2));
        assert!(report.scopes.iter().any(|s| s.shard == -1), "control row");
        // The observed trace carries the alert mark on top of the spans.
        let trace = obs.chrome_trace_json();
        assert!(trace.contains("alert/gold/fast_burn"));
        drop(handle);
        router.shutdown();
    }

    /// A rejected candidate still concludes its audit on the control
    /// scope — promoted = false, with the mismatch count — and no
    /// hot-swap event follows.
    #[test]
    fn rejected_audits_surface_on_the_control_scope() {
        let t = tree(24, 6);
        let router = Router::new(
            vec![TenantSpec::new("t")],
            vec![ScenarioSpec::new("s", "t", t.clone()).shadow(ShadowConfig {
                audit_rows: 64,
                policy: PromotePolicy::OnZeroDiff,
            })],
            FabricConfig {
                telemetry: Telemetry::enabled(),
                ..quick_cfg()
            },
        );
        router.stage("s", tree(2, 6)); // coarse fit: must diverge
        let mut handle = router.handle();
        for k in 0..100u64 {
            handle.submit(0, k, features(k));
        }
        handle.collect();
        assert_eq!(router.registry("s").epoch(), 0, "rejected, never live");
        let scopes = router.telemetry().scopes();
        let control = scopes.iter().find(|s| s.shard() == CONTROL_SHARD).unwrap();
        let events = control.events.events();
        assert_eq!(events.len(), 1, "one audit verdict, no hot swap");
        match &events[0].kind {
            metis_telemetry::EventKind::AuditVerdict {
                epoch,
                mismatches,
                promoted,
            } => {
                assert_eq!(*epoch, 0, "verdict names the audited baseline");
                assert!(*mismatches > 0);
                assert!(!promoted);
            }
            other => panic!("expected an audit verdict, got {other:?}"),
        }
        drop(handle);
        router.shutdown();
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn scenario_with_unknown_tenant_panics() {
        let _ = Router::new(
            vec![TenantSpec::new("a")],
            vec![ScenarioSpec::new("s", "b", tree(8, 3))],
            FabricConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate scenario")]
    fn duplicate_scenario_keys_panic() {
        let _ = Router::new(
            vec![TenantSpec::new("a")],
            vec![
                ScenarioSpec::new("s", "a", tree(8, 3)),
                ScenarioSpec::new("s", "a", tree(8, 3)),
            ],
            FabricConfig::default(),
        );
    }
}
