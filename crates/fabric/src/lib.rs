//! # metis-fabric — the multi-model serving fabric
//!
//! PR 4's [`metis_serve::TreeServer`] serves **one** model behind **one**
//! micro-batcher. The paper's deployability argument (§6.4) and the
//! ROADMAP's north star — many scenarios, millions of users, per-tenant
//! SLOs — need the layer *around* those servers: one ingest stream fanned
//! across many models, shards, and tenants. That layer is this crate:
//!
//! * [`router`] — the [`Router`]: a set of *scenarios* (one
//!   [`metis_serve::ModelRegistry`] each), each split into N
//!   **session-affine shards** — independent micro-batchers over the same
//!   registry, each on its own pool group. Requests are hashed by session
//!   id ([`shard_for_session`], a pure SplitMix64 finalize), so a sticky
//!   ABR session always lands on the same shard regardless of thread
//!   counts or interleaving.
//! * [`shadow`] — **shadow serving**: the next round's student tree is
//!   staged beside the live model and evaluated on mirrored traffic with
//!   bit-exact response diffing ([`metis_dt::CompiledTree::diff_batch`]).
//!   A [`PromotePolicy::OnZeroDiff`] candidate hot-swaps live only after
//!   its audit diffs clean; [`PromotePolicy::AfterAudit`] swaps
//!   unconditionally but records how much behaviour changed first.
//! * [`report`] — per-shard [`metis_serve::EngineReport`]s merged into
//!   per-scenario and per-tenant views (exact percentiles via
//!   [`metis_serve::LatencyRecorder::merge`], which every SLO decision
//!   reads; plus a cross-scenario display rollup via
//!   [`metis_serve::LatencySummary::merge`]), with each tenant's
//!   **p99 budget** checked in its [`TenantReport`]. Every report type
//!   is serde-serializable, so a fabric run's full accounting exports
//!   as JSON.
//!
//! Observability: [`FabricConfig::telemetry`] plugs the fabric into the
//! live telemetry plane (`metis_telemetry`). The router registers one
//! scope per `(scenario, shard)` — stage-attributed spans, streaming
//! percentile sketches, flight-recorder events — plus a per-scenario
//! *control scope* ([`metis_telemetry::CONTROL_SHARD`]) that records
//! hot-swap costs and shadow-audit verdicts. All stamps read the fabric
//! [`metis_serve::Clock`], and the whole plane exports a Chrome
//! trace-event timeline ([`metis_telemetry::Telemetry::chrome_trace_json`]).
//!
//! SLO-aware scheduling: every tenant carries a *deadline class* that the
//! fabric stamps onto its shards' pool submissions
//! ([`metis_nn::par::with_deadline_class`]); the worker pool drains the
//! most urgent class first, round-robinning within a class. Classes move
//! helper threads, never answers.
//!
//! Determinism contract: a 1-model/1-shard/1-tenant fabric is
//! **bit-identical** to the plain `TreeServer` path, and every response in
//! any fabric is bit-identical to `DecisionTree::predict` on the epoch it
//! reports — for any shard count, batch size, deadline, thread count, or
//! staging interleaving (`tests/fabric_determinism.rs`).

pub mod report;
pub mod router;
pub mod shadow;

pub use report::{FabricReport, ScenarioReport, TenantReport};
pub use router::{
    shard_for_session, FabricConfig, FabricHandle, FabricResponse, Router, ScenarioSpec, TenantSpec,
};
pub use shadow::{PromotePolicy, PromotionRecord, ShadowConfig, ShadowReport};
