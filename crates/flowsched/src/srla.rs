//! sRLA — AuTO's short-flow RL agent. It observes features of recently
//! finished short flows (the paper's 700-dimensional state: 100 flows × 7
//! features) and outputs the MLFQ demotion thresholds as continuous values.
//!
//! The original is trained with DDPG; here we use a (1+1)-ES hill climb on
//! the simulated mean FCT, which suffices to produce a non-trivial teacher
//! for the interpretation experiments (the paper's experiments only need a
//! finetuned teacher, not a state-of-the-art one) — recorded in DESIGN.md.

use crate::mlfq::{MlfqThresholds, N_PRIORITIES};
use crate::sim::{CompletedFlow, FabricConfig, FlowSim, SimConfig};
use crate::workload::{generate_flows, SizeDistribution};
use metis_nn::{Activation, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flows tracked in the sRLA state.
pub const SRLA_FLOWS: usize = 100;
/// Features per tracked flow.
pub const SRLA_FEATURES: usize = 7;
/// Total state dimensionality (the paper's "700 states").
pub const SRLA_STATE_DIM: usize = SRLA_FLOWS * SRLA_FEATURES;
/// Number of continuous outputs (the K−1 thresholds).
pub const SRLA_OUT_DIM: usize = N_PRIORITIES - 1;

/// Encode the sRLA state from the most recent finished flows (newest
/// last). Shorter histories are zero-padded at the front.
pub fn srla_state(recent: &[CompletedFlow], fabric: &FabricConfig) -> Vec<f64> {
    let mut state = vec![0.0; SRLA_STATE_DIM];
    let take = recent.len().min(SRLA_FLOWS);
    let start = SRLA_FLOWS - take;
    for (slot, f) in recent[recent.len() - take..].iter().enumerate() {
        let base = (start + slot) * SRLA_FEATURES;
        let ideal_s = f.size_bytes * 8.0 / fabric.link_bps;
        let slowdown = (f.fct_s / ideal_s.max(1e-9)).min(1e4);
        state[base] = f.src as f64 / fabric.n_servers as f64;
        state[base + 1] = f.dst as f64 / fabric.n_servers as f64;
        // Port/protocol stand-ins: deterministic per-flow hash features
        // (the paper uses the raw 5-tuple; we have no ports in the
        // flow-level model, so feed stable pseudo-identifiers instead).
        state[base + 2] = ((f.id * 2654435761) % 65536) as f64 / 65536.0;
        state[base + 3] = ((f.id * 40503) % 65536) as f64 / 65536.0;
        state[base + 4] = (f.size_bytes.max(1.0)).log10() / 10.0;
        state[base + 5] = (f.fct_s.max(1e-9)).log10().clamp(-9.0, 3.0) / 10.0 + 0.5;
        state[base + 6] = slowdown.log10() / 4.0;
    }
    state
}

/// Map the network's sigmoid outputs (each in (0,1)) to strictly
/// increasing byte thresholds on a log scale:
/// `t_1 ∈ [1 KB, 100 KB]`, and each subsequent threshold is 1.26×–126×
/// the previous one. Always yields a valid [`MlfqThresholds`].
pub fn thresholds_from_outputs(out: &[f64]) -> MlfqThresholds {
    assert_eq!(out.len(), SRLA_OUT_DIM, "expected {SRLA_OUT_DIM} outputs");
    let mut ts = Vec::with_capacity(SRLA_OUT_DIM);
    let mut t = 1e3 * 10f64.powf(2.0 * out[0].clamp(0.0, 1.0));
    ts.push(t);
    for &o in &out[1..] {
        t *= 10f64.powf(0.1 + 2.0 * o.clamp(0.0, 1.0));
        ts.push(t);
    }
    MlfqThresholds::new(ts).expect("construction guarantees validity")
}

/// Build the sRLA network: `[700, hidden.., 3]` with sigmoid outputs.
pub fn srla_net(hidden: &[usize], rng: &mut StdRng) -> Mlp {
    let mut dims = vec![SRLA_STATE_DIM];
    dims.extend_from_slice(hidden);
    dims.push(SRLA_OUT_DIM);
    Mlp::new(&dims, Activation::Tanh, Activation::Sigmoid, rng)
}

/// The full-size sRLA of the paper (600×600 hidden), used by the
/// decision-latency and deployment benchmarks.
pub fn srla_net_paper_scale(rng: &mut StdRng) -> Mlp {
    srla_net(&[600, 600], rng)
}

/// Thresholds chosen by the agent for a given state.
pub fn srla_decide(net: &Mlp, state: &[f64]) -> MlfqThresholds {
    thresholds_from_outputs(&net.predict(state))
}

/// Mean FCT of short flows when running `flows` under `thresholds`.
pub fn evaluate_thresholds(
    flows: Vec<crate::workload::FlowRequest>,
    thresholds: MlfqThresholds,
    fabric: FabricConfig,
) -> f64 {
    let config = SimConfig {
        fabric,
        thresholds,
        long_flow_cutoff_bytes: f64::INFINITY,
        decision_latency_s: 0.0,
    };
    let mut sim = FlowSim::new(flows, config);
    let done = sim.run_mlfq_only();
    done.iter().map(|f| f.fct_s).sum::<f64>() / done.len().max(1) as f64
}

/// Training configuration for the ES hill climb.
#[derive(Debug, Clone)]
pub struct SrlaTrainConfig {
    pub iterations: usize,
    pub noise_std: f64,
    pub load: f64,
    pub duration_s: f64,
    pub n_servers: usize,
    pub link_bps: f64,
}

impl Default for SrlaTrainConfig {
    fn default() -> Self {
        SrlaTrainConfig {
            iterations: 40,
            noise_std: 0.05,
            load: 0.6,
            duration_s: 0.02,
            n_servers: 8,
            link_bps: 10e9,
        }
    }
}

/// (1+1)-ES: perturb all parameters, keep the perturbation when the mean
/// FCT (averaged over a few workload seeds) improves. Returns the mean-FCT
/// history (one entry per accepted or rejected iteration).
pub fn train_srla(
    net: &mut Mlp,
    dist: &SizeDistribution,
    cfg: &SrlaTrainConfig,
    rng: &mut StdRng,
) -> Vec<f64> {
    let fabric = FabricConfig {
        n_servers: cfg.n_servers,
        link_bps: cfg.link_bps,
    };
    let eval = |net: &Mlp, seed: u64| -> f64 {
        // Fresh workload per seed; state from a warmup run with defaults.
        let mut wl_rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(
            dist,
            cfg.n_servers,
            cfg.link_bps,
            cfg.load,
            cfg.duration_s,
            &mut wl_rng,
        );
        if flows.is_empty() {
            return 0.0;
        }
        // Warmup to build a state, then decide thresholds and score them.
        let warm = flows
            .iter()
            .take(flows.len() / 2)
            .cloned()
            .collect::<Vec<_>>();
        let mut warm_sim = FlowSim::new(
            warm,
            SimConfig {
                fabric: fabric.clone(),
                thresholds: MlfqThresholds::default_web_search(),
                long_flow_cutoff_bytes: f64::INFINITY,
                decision_latency_s: 0.0,
            },
        );
        warm_sim.run_mlfq_only();
        let state = srla_state(warm_sim.completed(), &fabric);
        let thresholds = srla_decide(net, &state);
        evaluate_thresholds(flows, thresholds, fabric.clone())
    };
    let score = |net: &Mlp| -> f64 { (0..3).map(|s| eval(net, 1000 + s)).sum::<f64>() / 3.0 };

    let mut best = score(net);
    let mut history = vec![best];
    for _ in 0..cfg.iterations {
        // Gaussian perturbation of every parameter.
        let backup: Vec<Vec<f64>> = net.params().iter().map(|pg| pg.param.to_vec()).collect();
        {
            let mut params = net.params();
            for pg in params.iter_mut() {
                for p in pg.param.iter_mut() {
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    *p += cfg.noise_std * g;
                }
            }
        }
        let candidate = score(net);
        if candidate < best {
            best = candidate;
        } else {
            // Revert.
            let mut params = net.params();
            for (pg, saved) in params.iter_mut().zip(backup.iter()) {
                pg.param.copy_from_slice(saved);
            }
        }
        history.push(best);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> FabricConfig {
        FabricConfig {
            n_servers: 8,
            link_bps: 10e9,
        }
    }

    #[test]
    fn state_dimension_is_700() {
        assert_eq!(SRLA_STATE_DIM, 700);
        let state = srla_state(&[], &fabric());
        assert_eq!(state.len(), 700);
        assert!(state.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn state_packs_newest_flows_at_end() {
        let flows: Vec<CompletedFlow> = (0..3)
            .map(|i| CompletedFlow {
                id: i,
                src: 1,
                dst: 2,
                size_bytes: 10_000.0,
                arrival_s: 0.0,
                fct_s: 0.001,
            })
            .collect();
        let state = srla_state(&flows, &fabric());
        // First 97 slots are zero-padded.
        assert!(state[..97 * SRLA_FEATURES].iter().all(|&x| x == 0.0));
        // Last 3 slots are populated.
        assert!(state[97 * SRLA_FEATURES] > 0.0);
    }

    #[test]
    fn state_handles_overflow_history() {
        let flows: Vec<CompletedFlow> = (0..250)
            .map(|i| CompletedFlow {
                id: i,
                src: i % 8,
                dst: (i + 1) % 8,
                size_bytes: 1000.0 + i as f64,
                arrival_s: 0.0,
                fct_s: 0.0001,
            })
            .collect();
        let state = srla_state(&flows, &fabric());
        assert_eq!(state.len(), 700);
        assert!(state.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn threshold_mapping_valid_over_grid() {
        for a in [0.0, 0.3, 0.7, 1.0] {
            for b in [0.0, 0.5, 1.0] {
                for c in [0.0, 0.5, 1.0] {
                    let t = thresholds_from_outputs(&[a, b, c]);
                    let s = t.as_slice();
                    assert!(s[0] >= 1e3 - 1.0 && s[0] <= 1e5 + 1.0);
                    assert!(s.windows(2).all(|w| w[1] > w[0]));
                }
            }
        }
    }

    #[test]
    fn net_shape_and_decide() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = srla_net(&[16], &mut rng);
        assert_eq!(net.in_dim(), 700);
        assert_eq!(net.out_dim(), 3);
        let state = vec![0.1; 700];
        let t = srla_decide(&net, &state);
        assert!(t.as_slice().windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn es_training_never_regresses() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = srla_net(&[8], &mut rng);
        let cfg = SrlaTrainConfig {
            iterations: 6,
            duration_s: 0.004,
            n_servers: 4,
            ..Default::default()
        };
        let history = train_srla(&mut net, &SizeDistribution::web_search(), &cfg, &mut rng);
        assert_eq!(history.len(), 7);
        // (1+1)-ES keeps the best: the history must be non-increasing.
        for w in history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "ES regressed: {:?}", w);
        }
    }

    #[test]
    fn good_thresholds_beat_degenerate_on_web_search() {
        // Thresholds that demote elephants beat "everything stays top
        // priority" (single-queue) on mean FCT.
        let mut rng = StdRng::seed_from_u64(21);
        let flows = generate_flows(
            &SizeDistribution::web_search(),
            8,
            10e9,
            0.7,
            0.03,
            &mut rng,
        );
        let tuned = evaluate_thresholds(
            flows.clone(),
            MlfqThresholds::default_web_search(),
            fabric(),
        );
        let single_queue = evaluate_thresholds(
            flows,
            MlfqThresholds::new(vec![1e14, 2e14, 3e14]).unwrap(),
            fabric(),
        );
        assert!(
            tuned < single_queue,
            "tuned {tuned} should beat single-queue {single_queue}"
        );
    }
}
