//! lRLA — AuTO's long-flow RL agent: at each long-flow decision point it
//! observes the active long flows (the paper's 143-dimensional state) and
//! picks one of 108 actions = 4 priorities × 27 rate-limit levels.

use crate::mlfq::N_PRIORITIES;
use crate::sim::{DecisionPoint, FlowDecision, FlowSim, SimConfig};
use crate::workload::FlowRequest;
use metis_nn::{Activation, Mlp};
use metis_rl::{ActorCritic, Env, Step, TrainConfig};
use rand::rngs::StdRng;

/// Long flows tracked in the lRLA state.
pub const LRLA_FLOWS: usize = 20;
/// Features per tracked flow.
pub const LRLA_FEATURES: usize = 7;
/// Global summary features.
pub const LRLA_GLOBALS: usize = 3;
/// Total state dimensionality (the paper's "143 states").
pub const LRLA_STATE_DIM: usize = LRLA_FLOWS * LRLA_FEATURES + LRLA_GLOBALS;
/// Rate-limit levels (level 26 = uncapped).
pub const RATE_LEVELS: usize = 27;
/// Total discrete actions (the paper's 108 = 4 × 27).
pub const LRLA_ACTIONS: usize = N_PRIORITIES * RATE_LEVELS;

/// Decode an action index into a [`FlowDecision`].
pub fn decode_action(action: usize, link_bps: f64) -> FlowDecision {
    assert!(action < LRLA_ACTIONS, "action out of range");
    let priority = action / RATE_LEVELS;
    let level = action % RATE_LEVELS;
    let rate_cap_bps = if level == RATE_LEVELS - 1 {
        None // uncapped
    } else {
        // Log-spaced caps from 1% to ~92% of the link rate.
        Some(link_bps * 10f64.powf(-2.0 + 2.0 * level as f64 / (RATE_LEVELS - 1) as f64))
    };
    FlowDecision {
        priority,
        rate_cap_bps,
    }
}

/// Encode the inverse (used by tests and by the tree-policy wrapper).
pub fn encode_action(priority: usize, level: usize) -> usize {
    assert!(priority < N_PRIORITIES && level < RATE_LEVELS);
    priority * RATE_LEVELS + level
}

/// Build the lRLA observation at a decision point: features of up to 20
/// active long flows (the flow awaiting a decision first), then globals.
pub fn lrla_state(sim: &FlowSim, deciding_flow: usize) -> Vec<f64> {
    let fabric = &sim.config().fabric;
    let cutoff = sim.config().long_flow_cutoff_bytes;
    let mut state = vec![0.0; LRLA_STATE_DIM];
    // Order: the deciding flow first, then other long flows by remaining.
    let mut long: Vec<&crate::sim::ActiveFlow> = sim
        .active_flows()
        .iter()
        .filter(|f| f.req.size_bytes >= cutoff)
        .collect();
    long.sort_by(|a, b| {
        let key_a = (a.req.id != deciding_flow, -a.remaining_bytes());
        let key_b = (b.req.id != deciding_flow, -b.remaining_bytes());
        key_a.partial_cmp(&key_b).unwrap()
    });
    for (slot, f) in long.iter().take(LRLA_FLOWS).enumerate() {
        let base = slot * LRLA_FEATURES;
        state[base] = f.req.src as f64 / fabric.n_servers as f64;
        state[base + 1] = f.req.dst as f64 / fabric.n_servers as f64;
        state[base + 2] = f.req.size_bytes.max(1.0).log10() / 12.0;
        state[base + 3] = f.bytes_sent / f.req.size_bytes.max(1.0);
        state[base + 4] = f.rate_bps / fabric.link_bps;
        state[base + 5] = f.priority(&sim.config().thresholds) as f64 / N_PRIORITIES as f64;
        state[base + 6] = if f.req.id == deciding_flow { 1.0 } else { 0.0 };
    }
    let n_long = long.len();
    let n_total = sim.active_flows().len();
    state[LRLA_FLOWS * LRLA_FEATURES] = (n_long as f64 / LRLA_FLOWS as f64).min(1.0);
    state[LRLA_FLOWS * LRLA_FEATURES + 1] = (n_total as f64 / 100.0).min(1.0);
    state[LRLA_FLOWS * LRLA_FEATURES + 2] = (sim.time_s() / 0.1).min(1.0); // episode progress on a 100 ms horizon
    state
}

/// The lRLA training environment: one episode = one workload run; one step
/// = one long-flow decision. Reward is the negative mean slowdown of flows
/// completed since the previous decision (0 when none completed).
#[derive(Debug, Clone)]
pub struct LrlaEnv {
    flows: Vec<FlowRequest>,
    config: SimConfig,
    sim: FlowSim,
    pending_decision: Option<DecisionPoint>,
    completed_seen: usize,
}

impl LrlaEnv {
    pub fn new(flows: Vec<FlowRequest>, config: SimConfig) -> Self {
        let sim = FlowSim::new(flows.clone(), config.clone());
        LrlaEnv {
            flows,
            config,
            sim,
            pending_decision: None,
            completed_seen: 0,
        }
    }

    /// The underlying simulator (post-episode inspection).
    pub fn sim(&self) -> &FlowSim {
        &self.sim
    }

    fn reward_since_last(&mut self) -> f64 {
        let fabric = &self.config.fabric;
        let new = &self.sim.completed()[self.completed_seen..];
        self.completed_seen = self.sim.completed().len();
        if new.is_empty() {
            return 0.0;
        }
        let mean_slowdown: f64 = new
            .iter()
            .map(|f| {
                let ideal = f.size_bytes * 8.0 / fabric.link_bps;
                (f.fct_s / ideal.max(1e-12)).min(1e4)
            })
            .sum::<f64>()
            / new.len() as f64;
        -mean_slowdown.log10()
    }
}

impl Env for LrlaEnv {
    fn reset(&mut self) -> Vec<f64> {
        self.sim = FlowSim::new(self.flows.clone(), self.config.clone());
        self.completed_seen = 0;
        self.pending_decision = self.sim.run_until_decision();
        match &self.pending_decision {
            Some(dp) => lrla_state(&self.sim, dp.flow_id),
            // Degenerate workload without long flows: a zero observation;
            // the first step will immediately terminate.
            None => vec![0.0; LRLA_STATE_DIM],
        }
    }

    fn step(&mut self, action: usize) -> Step {
        let Some(dp) = self.pending_decision.take() else {
            return Step {
                obs: vec![0.0; LRLA_STATE_DIM],
                reward: 0.0,
                done: true,
            };
        };
        let decision = decode_action(action, self.config.fabric.link_bps);
        self.sim.apply_decision(dp.flow_id, decision);
        self.pending_decision = self.sim.run_until_decision();
        let reward = self.reward_since_last();
        match &self.pending_decision {
            Some(next) => Step {
                obs: lrla_state(&self.sim, next.flow_id),
                reward,
                done: false,
            },
            None => Step {
                obs: vec![0.0; LRLA_STATE_DIM],
                reward,
                done: true,
            },
        }
    }

    fn n_actions(&self) -> usize {
        LRLA_ACTIONS
    }

    fn obs_dim(&self) -> usize {
        LRLA_STATE_DIM
    }
}

/// Build an lRLA actor-critic with the given hidden widths.
pub fn lrla_agent(hidden: &[usize], config: TrainConfig, rng: &mut StdRng) -> ActorCritic<Mlp> {
    ActorCritic::new(LRLA_STATE_DIM, LRLA_ACTIONS, hidden, config, rng)
}

/// The paper-scale lRLA network (600×600 hidden), used by the latency and
/// deployment benchmarks.
pub fn lrla_net_paper_scale(rng: &mut StdRng) -> Mlp {
    Mlp::new(
        &[LRLA_STATE_DIM, 600, 600, LRLA_ACTIONS],
        Activation::Tanh,
        Activation::Linear,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlfq::MlfqThresholds;
    use crate::sim::FabricConfig;
    use crate::workload::{generate_flows, SizeDistribution};
    use metis_rl::{rollout, ActionMode, UniformPolicy};
    use rand::SeedableRng;

    fn test_config() -> SimConfig {
        SimConfig {
            fabric: FabricConfig {
                n_servers: 8,
                link_bps: 10e9,
            },
            thresholds: MlfqThresholds::default_web_search(),
            long_flow_cutoff_bytes: 1e6,
            decision_latency_s: 0.0,
        }
    }

    fn test_flows(seed: u64) -> Vec<FlowRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_flows(
            &SizeDistribution::web_search(),
            8,
            10e9,
            0.5,
            0.01,
            &mut rng,
        )
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(LRLA_STATE_DIM, 143);
        assert_eq!(LRLA_ACTIONS, 108);
    }

    #[test]
    fn action_codec_roundtrip() {
        for p in 0..N_PRIORITIES {
            for l in 0..RATE_LEVELS {
                let a = encode_action(p, l);
                let d = decode_action(a, 10e9);
                assert_eq!(d.priority, p);
                if l == RATE_LEVELS - 1 {
                    assert!(d.rate_cap_bps.is_none());
                } else {
                    let cap = d.rate_cap_bps.unwrap();
                    assert!(cap > 0.0 && cap <= 10e9);
                }
            }
        }
    }

    #[test]
    fn rate_caps_log_spaced_increasing() {
        let caps: Vec<f64> = (0..RATE_LEVELS - 1)
            .map(|l| {
                decode_action(encode_action(0, l), 10e9)
                    .rate_cap_bps
                    .unwrap()
            })
            .collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]));
        assert!((caps[0] - 1e8).abs() / 1e8 < 0.01, "lowest cap ~1% of 10G");
    }

    #[test]
    fn env_episode_with_random_policy() {
        let mut env = LrlaEnv::new(test_flows(3), test_config());
        let obs = env.reset();
        assert_eq!(obs.len(), 143);
        let mut rng = StdRng::seed_from_u64(0);
        let traj = rollout(
            &mut env,
            &UniformPolicy {
                n_actions: LRLA_ACTIONS,
            },
            ActionMode::Sample,
            10_000,
            &mut rng,
        );
        assert!(
            traj.terminated,
            "episode must reach the end of the workload"
        );
        assert!(!traj.is_empty(), "workload must contain long flows");
        // After the episode every flow must have finished.
        assert!(env.sim().done());
    }

    #[test]
    fn deciding_flow_is_marked_in_state() {
        let mut env = LrlaEnv::new(test_flows(5), test_config());
        let obs = env.reset();
        // Slot 0 is the deciding flow: its marker feature must be 1.
        assert_eq!(obs[6], 1.0);
    }

    #[test]
    fn bad_decisions_hurt_fct() {
        // Capping every long flow to 1% of the link must increase long-flow
        // FCT versus leaving them uncapped at top priority.
        let flows = test_flows(11);
        let run = |action: usize| {
            let mut env = LrlaEnv::new(flows.clone(), test_config());
            env.reset();
            loop {
                let s = env.step(action);
                if s.done {
                    break;
                }
            }
            let done = env.sim().completed().to_vec();
            let long: Vec<_> = done.into_iter().filter(|f| f.size_bytes >= 1e6).collect();
            long.iter().map(|f| f.fct_s).sum::<f64>() / long.len().max(1) as f64
        };
        let uncapped = run(encode_action(0, RATE_LEVELS - 1));
        let strangled = run(encode_action(3, 0));
        assert!(
            strangled > uncapped * 2.0,
            "1% cap should badly hurt long flows: {strangled} vs {uncapped}"
        );
    }

    #[test]
    fn env_clone_is_deterministic() {
        let mut a = LrlaEnv::new(test_flows(7), test_config());
        a.reset();
        let mut b = a.clone();
        let sa = a.step(5);
        let sb = b.step(5);
        assert_eq!(sa.obs, sb.obs);
        assert_eq!(sa.reward, sb.reward);
    }

    #[test]
    fn agent_constructs_at_both_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let ac = lrla_agent(&[32], TrainConfig::default(), &mut rng);
        let probs = metis_rl::Policy::action_probs(&ac.policy, &vec![0.0; 143]);
        assert_eq!(probs.len(), 108);
        let big = lrla_net_paper_scale(&mut rng);
        assert_eq!(metis_nn::Network::in_dim(&big), 143);
        assert_eq!(metis_nn::Network::out_dim(&big), 108);
    }
}
