//! Flow-level discrete-event simulator of the AuTO fabric: 16 servers
//! behind one switch, strict-priority queueing with max-min fair sharing
//! within each priority, MLFQ demotion for undecided flows, and optional
//! per-flow decisions (priority + rate cap) that activate after a
//! configurable decision latency — the mechanism behind Figures 15(b),
//! 16 and 17(a).

use crate::mlfq::{MlfqThresholds, N_PRIORITIES};
use crate::workload::FlowRequest;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Fabric shape (AuTO: 16 servers, one switch, 10 Gbps edges).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    pub n_servers: usize,
    pub link_bps: f64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            n_servers: 16,
            link_bps: 10e9,
        }
    }
}

/// A per-flow decision from the long-flow agent (lRLA).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowDecision {
    /// Static priority (0 = highest, < [`N_PRIORITIES`]).
    pub priority: usize,
    /// Optional rate limit in bits/s.
    pub rate_cap_bps: Option<f64>,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub fabric: FabricConfig,
    /// MLFQ demotion thresholds for undecided flows (sRLA's output).
    pub thresholds: MlfqThresholds,
    /// Flows at least this large receive per-flow decisions.
    pub long_flow_cutoff_bytes: f64,
    /// Delay between a long flow's arrival and its decision taking effect
    /// (the agent's decision latency; Figure 16).
    pub decision_latency_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fabric: FabricConfig::default(),
            thresholds: MlfqThresholds::default_web_search(),
            long_flow_cutoff_bytes: 1e6,
            decision_latency_s: 0.0,
        }
    }
}

/// A finished flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedFlow {
    pub id: usize,
    pub src: usize,
    pub dst: usize,
    pub size_bytes: f64,
    pub arrival_s: f64,
    pub fct_s: f64,
}

/// A live flow (exposed through [`FlowSim::active_flows`] snapshots).
#[derive(Debug, Clone)]
pub struct ActiveFlow {
    pub req: FlowRequest,
    pub bytes_sent: f64,
    pub decision: Option<FlowDecision>,
    /// When a pending per-flow decision activates (None once applied or for
    /// short flows).
    decision_due_s: Option<f64>,
    pub rate_bps: f64,
}

impl ActiveFlow {
    /// Current scheduling priority.
    pub fn priority(&self, thresholds: &MlfqThresholds) -> usize {
        match self.decision {
            Some(d) => d.priority,
            None => thresholds.priority(self.bytes_sent),
        }
    }

    pub fn remaining_bytes(&self) -> f64 {
        (self.req.size_bytes - self.bytes_sent).max(0.0)
    }
}

/// A point where the simulator pauses for a per-flow decision.
#[derive(Debug, Clone)]
pub struct DecisionPoint {
    pub flow_id: usize,
    pub time_s: f64,
}

/// The incremental flow-level simulator.
#[derive(Debug, Clone)]
pub struct FlowSim {
    config: SimConfig,
    pending: VecDeque<FlowRequest>,
    active: Vec<ActiveFlow>,
    completed: Vec<CompletedFlow>,
    time_s: f64,
}

const EPS: f64 = 1e-9;

impl FlowSim {
    /// Build a simulator over a pre-generated (arrival-sorted) flow list.
    pub fn new(mut flows: Vec<FlowRequest>, config: SimConfig) -> Self {
        flows.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).unwrap());
        for f in &flows {
            assert!(f.src != f.dst, "flow {} has src == dst", f.id);
            assert!(
                f.src < config.fabric.n_servers && f.dst < config.fabric.n_servers,
                "flow endpoints out of range"
            );
        }
        FlowSim {
            config,
            pending: flows.into(),
            active: Vec::new(),
            completed: Vec::new(),
            time_s: 0.0,
        }
    }

    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    pub fn active_flows(&self) -> &[ActiveFlow] {
        &self.active
    }

    pub fn completed(&self) -> &[CompletedFlow] {
        &self.completed
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    pub fn done(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Exact max-min rates under strict priority, edge-link capacities and
    /// per-flow caps (progressive filling per priority level).
    fn compute_rates(&self) -> Vec<f64> {
        let ns = self.config.fabric.n_servers;
        let cap = self.config.fabric.link_bps;
        let mut tx = vec![cap; ns];
        let mut rx = vec![cap; ns];
        let mut rates = vec![0.0; self.active.len()];

        for p in 0..N_PRIORITIES {
            let members: Vec<usize> = (0..self.active.len())
                .filter(|&i| self.active[i].priority(&self.config.thresholds) == p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut unfrozen: Vec<usize> = members;
            while !unfrozen.is_empty() {
                // Per-link unfrozen counts.
                let mut tx_count = vec![0usize; ns];
                let mut rx_count = vec![0usize; ns];
                for &i in &unfrozen {
                    tx_count[self.active[i].req.src] += 1;
                    rx_count[self.active[i].req.dst] += 1;
                }
                // Candidate rate per flow: min of link fair shares and cap.
                let mut min_rate = f64::INFINITY;
                let candidates: Vec<f64> = unfrozen
                    .iter()
                    .map(|&i| {
                        let f = &self.active[i];
                        let fair_tx = tx[f.req.src] / tx_count[f.req.src] as f64;
                        let fair_rx = rx[f.req.dst] / rx_count[f.req.dst] as f64;
                        let mut c = fair_tx.min(fair_rx);
                        if let Some(d) = f.decision {
                            if let Some(rc) = d.rate_cap_bps {
                                c = c.min(rc);
                            }
                        }
                        min_rate = min_rate.min(c);
                        c
                    })
                    .collect();
                // Freeze every flow at the global minimum candidate.
                let mut still = Vec::with_capacity(unfrozen.len());
                for (k, &i) in unfrozen.iter().enumerate() {
                    if candidates[k] <= min_rate * (1.0 + 1e-12) {
                        rates[i] = min_rate.max(0.0);
                        tx[self.active[i].req.src] =
                            (tx[self.active[i].req.src] - rates[i]).max(0.0);
                        rx[self.active[i].req.dst] =
                            (rx[self.active[i].req.dst] - rates[i]).max(0.0);
                    } else {
                        still.push(i);
                    }
                }
                debug_assert!(still.len() < unfrozen.len(), "progressive filling stalled");
                unfrozen = still;
            }
        }
        rates
    }

    /// Advance to the next event. Returns a [`DecisionPoint`] when a
    /// long-flow decision activates (the caller should then invoke
    /// [`FlowSim::apply_decision`]); returns `None` for internal events.
    ///
    /// # Panics
    /// Panics if called when [`FlowSim::done`].
    fn advance(&mut self) -> Option<DecisionPoint> {
        assert!(!self.done(), "advance called on a finished simulation");
        let rates = self.compute_rates();
        for (f, &r) in self.active.iter_mut().zip(rates.iter()) {
            f.rate_bps = r;
        }

        // Earliest next event.
        #[derive(PartialEq)]
        enum Ev {
            Arrival,
            Completion(usize),
            Threshold(usize),
            Decision(usize),
        }
        let mut best_dt = f64::INFINITY;
        let mut best_ev = Ev::Arrival;
        if let Some(next) = self.pending.front() {
            let dt = (next.arrival_s - self.time_s).max(0.0);
            if dt < best_dt {
                best_dt = dt;
                best_ev = Ev::Arrival;
            }
        }
        for (i, f) in self.active.iter().enumerate() {
            let bytes_per_s = f.rate_bps / 8.0;
            if bytes_per_s > 0.0 {
                let dt_done = f.remaining_bytes() / bytes_per_s;
                if dt_done < best_dt {
                    best_dt = dt_done;
                    best_ev = Ev::Completion(i);
                }
                if f.decision.is_none() {
                    if let Some(th) = self.config.thresholds.next_threshold(f.bytes_sent) {
                        let dt_th = (th - f.bytes_sent) / bytes_per_s;
                        if dt_th < best_dt - EPS && dt_th > EPS {
                            best_dt = dt_th;
                            best_ev = Ev::Threshold(i);
                        }
                    }
                }
            }
            if let Some(due) = f.decision_due_s {
                let dt_dec = (due - self.time_s).max(0.0);
                if dt_dec < best_dt {
                    best_dt = dt_dec;
                    best_ev = Ev::Decision(i);
                }
            }
        }
        assert!(
            best_dt.is_finite(),
            "no progress possible: {} active flows all starved with no arrivals",
            self.active.len()
        );

        // Transfer bytes over the interval.
        for f in &mut self.active {
            f.bytes_sent = (f.bytes_sent + f.rate_bps / 8.0 * best_dt).min(f.req.size_bytes);
        }
        self.time_s += best_dt;

        match best_ev {
            Ev::Arrival => {
                let req = self.pending.pop_front().unwrap();
                let is_long = req.size_bytes >= self.config.long_flow_cutoff_bytes;
                let decision_due_s = if is_long {
                    Some(self.time_s + self.config.decision_latency_s)
                } else {
                    None
                };
                self.active.push(ActiveFlow {
                    req,
                    bytes_sent: 0.0,
                    decision: None,
                    decision_due_s,
                    rate_bps: 0.0,
                });
                None
            }
            Ev::Completion(i) => {
                let f = self.active.swap_remove(i);
                self.completed.push(CompletedFlow {
                    id: f.req.id,
                    src: f.req.src,
                    dst: f.req.dst,
                    size_bytes: f.req.size_bytes,
                    arrival_s: f.req.arrival_s,
                    fct_s: self.time_s - f.req.arrival_s,
                });
                None
            }
            Ev::Threshold(_) => None, // demotion shows up in the next rate computation
            Ev::Decision(i) => {
                self.active[i].decision_due_s = None;
                Some(DecisionPoint {
                    flow_id: self.active[i].req.id,
                    time_s: self.time_s,
                })
            }
        }
    }

    /// Run until the next per-flow decision point, or to completion.
    pub fn run_until_decision(&mut self) -> Option<DecisionPoint> {
        while !self.done() {
            if let Some(dp) = self.advance() {
                return Some(dp);
            }
        }
        None
    }

    /// Apply a per-flow decision (from lRLA or a heuristic). No-op if the
    /// flow already finished — decisions can race with completion.
    pub fn apply_decision(&mut self, flow_id: usize, decision: FlowDecision) {
        assert!(decision.priority < N_PRIORITIES, "priority out of range");
        if let Some(f) = self.active.iter_mut().find(|f| f.req.id == flow_id) {
            f.decision = Some(decision);
        }
    }

    /// Run to completion, applying `decide` at every decision point.
    pub fn run_with(
        &mut self,
        mut decide: impl FnMut(&FlowSim, &DecisionPoint) -> FlowDecision,
    ) -> &[CompletedFlow] {
        while let Some(dp) = self.run_until_decision() {
            let d = decide(self, &dp);
            self.apply_decision(dp.flow_id, d);
        }
        &self.completed
    }

    /// Run to completion with pure MLFQ (no per-flow decisions applied).
    pub fn run_mlfq_only(&mut self) -> &[CompletedFlow] {
        while self.run_until_decision().is_some() {}
        &self.completed
    }
}

/// FCT summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FctStats {
    pub count: usize,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p75_s: f64,
    pub p90_s: f64,
    pub p99_s: f64,
}

impl FctStats {
    pub fn from_flows(flows: &[CompletedFlow]) -> Self {
        assert!(!flows.is_empty(), "FctStats of empty flow set");
        let mut fcts: Vec<f64> = flows.iter().map(|f| f.fct_s).collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| {
            let rank = (p / 100.0 * (fcts.len() - 1) as f64).round() as usize;
            fcts[rank.min(fcts.len() - 1)]
        };
        FctStats {
            count: fcts.len(),
            mean_s: fcts.iter().sum::<f64>() / fcts.len() as f64,
            p50_s: pct(50.0),
            p75_s: pct(75.0),
            p90_s: pct(90.0),
            p99_s: pct(99.0),
        }
    }

    /// Stats restricted to a size band `[lo, hi)` in bytes.
    pub fn from_flows_sized(flows: &[CompletedFlow], lo: f64, hi: f64) -> Option<Self> {
        let subset: Vec<CompletedFlow> = flows
            .iter()
            .filter(|f| f.size_bytes >= lo && f.size_bytes < hi)
            .cloned()
            .collect();
        if subset.is_empty() {
            None
        } else {
            Some(Self::from_flows(&subset))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_flows, SizeDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn req(id: usize, src: usize, dst: usize, size: f64, at: f64) -> FlowRequest {
        FlowRequest {
            id,
            src,
            dst,
            size_bytes: size,
            arrival_s: at,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig {
            fabric: FabricConfig {
                n_servers: 4,
                link_bps: 1e9,
            },
            thresholds: MlfqThresholds::new(vec![10_000.0, 100_000.0, 1_000_000.0]).unwrap(),
            long_flow_cutoff_bytes: f64::INFINITY, // MLFQ-only by default
            decision_latency_s: 0.0,
        }
    }

    #[test]
    fn single_flow_gets_full_link() {
        let mut sim = FlowSim::new(vec![req(0, 0, 1, 1_000_000.0, 0.0)], cfg());
        let done = sim.run_mlfq_only();
        assert_eq!(done.len(), 1);
        // 1 MB at 1 Gbps = 8 ms.
        assert!(
            (done[0].fct_s - 0.008).abs() < 1e-9,
            "fct {}",
            done[0].fct_s
        );
    }

    #[test]
    fn two_flows_share_sender_link() {
        // Same src, different dst: the tx link is the bottleneck.
        let flows = vec![
            req(0, 0, 1, 1_000_000.0, 0.0),
            req(1, 0, 2, 1_000_000.0, 0.0),
        ];
        let mut sim = FlowSim::new(flows, cfg());
        let done = sim.run_mlfq_only().to_vec();
        // Same priority path throughout (identical sizes): both finish at
        // 2 MB / 1 Gbps = 16 ms.
        for f in &done {
            assert!((f.fct_s - 0.016).abs() < 1e-6, "fct {}", f.fct_s);
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let flows = vec![
            req(0, 0, 1, 1_000_000.0, 0.0),
            req(1, 2, 3, 1_000_000.0, 0.0),
        ];
        let mut sim = FlowSim::new(flows, cfg());
        let done = sim.run_mlfq_only();
        for f in done {
            assert!((f.fct_s - 0.008).abs() < 1e-9);
        }
    }

    #[test]
    fn mlfq_prioritizes_new_small_flow_over_demoted_elephant() {
        // Elephant starts first and demotes below the first threshold; a
        // mouse arriving later preempts it entirely.
        let flows = vec![req(0, 0, 1, 10_000_000.0, 0.0), req(1, 0, 1, 5_000.0, 0.01)];
        let mut sim = FlowSim::new(flows, cfg());
        let done: Vec<_> = sim.run_mlfq_only().to_vec();
        let mouse = done.iter().find(|f| f.id == 1).unwrap();
        // Mouse sees (almost) the full link: 5 KB at 1 Gbps = 40 µs.
        assert!(
            mouse.fct_s < 0.0001,
            "mouse should preempt the demoted elephant, fct {}",
            mouse.fct_s
        );
    }

    #[test]
    fn strict_priority_starves_lower_queue() {
        // Two permanent-priority flows via decisions.
        let mut config = cfg();
        config.long_flow_cutoff_bytes = 0.0; // everything gets decisions
        let flows = vec![
            req(0, 0, 1, 1_000_000.0, 0.0),
            req(1, 2, 1, 1_000_000.0, 0.0),
        ];
        let mut sim = FlowSim::new(flows, config);
        let done = sim
            .run_with(|_, dp| {
                if dp.flow_id == 0 {
                    FlowDecision {
                        priority: 0,
                        rate_cap_bps: None,
                    }
                } else {
                    FlowDecision {
                        priority: 3,
                        rate_cap_bps: None,
                    }
                }
            })
            .to_vec();
        let hi = done.iter().find(|f| f.id == 0).unwrap();
        let lo = done.iter().find(|f| f.id == 1).unwrap();
        // Receiver link shared: high priority finishes at full rate, the
        // low one only then proceeds: 8 ms vs 16 ms.
        assert!((hi.fct_s - 0.008).abs() < 1e-6, "hi fct {}", hi.fct_s);
        assert!((lo.fct_s - 0.016).abs() < 1e-6, "lo fct {}", lo.fct_s);
    }

    #[test]
    fn rate_cap_respected() {
        let mut config = cfg();
        config.long_flow_cutoff_bytes = 0.0;
        let mut sim = FlowSim::new(vec![req(0, 0, 1, 1_000_000.0, 0.0)], config);
        let done = sim
            .run_with(|_, _| FlowDecision {
                priority: 0,
                rate_cap_bps: Some(1e8),
            })
            .to_vec();
        // 1 MB at 100 Mbps = 80 ms.
        assert!((done[0].fct_s - 0.08).abs() < 1e-6, "fct {}", done[0].fct_s);
    }

    #[test]
    fn decision_latency_delays_activation() {
        let mut config = cfg();
        config.long_flow_cutoff_bytes = 0.0;
        config.decision_latency_s = 0.005;
        let mut sim = FlowSim::new(vec![req(0, 0, 1, 10_000_000.0, 0.0)], config);
        let dp = sim.run_until_decision().expect("must pause for a decision");
        assert_eq!(dp.flow_id, 0);
        assert!(
            (dp.time_s - 0.005).abs() < 1e-9,
            "decision at {}",
            dp.time_s
        );
        // Before the decision the flow already transferred bytes via MLFQ.
        assert!(sim.active_flows()[0].bytes_sent > 0.0);
        sim.apply_decision(
            0,
            FlowDecision {
                priority: 1,
                rate_cap_bps: None,
            },
        );
        assert!(sim.run_until_decision().is_none());
        assert_eq!(sim.completed().len(), 1);
    }

    #[test]
    fn all_flows_complete_conservation() {
        let dist = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(11);
        let flows = generate_flows(&dist, 16, 10e9, 0.5, 0.05, &mut rng);
        let n = flows.len();
        assert!(n > 20, "want a non-trivial flow count, got {n}");
        let config = SimConfig {
            thresholds: MlfqThresholds::default_web_search(),
            ..Default::default()
        };
        let mut sim = FlowSim::new(flows, config);
        let done = sim.run_mlfq_only();
        assert_eq!(done.len(), n, "every flow must finish");
        assert!(done.iter().all(|f| f.fct_s > 0.0));
        // No flow can beat the line rate.
        for f in done {
            let ideal = f.size_bytes * 8.0 / 10e9;
            assert!(f.fct_s >= ideal - 1e-12, "fct {} < ideal {ideal}", f.fct_s);
        }
    }

    #[test]
    fn mlfq_beats_single_queue_on_mean_fct() {
        // The whole point of MLFQ: short flows escape elephants.
        let dist = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(5);
        let flows = generate_flows(&dist, 8, 10e9, 0.7, 0.05, &mut rng);

        let mut mlfq_cfg = SimConfig::default();
        mlfq_cfg.fabric.n_servers = 8;
        let mut fair_cfg = mlfq_cfg.clone();
        // One giant first threshold => effectively a single queue.
        fair_cfg.thresholds = MlfqThresholds::new(vec![1e15, 2e15, 3e15]).unwrap();

        let mut sim_a = FlowSim::new(flows.clone(), mlfq_cfg);
        let mut sim_b = FlowSim::new(flows, fair_cfg);
        let a = FctStats::from_flows(sim_a.run_mlfq_only());
        let b = FctStats::from_flows(sim_b.run_mlfq_only());
        assert!(
            a.mean_s < b.mean_s,
            "MLFQ mean FCT {} should beat fair-share {}",
            a.mean_s,
            b.mean_s
        );
    }

    #[test]
    fn fct_stats_percentiles() {
        let flows: Vec<CompletedFlow> = (1..=100)
            .map(|i| CompletedFlow {
                id: i,
                src: 0,
                dst: 1,
                size_bytes: 1.0,
                arrival_s: 0.0,
                fct_s: i as f64,
            })
            .collect();
        let s = FctStats::from_flows(&flows);
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 50.5).abs() < 1e-9);
        assert!((s.p50_s - 50.0).abs() < 2.0);
        assert!((s.p99_s - 99.0).abs() < 2.0);
        let banded = FctStats::from_flows_sized(&flows, 0.0, 2.0).unwrap();
        assert_eq!(banded.count, 100);
        assert!(FctStats::from_flows_sized(&flows, 5.0, 6.0).is_none());
    }
}
