//! Datacenter traffic workloads: the two empirical flow-size distributions
//! AuTO evaluates on — **web search** (DCTCP, Alizadeh et al. 2010) and
//! **data mining** (VL2, Greenberg et al. 2009) — encoded as published-shape
//! CDFs with log-linear interpolation, plus Poisson arrival generation at a
//! target fabric load.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A named flow-size CDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeDistribution {
    pub name: String,
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl SizeDistribution {
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "CDF needs at least two points");
        assert!(
            points
                .windows(2)
                .all(|w| w[1].0 > w[0].0 && w[1].1 >= w[0].1),
            "CDF points must be increasing"
        );
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0"
        );
        SizeDistribution {
            name: name.into(),
            points,
        }
    }

    /// The web-search workload (DCTCP): query/response traffic, mean
    /// ≈ 1.6 MB, with a mix of small RPCs and multi-MB responses.
    pub fn web_search() -> Self {
        SizeDistribution::new(
            "web-search",
            vec![
                (6_000.0, 0.15),
                (13_000.0, 0.20),
                (19_000.0, 0.30),
                (33_000.0, 0.40),
                (53_000.0, 0.53),
                (133_000.0, 0.60),
                (667_000.0, 0.70),
                (1_467_000.0, 0.80),
                (3_333_000.0, 0.90),
                (6_667_000.0, 0.95),
                (20_000_000.0, 0.98),
                (30_000_000.0, 1.00),
            ],
        )
    }

    /// The data-mining workload (VL2): dominated by tiny control flows with
    /// an extremely heavy elephant tail (most *bytes* live in a few flows).
    pub fn data_mining() -> Self {
        SizeDistribution::new(
            "data-mining",
            vec![
                (100.0, 0.30),
                (300.0, 0.50),
                (1_000.0, 0.60),
                (2_000.0, 0.70),
                (10_000.0, 0.78),
                (100_000.0, 0.85),
                (1_000_000.0, 0.91),
                (10_000_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.00),
            ],
        )
    }

    /// Inverse-CDF sample with log-linear interpolation between points.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.quantile(u)
    }

    /// Size at cumulative probability `u` (log-linear interpolation).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            // Below the first knot: interpolate from a nominal minimum.
            let min_size = (first.0 / 10.0).max(64.0);
            let frac = u / first.1.max(1e-12);
            return (min_size.ln() + frac * (first.0.ln() - min_size.ln())).exp();
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 - p0 < 1e-12 {
                    return s1;
                }
                let frac = (u - p0) / (p1 - p0);
                return (s0.ln() + frac * (s1.ln() - s0.ln())).exp();
            }
        }
        self.points.last().unwrap().0
    }

    /// Mean flow size (numerical integral of the quantile function).
    pub fn mean_bytes(&self) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }
}

/// One flow request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRequest {
    pub id: usize,
    pub src: usize,
    pub dst: usize,
    pub size_bytes: f64,
    pub arrival_s: f64,
}

/// Generate Poisson flow arrivals at `load` (fraction of per-host capacity)
/// for a fabric of `n_servers` hosts with `link_bps` edge links.
pub fn generate_flows(
    dist: &SizeDistribution,
    n_servers: usize,
    link_bps: f64,
    load: f64,
    duration_s: f64,
    rng: &mut StdRng,
) -> Vec<FlowRequest> {
    assert!(n_servers >= 2, "need at least two servers");
    assert!((0.0..1.5).contains(&load), "load should be a sane fraction");
    let mean_size = dist.mean_bytes();
    // Aggregate ingress capacity is n_servers * link; target load applies
    // per receiving host on average.
    let lambda = load * link_bps / 8.0 / mean_size * n_servers as f64;
    let mut flows = Vec::new();
    let mut t = 0.0;
    let mut id = 0;
    loop {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() / lambda;
        if t >= duration_s {
            break;
        }
        let src = rng.gen_range(0..n_servers);
        let mut dst = rng.gen_range(0..n_servers - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowRequest {
            id,
            src,
            dst,
            size_bytes: dist.sample(rng),
            arrival_s: t,
        });
        id += 1;
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quantile_monotone() {
        for dist in [
            SizeDistribution::web_search(),
            SizeDistribution::data_mining(),
        ] {
            let mut last = 0.0;
            for i in 0..100 {
                let q = dist.quantile(i as f64 / 99.0);
                assert!(q >= last, "{} quantile not monotone", dist.name);
                last = q;
            }
        }
    }

    #[test]
    fn web_search_mean_near_published() {
        let m = SizeDistribution::web_search().mean_bytes();
        // DCTCP reports ~1.6 MB mean.
        assert!(m > 800_000.0 && m < 3_000_000.0, "ws mean {m}");
    }

    #[test]
    fn data_mining_heavier_tail_than_web_search() {
        let ws = SizeDistribution::web_search();
        let dm = SizeDistribution::data_mining();
        // DM median is tiny compared to WS...
        assert!(dm.quantile(0.5) < ws.quantile(0.5) / 10.0);
        // ...but its tail is far heavier.
        assert!(dm.quantile(0.99) > ws.quantile(0.99));
    }

    #[test]
    fn samples_follow_cdf() {
        let dist = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(1);
        let mut below_median = 0;
        let n = 20_000;
        let median = dist.quantile(0.5);
        for _ in 0..n {
            if dist.sample(&mut rng) <= median {
                below_median += 1;
            }
        }
        let frac = below_median as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "median check failed: {frac}");
    }

    #[test]
    fn flows_generated_at_load() {
        let dist = SizeDistribution::web_search();
        let mut rng = StdRng::seed_from_u64(3);
        let link = 10e9;
        let flows = generate_flows(&dist, 16, link, 0.6, 2.0, &mut rng);
        assert!(!flows.is_empty());
        // Offered bytes per second per server should be ~load * capacity/8.
        let total_bytes: f64 = flows.iter().map(|f| f.size_bytes).sum();
        let offered = total_bytes / 2.0 / 16.0; // per server per second
        let target = 0.6 * link / 8.0;
        assert!(
            offered > 0.4 * target && offered < 1.7 * target,
            "offered {offered:.3e} vs target {target:.3e}"
        );
        // Arrivals sorted, ids unique, src != dst.
        assert!(flows.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.src < 16 && f.dst < 16));
    }

    #[test]
    fn deterministic_generation() {
        let dist = SizeDistribution::data_mining();
        let a = generate_flows(&dist, 4, 10e9, 0.3, 1.0, &mut StdRng::seed_from_u64(7));
        let b = generate_flows(&dist, 4, 10e9, 0.3, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must end at 1.0")]
    fn rejects_incomplete_cdf() {
        let _ = SizeDistribution::new("bad", vec![(1.0, 0.1), (2.0, 0.5)]);
    }
}
