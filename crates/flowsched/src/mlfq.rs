//! Multi-level feedback queues: the short-flow scheduling mechanism of
//! AuTO [16] (after PIAS). A flow starts in the highest-priority queue and
//! is demoted as its sent bytes cross the thresholds; the thresholds are
//! what the sRLA agent outputs.

use serde::{Deserialize, Serialize};

/// Number of priority levels in the fabric (AuTO's testbed configuration).
pub const N_PRIORITIES: usize = 4;

/// Demotion thresholds for [`N_PRIORITIES`] queues (so `N_PRIORITIES - 1`
/// strictly increasing byte thresholds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlfqThresholds {
    thresholds_bytes: Vec<f64>,
}

impl MlfqThresholds {
    /// Validate and build.
    pub fn new(thresholds_bytes: Vec<f64>) -> Result<Self, String> {
        if thresholds_bytes.len() != N_PRIORITIES - 1 {
            return Err(format!(
                "expected {} thresholds, got {}",
                N_PRIORITIES - 1,
                thresholds_bytes.len()
            ));
        }
        if !thresholds_bytes.iter().all(|&t| t > 0.0 && t.is_finite()) {
            return Err("thresholds must be positive and finite".to_string());
        }
        if !thresholds_bytes.windows(2).all(|w| w[1] > w[0]) {
            return Err("thresholds must be strictly increasing".to_string());
        }
        Ok(MlfqThresholds { thresholds_bytes })
    }

    /// A PIAS-style default tuned for the web-search workload.
    pub fn default_web_search() -> Self {
        MlfqThresholds::new(vec![20_000.0, 200_000.0, 2_000_000.0]).unwrap()
    }

    /// A default tuned for the data-mining workload (smaller first queue,
    /// matching its tiny-flow mass).
    pub fn default_data_mining() -> Self {
        MlfqThresholds::new(vec![1_000.0, 100_000.0, 10_000_000.0]).unwrap()
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.thresholds_bytes
    }

    /// Priority (0 = highest) of a flow that has sent `bytes_sent` bytes.
    pub fn priority(&self, bytes_sent: f64) -> usize {
        self.thresholds_bytes
            .iter()
            .filter(|&&t| bytes_sent >= t)
            .count()
    }

    /// Bytes until the next demotion (None if already in the lowest queue).
    pub fn next_threshold(&self, bytes_sent: f64) -> Option<f64> {
        self.thresholds_bytes
            .iter()
            .find(|&&t| bytes_sent < t)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn priority_progression() {
        let t = MlfqThresholds::new(vec![100.0, 1000.0, 10000.0]).unwrap();
        assert_eq!(t.priority(0.0), 0);
        assert_eq!(t.priority(99.0), 0);
        assert_eq!(t.priority(100.0), 1);
        assert_eq!(t.priority(5000.0), 2);
        assert_eq!(t.priority(1e9), 3);
    }

    #[test]
    fn next_threshold_lookup() {
        let t = MlfqThresholds::new(vec![100.0, 1000.0, 10000.0]).unwrap();
        assert_eq!(t.next_threshold(0.0), Some(100.0));
        assert_eq!(t.next_threshold(100.0), Some(1000.0));
        assert_eq!(t.next_threshold(99999.0), None);
    }

    #[test]
    fn validation() {
        assert!(MlfqThresholds::new(vec![1.0, 2.0]).is_err()); // wrong count
        assert!(MlfqThresholds::new(vec![2.0, 1.0, 3.0]).is_err()); // not increasing
        assert!(MlfqThresholds::new(vec![0.0, 1.0, 2.0]).is_err()); // non-positive
        assert!(MlfqThresholds::new(vec![1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn defaults_are_valid() {
        let _ = MlfqThresholds::default_web_search();
        let _ = MlfqThresholds::default_data_mining();
    }

    proptest! {
        /// Priority is monotone non-decreasing in bytes sent and bounded by
        /// the number of queues.
        #[test]
        fn prop_priority_monotone(a in 0.0_f64..1e9, b in 0.0_f64..1e9) {
            let t = MlfqThresholds::default_web_search();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(t.priority(lo) <= t.priority(hi));
            prop_assert!(t.priority(hi) < N_PRIORITIES);
        }
    }
}
