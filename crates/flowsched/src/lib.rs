//! # metis-flowsched — datacenter flow-scheduling substrate (AuTO)
//!
//! The AuTO side of the Metis reproduction. The original runs on a
//! 16-server testbed with two hardware switches; this crate rebuilds the
//! whole stack as a flow-level discrete-event simulation:
//!
//! * [`workload`] — web-search (DCTCP) and data-mining (VL2) flow-size
//!   CDFs with Poisson arrivals at a target load,
//! * [`mlfq`] — multi-level feedback queues (4 priorities, 3 thresholds),
//! * [`sim::FlowSim`] — strict-priority + max-min fair fabric simulator
//!   with MLFQ demotion, per-flow decisions, and decision latency,
//! * [`srla`] — the short-flow agent (700-dim state → 3 thresholds),
//! * [`lrla`] — the long-flow agent (143-dim state → 108 actions),
//! * [`coverage`] — the Figure-16b per-flow decision coverage model.

pub mod coverage;
pub mod lrla;
pub mod mlfq;
pub mod sim;
pub mod srla;
pub mod workload;

pub use coverage::{coverage, Coverage};
pub use lrla::{
    decode_action, encode_action, lrla_agent, lrla_net_paper_scale, lrla_state, LrlaEnv,
    LRLA_ACTIONS, LRLA_STATE_DIM, RATE_LEVELS,
};
pub use mlfq::{MlfqThresholds, N_PRIORITIES};
pub use sim::{
    ActiveFlow, CompletedFlow, DecisionPoint, FabricConfig, FctStats, FlowDecision, FlowSim,
    SimConfig,
};
pub use srla::{
    evaluate_thresholds, srla_decide, srla_net, srla_net_paper_scale, srla_state,
    thresholds_from_outputs, train_srla, SrlaTrainConfig, SRLA_OUT_DIM, SRLA_STATE_DIM,
};
pub use workload::{generate_flows, FlowRequest, SizeDistribution};
