//! Per-flow decision coverage (Figure 16b): a flow can only receive an
//! individualized scheduling decision if it lives longer than the agent's
//! decision latency. Faster decisions (the converted tree) therefore cover
//! more flows and more bytes.

use crate::sim::CompletedFlow;

/// Coverage of per-flow decisions at a given decision latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Fraction of flows whose FCT exceeds the latency.
    pub flow_fraction: f64,
    /// Fraction of bytes carried by those flows.
    pub byte_fraction: f64,
}

/// Compute coverage from a completed-flow population.
pub fn coverage(flows: &[CompletedFlow], decision_latency_s: f64) -> Coverage {
    if flows.is_empty() {
        return Coverage {
            flow_fraction: 0.0,
            byte_fraction: 0.0,
        };
    }
    let total_bytes: f64 = flows.iter().map(|f| f.size_bytes).sum();
    let covered: Vec<&CompletedFlow> = flows
        .iter()
        .filter(|f| f.fct_s > decision_latency_s)
        .collect();
    let covered_bytes: f64 = covered.iter().map(|f| f.size_bytes).sum();
    Coverage {
        flow_fraction: covered.len() as f64 / flows.len() as f64,
        byte_fraction: covered_bytes / total_bytes.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(size: f64, fct: f64) -> CompletedFlow {
        CompletedFlow {
            id: 0,
            src: 0,
            dst: 1,
            size_bytes: size,
            arrival_s: 0.0,
            fct_s: fct,
        }
    }

    #[test]
    fn zero_latency_covers_everything() {
        let flows = vec![flow(100.0, 0.001), flow(1e6, 0.1)];
        let c = coverage(&flows, 0.0);
        assert_eq!(c.flow_fraction, 1.0);
        assert_eq!(c.byte_fraction, 1.0);
    }

    #[test]
    fn latency_excludes_short_flows() {
        let flows = vec![flow(100.0, 0.001), flow(1e6, 0.1)];
        let c = coverage(&flows, 0.01);
        assert_eq!(c.flow_fraction, 0.5);
        // The surviving flow carries ~all the bytes.
        assert!(c.byte_fraction > 0.999);
    }

    #[test]
    fn coverage_monotone_in_latency() {
        let flows: Vec<CompletedFlow> = (1..100)
            .map(|i| flow(i as f64 * 1000.0, i as f64 * 0.001))
            .collect();
        let mut last = coverage(&flows, 0.0);
        for lat in [0.005, 0.02, 0.05, 0.09] {
            let c = coverage(&flows, lat);
            assert!(c.flow_fraction <= last.flow_fraction);
            assert!(c.byte_fraction <= last.byte_fraction);
            last = c;
        }
    }

    #[test]
    fn empty_population() {
        let c = coverage(&[], 0.1);
        assert_eq!(c.flow_fraction, 0.0);
    }
}
