//! Loss functions. Each returns `(loss, gradient-wrt-prediction)` so
//! callers can feed the gradient straight into `Mlp::backward`.

use crate::net::softmax;

/// Mean squared error over a slice pair: `mean((pred - target)^2)`.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.iter().zip(target.iter()) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

/// Huber loss with threshold `delta` (robust regression; used by critics).
pub fn huber(pred: &[f64], target: &[f64], delta: f64) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "huber: length mismatch");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.iter().zip(target.iter()) {
        let d = p - t;
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.push(d / n);
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.push(delta * d.signum() / n);
        }
    }
    (loss / n, grad)
}

/// Softmax cross-entropy against a one-hot target class.
///
/// Takes raw logits; the returned gradient is with respect to the logits
/// (the well-known `softmax - onehot` form).
pub fn softmax_cross_entropy(logits: &[f64], target: usize) -> (f64, Vec<f64>) {
    assert!(
        target < logits.len(),
        "softmax_cross_entropy: target out of range"
    );
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

/// Weighted softmax cross-entropy (sample weight multiplies loss and grad).
pub fn weighted_softmax_cross_entropy(
    logits: &[f64],
    target: usize,
    weight: f64,
) -> (f64, Vec<f64>) {
    let (loss, mut grad) = softmax_cross_entropy(logits, target);
    for g in &mut grad {
        *g *= weight;
    }
    (loss * weight, grad)
}

/// KL divergence `KL(p || q)` between two discrete distributions.
///
/// Zero entries in `p` contribute zero; entries of `q` are floored at 1e-12
/// for numerical safety. This is the `D` similarity term of Metis'
/// hypergraph mask objective for discrete outputs (Eq. 6).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence: length mismatch");
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-12)).ln()
            }
        })
        .sum()
}

/// Binary entropy `H(w) = -(w ln w + (1-w) ln(1-w))`, summed over the slice.
/// This is the determinism term of the mask objective (Eq. 8).
pub fn binary_entropy_sum(w: &[f64]) -> f64 {
    w.iter()
        .map(|&x| {
            let x = x.clamp(1e-12, 1.0 - 1e-12);
            -(x * x.ln() + (1.0 - x) * (1.0 - x).ln())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let (l, g) = mse(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn mse_known_value() {
        let (l, g) = mse(&[2.0, 0.0], &[0.0, 0.0]);
        assert!((l - 2.0).abs() < 1e-12); // (4 + 0)/2
        assert!((g[0] - 2.0).abs() < 1e-12); // 2*2/2
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let (l, g) = huber(&[0.5], &[0.0], 1.0);
        assert!((l - 0.125).abs() < 1e-12);
        assert!((g[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn huber_linear_outside_delta() {
        let (l, g) = huber(&[10.0], &[0.0], 1.0);
        assert!((l - 9.5).abs() < 1e-12);
        assert!((g[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = [1.0, 2.0, 3.0];
        let (loss, grad) = softmax_cross_entropy(&logits, 2);
        let probs = softmax(&logits);
        assert!(loss > 0.0);
        assert!((grad[0] - probs[0]).abs() < 1e-12);
        assert!((grad[2] - (probs[2] - 1.0)).abs() < 1e-12);
        // gradient sums to zero
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let (loss, _) = softmax_cross_entropy(&[100.0, 0.0], 0);
        assert!(loss < 1e-9);
    }

    #[test]
    fn weighted_ce_scales() {
        let (l1, g1) = softmax_cross_entropy(&[0.3, 0.7], 1);
        let (l2, g2) = weighted_softmax_cross_entropy(&[0.3, 0.7], 1, 2.5);
        assert!((l2 - 2.5 * l1).abs() < 1e-12);
        assert!((g2[0] - 2.5 * g1[0]).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let kl_pq = kl_divergence(&p, &q);
        let kl_qp = kl_divergence(&q, &p);
        assert!(kl_pq > 0.0);
        assert!(kl_qp > 0.0);
        assert!((kl_pq - kl_qp).abs() > 1e-6);
    }

    #[test]
    fn binary_entropy_maximal_at_half() {
        let h_half = binary_entropy_sum(&[0.5]);
        assert!((h_half - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(binary_entropy_sum(&[0.01]) < h_half);
        assert!(binary_entropy_sum(&[0.0]) >= 0.0); // clamped, finite
        assert!(binary_entropy_sum(&[1.0]).is_finite());
    }
}
