//! Scalar reverse-mode automatic differentiation on a tape.
//!
//! This is the engine behind the hypergraph mask search (§4.2 of the paper)
//! and the RouteNet message-passing model: ad-hoc differentiable programs
//! whose structure does not fit the layered MLP API. Usage:
//!
//! ```
//! use metis_nn::tape::Tape;
//! let tape = Tape::new();
//! let x = tape.var(2.0);
//! let y = tape.var(3.0);
//! let z = (x * y + x.sin_approx()).tanh();
//! let grads = z.grad();
//! let dz_dx = grads.wrt(x);
//! # assert!(dz_dx.is_finite());
//! ```
//!
//! Nodes are appended to an append-only arena; `grad()` walks the arena in
//! reverse. Each node has at most two parents, which covers every operator
//! we need and keeps the node representation a flat POD.

use std::cell::RefCell;
use std::ops::{Add, Div, Mul, Neg, Sub};

const NO_PARENT: usize = usize::MAX;

#[derive(Clone, Copy)]
struct Node {
    parents: [usize; 2],
    partials: [f64; 2],
}

/// Arena of computation nodes. Create [`Var`]s with [`Tape::var`].
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create a leaf variable.
    pub fn var(&self, val: f64) -> Var<'_> {
        let idx = self.push(NO_PARENT, 0.0, NO_PARENT, 0.0);
        Var {
            tape: self,
            idx,
            val,
        }
    }

    /// Create many leaf variables at once.
    pub fn vars(&self, vals: &[f64]) -> Vec<Var<'_>> {
        vals.iter().map(|&v| self.var(v)).collect()
    }

    fn push(&self, p0: usize, d0: f64, p1: usize, d1: f64) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            parents: [p0, p1],
            partials: [d0, d1],
        });
        nodes.len() - 1
    }

    fn unary(&self, a: &Var<'_>, val: f64, da: f64) -> Var<'_> {
        let idx = self.push(a.idx, da, NO_PARENT, 0.0);
        Var {
            tape: self,
            idx,
            val,
        }
    }

    fn binary(&self, a: &Var<'_>, b: &Var<'_>, val: f64, da: f64, db: f64) -> Var<'_> {
        let idx = self.push(a.idx, da, b.idx, db);
        Var {
            tape: self,
            idx,
            val,
        }
    }
}

/// A value tracked on a [`Tape`]. Copyable; arithmetic operators record
/// nodes onto the owning tape.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
    val: f64,
}

impl<'t> Var<'t> {
    /// Current value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.val
    }

    /// Run the backward pass from this variable and collect all adjoints.
    pub fn grad(&self) -> Grads {
        let nodes = self.tape.nodes.borrow();
        let mut adjoints = vec![0.0; nodes.len()];
        adjoints[self.idx] = 1.0;
        for i in (0..=self.idx).rev() {
            let a = adjoints[i];
            if a == 0.0 {
                continue;
            }
            let node = nodes[i];
            for k in 0..2 {
                let p = node.parents[k];
                if p != NO_PARENT {
                    adjoints[p] += a * node.partials[k];
                }
            }
        }
        Grads { adjoints }
    }

    pub fn exp(self) -> Var<'t> {
        let v = self.val.exp();
        self.tape.unary(&self, v, v)
    }

    /// Natural log; input is floored at 1e-300 to avoid -inf.
    pub fn ln(self) -> Var<'t> {
        let x = self.val.max(1e-300);
        self.tape.unary(&self, x.ln(), 1.0 / x)
    }

    pub fn sigmoid(self) -> Var<'t> {
        let s = 1.0 / (1.0 + (-self.val).exp());
        self.tape.unary(&self, s, s * (1.0 - s))
    }

    pub fn tanh(self) -> Var<'t> {
        let t = self.val.tanh();
        self.tape.unary(&self, t, 1.0 - t * t)
    }

    pub fn relu(self) -> Var<'t> {
        if self.val > 0.0 {
            self.tape.unary(&self, self.val, 1.0)
        } else {
            self.tape.unary(&self, 0.0, 0.0)
        }
    }

    pub fn leaky_relu(self) -> Var<'t> {
        if self.val > 0.0 {
            self.tape.unary(&self, self.val, 1.0)
        } else {
            self.tape.unary(&self, 0.01 * self.val, 0.01)
        }
    }

    /// Apply one of the layer activations (mirrors
    /// [`crate::layer::Activation::apply`]; [`BVar::activation`] is the
    /// batched twin — both record the same node per row).
    pub fn activation(self, act: crate::layer::Activation) -> Var<'t> {
        use crate::layer::Activation;
        match act {
            Activation::Relu => self.relu(),
            Activation::LeakyRelu => self.leaky_relu(),
            Activation::Tanh => self.tanh(),
            Activation::Sigmoid => self.sigmoid(),
            Activation::Linear => self.tape.unary(&self, self.val, 1.0),
        }
    }

    pub fn sqrt(self) -> Var<'t> {
        let s = self.val.max(0.0).sqrt();
        self.tape.unary(&self, s, 0.5 / s.max(1e-12))
    }

    pub fn powi(self, n: i32) -> Var<'t> {
        let v = self.val.powi(n);
        self.tape.unary(&self, v, n as f64 * self.val.powi(n - 1))
    }

    pub fn square(self) -> Var<'t> {
        self.powi(2)
    }

    pub fn abs(self) -> Var<'t> {
        self.tape.unary(&self, self.val.abs(), self.val.signum())
    }

    /// Reciprocal `1/x`.
    pub fn recip(self) -> Var<'t> {
        let v = 1.0 / self.val;
        self.tape.unary(&self, v, -v * v)
    }

    /// A 7th-order polynomial sine approximation — present mostly so the doc
    /// example shows a non-trivial composite; accurate on [-pi, pi].
    pub fn sin_approx(self) -> Var<'t> {
        let x = self;
        let x3 = x * x * x;
        let x5 = x3 * x * x;
        let x7 = x5 * x * x;
        x - x3 / 6.0 + x5 / 120.0 - x7 / 5040.0
    }

    /// Smooth maximum of (self, 0) via softplus-like construction is not
    /// needed; for hard `max` against a constant use `relu` shifts:
    /// `max(x, c) = relu(x - c) + c`.
    pub fn max_const(self, c: f64) -> Var<'t> {
        (self - c).relu() + c
    }

    /// Binary entropy `-(w ln w + (1-w) ln(1-w))` with clamping, the
    /// determinism term of the Metis mask objective (Eq. 8).
    pub fn binary_entropy(self) -> Var<'t> {
        // Clamp via a pass-through node so gradients vanish smoothly at the
        // boundary instead of exploding.
        let w = self;
        let one_minus = -w + 1.0;
        -(w * w.ln() + one_minus * one_minus.ln())
    }
}

/// Adjoints produced by [`Var::grad`].
pub struct Grads {
    adjoints: Vec<f64>,
}

impl Grads {
    /// Gradient of the root with respect to `v`.
    #[inline]
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adjoints[v.idx]
    }
}

/// Sum a slice of vars (returns a fresh zero var for an empty slice).
pub fn sum<'t>(tape: &'t Tape, vars: &[Var<'t>]) -> Var<'t> {
    match vars.split_first() {
        None => tape.var(0.0),
        Some((&first, rest)) => rest.iter().fold(first, |acc, &v| acc + v),
    }
}

// ---- operator impls ----

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(&self, &rhs, self.val + rhs.val, 1.0, 1.0)
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.binary(&self, &rhs, self.val - rhs.val, 1.0, -1.0)
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape
            .binary(&self, &rhs, self.val * rhs.val, rhs.val, self.val)
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        let inv = 1.0 / rhs.val;
        self.tape
            .binary(&self, &rhs, self.val * inv, inv, -self.val * inv * inv)
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.tape.unary(&self, -self.val, -1.0)
    }
}

impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: f64) -> Var<'t> {
        self.tape.unary(&self, self.val + rhs, 1.0)
    }
}

impl<'t> Sub<f64> for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: f64) -> Var<'t> {
        self.tape.unary(&self, self.val - rhs, 1.0)
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: f64) -> Var<'t> {
        self.tape.unary(&self, self.val * rhs, rhs)
    }
}

impl<'t> Div<f64> for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: f64) -> Var<'t> {
        self.tape.unary(&self, self.val / rhs, 1.0 / rhs)
    }
}

impl<'t> Add<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        rhs + self
    }
}

impl<'t> Sub<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        -rhs + self
    }
}

impl<'t> Mul<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        rhs * self
    }
}

impl<'t> Div<Var<'t>> for f64 {
    type Output = Var<'t>;
    #[allow(clippy::suspicious_arithmetic_impl)] // a / b == recip(b) * a
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        rhs.recip() * self
    }
}

// ---- batched tape ----

struct BatchNode {
    parents: [usize; 2],
    /// Per-row partial derivatives towards each parent (empty when the
    /// parent slot is unused).
    partials: [Vec<f64>; 2],
    vals: Vec<f64>,
}

/// A reverse-mode tape where every node carries **one value per batch
/// row** and elementwise semantics across rows: recording one program
/// evaluates it for N independent rows at once, and a single backward
/// sweep yields per-row gradients ([`BatchGrads::wrt`]).
///
/// Each row's value and partials are produced by exactly the scalar
/// formulas of [`Var`], so row `r` of a batched program is bit-identical
/// to running the same program on a scalar [`Tape`] with row `r`'s
/// inputs — the oracle relationship the §4 mask-search parity tests pin.
pub struct BatchTape {
    batch: usize,
    nodes: RefCell<Vec<BatchNode>>,
}

impl BatchTape {
    /// A tape whose vars all carry `batch` rows.
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "BatchTape: batch must be positive");
        BatchTape {
            batch,
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Rows carried by every var on this tape.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Leaf variable with one value per row.
    pub fn var(&self, vals: &[f64]) -> BVar<'_> {
        assert_eq!(vals.len(), self.batch, "BatchTape::var: row count mismatch");
        self.push_leaf(vals.to_vec())
    }

    /// Leaf variable with the same value in every row (e.g. a mask weight
    /// shared by the whole batch); its per-row gradients are summed by the
    /// consumer via [`BatchGrads::sum_wrt`].
    pub fn broadcast(&self, val: f64) -> BVar<'_> {
        self.push_leaf(vec![val; self.batch])
    }

    /// Broadcast many scalars at once (mask vectors).
    pub fn broadcasts(&self, vals: &[f64]) -> Vec<BVar<'_>> {
        vals.iter().map(|&v| self.broadcast(v)).collect()
    }

    fn push_leaf(&self, vals: Vec<f64>) -> BVar<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(BatchNode {
            parents: [NO_PARENT, NO_PARENT],
            partials: [Vec::new(), Vec::new()],
            vals,
        });
        BVar {
            tape: self,
            idx: nodes.len() - 1,
        }
    }

    fn unary(&self, a: BVar<'_>, f: impl Fn(f64) -> (f64, f64)) -> BVar<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let (vals, da): (Vec<f64>, Vec<f64>) = nodes[a.idx].vals.iter().map(|&x| f(x)).unzip();
        nodes.push(BatchNode {
            parents: [a.idx, NO_PARENT],
            partials: [da, Vec::new()],
            vals,
        });
        BVar {
            tape: self,
            idx: nodes.len() - 1,
        }
    }

    fn binary(
        &self,
        a: BVar<'_>,
        b: BVar<'_>,
        f: impl Fn(f64, f64) -> (f64, f64, f64),
    ) -> BVar<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let n = self.batch;
        let mut vals = Vec::with_capacity(n);
        let mut da = Vec::with_capacity(n);
        let mut db = Vec::with_capacity(n);
        for r in 0..n {
            let (v, ga, gb) = f(nodes[a.idx].vals[r], nodes[b.idx].vals[r]);
            vals.push(v);
            da.push(ga);
            db.push(gb);
        }
        nodes.push(BatchNode {
            parents: [a.idx, b.idx],
            partials: [da, db],
            vals,
        });
        BVar {
            tape: self,
            idx: nodes.len() - 1,
        }
    }
}

/// A batched value tracked on a [`BatchTape`]. Copyable; the row values
/// live on the tape.
#[derive(Clone, Copy)]
pub struct BVar<'t> {
    tape: &'t BatchTape,
    idx: usize,
}

impl<'t> BVar<'t> {
    /// Value of row `r`.
    pub fn value(&self, r: usize) -> f64 {
        self.tape.nodes.borrow()[self.idx].vals[r]
    }

    /// All row values.
    pub fn values(&self) -> Vec<f64> {
        self.tape.nodes.borrow()[self.idx].vals.clone()
    }

    /// Backward pass from this variable: every row's adjoints in one
    /// sweep over the arena.
    pub fn grad(&self) -> BatchGrads {
        let nodes = self.tape.nodes.borrow();
        let n = self.tape.batch;
        let mut adjoints = vec![vec![0.0; n]; self.idx + 1];
        adjoints[self.idx].iter_mut().for_each(|a| *a = 1.0);
        for i in (0..=self.idx).rev() {
            for k in 0..2 {
                let p = nodes[i].parents[k];
                if p == NO_PARENT {
                    continue;
                }
                let (head, tail) = adjoints.split_at_mut(i);
                let (up, part) = (&tail[0], &nodes[i].partials[k]);
                for (pa, (&a, &d)) in head[p].iter_mut().zip(up.iter().zip(part.iter())) {
                    *pa += a * d;
                }
            }
        }
        BatchGrads { adjoints }
    }

    pub fn exp(self) -> BVar<'t> {
        self.tape.unary(self, |x| {
            let v = x.exp();
            (v, v)
        })
    }

    /// Natural log; input floored at 1e-300 (mirrors [`Var::ln`]).
    pub fn ln(self) -> BVar<'t> {
        self.tape.unary(self, |x| {
            let x = x.max(1e-300);
            (x.ln(), 1.0 / x)
        })
    }

    pub fn sigmoid(self) -> BVar<'t> {
        self.tape.unary(self, |x| {
            let s = 1.0 / (1.0 + (-x).exp());
            (s, s * (1.0 - s))
        })
    }

    pub fn tanh(self) -> BVar<'t> {
        self.tape.unary(self, |x| {
            let t = x.tanh();
            (t, 1.0 - t * t)
        })
    }

    pub fn relu(self) -> BVar<'t> {
        self.tape
            .unary(self, |x| if x > 0.0 { (x, 1.0) } else { (0.0, 0.0) })
    }

    pub fn square(self) -> BVar<'t> {
        self.tape.unary(self, |x| (x * x, 2.0 * x))
    }

    /// Apply one of the layer activations (the batched mirror of
    /// [`crate::layer::Activation::apply`] and its derivative).
    pub fn activation(self, act: crate::layer::Activation) -> BVar<'t> {
        use crate::layer::Activation;
        match act {
            Activation::Relu => self.relu(),
            Activation::LeakyRelu => {
                self.tape
                    .unary(self, |x| if x > 0.0 { (x, 1.0) } else { (0.01 * x, 0.01) })
            }
            Activation::Tanh => self.tanh(),
            Activation::Sigmoid => self.sigmoid(),
            Activation::Linear => self.tape.unary(self, |x| (x, 1.0)),
        }
    }
}

/// Per-row adjoints produced by [`BVar::grad`].
pub struct BatchGrads {
    adjoints: Vec<Vec<f64>>,
}

impl BatchGrads {
    /// Gradient of the root with respect to `v`, one entry per row.
    pub fn wrt(&self, v: BVar<'_>) -> &[f64] {
        &self.adjoints[v.idx]
    }

    /// Row-order sum of the per-row gradients (the total gradient for a
    /// broadcast leaf): `((g_0 + g_1) + g_2) + …` — the same order a
    /// per-obs loop accumulates in, preserving bit-parity.
    pub fn sum_wrt(&self, v: BVar<'_>) -> f64 {
        self.adjoints[v.idx].iter().fold(0.0, |acc, &g| acc + g)
    }
}

/// Sum a slice of batched vars (fresh zero var for an empty slice).
pub fn sum_batch<'t>(tape: &'t BatchTape, vars: &[BVar<'t>]) -> BVar<'t> {
    match vars.split_first() {
        None => tape.broadcast(0.0),
        Some((&first, rest)) => rest.iter().fold(first, |acc, &v| acc + v),
    }
}

impl<'t> Add for BVar<'t> {
    type Output = BVar<'t>;
    fn add(self, rhs: BVar<'t>) -> BVar<'t> {
        self.tape.binary(self, rhs, |a, b| (a + b, 1.0, 1.0))
    }
}

impl<'t> Sub for BVar<'t> {
    type Output = BVar<'t>;
    fn sub(self, rhs: BVar<'t>) -> BVar<'t> {
        self.tape.binary(self, rhs, |a, b| (a - b, 1.0, -1.0))
    }
}

impl<'t> Mul for BVar<'t> {
    type Output = BVar<'t>;
    fn mul(self, rhs: BVar<'t>) -> BVar<'t> {
        self.tape.binary(self, rhs, |a, b| (a * b, b, a))
    }
}

impl<'t> Div for BVar<'t> {
    type Output = BVar<'t>;
    fn div(self, rhs: BVar<'t>) -> BVar<'t> {
        self.tape.binary(self, rhs, |a, b| {
            let inv = 1.0 / b;
            (a * inv, inv, -a * inv * inv)
        })
    }
}

impl<'t> Neg for BVar<'t> {
    type Output = BVar<'t>;
    fn neg(self) -> BVar<'t> {
        self.tape.unary(self, |x| (-x, -1.0))
    }
}

impl<'t> Add<f64> for BVar<'t> {
    type Output = BVar<'t>;
    fn add(self, rhs: f64) -> BVar<'t> {
        self.tape.unary(self, |x| (x + rhs, 1.0))
    }
}

impl<'t> Mul<f64> for BVar<'t> {
    type Output = BVar<'t>;
    fn mul(self, rhs: f64) -> BVar<'t> {
        self.tape.unary(self, |x| (x * rhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fd(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let eps = 1e-6;
        (f(x + eps) - f(x - eps)) / (2.0 * eps)
    }

    #[test]
    fn add_mul_grads() {
        let t = Tape::new();
        let x = t.var(2.0);
        let y = t.var(5.0);
        let z = x * y + x;
        assert_eq!(z.value(), 12.0);
        let g = z.grad();
        assert_eq!(g.wrt(x), 6.0); // y + 1
        assert_eq!(g.wrt(y), 2.0); // x
    }

    #[test]
    fn div_grads() {
        let t = Tape::new();
        let x = t.var(3.0);
        let y = t.var(4.0);
        let z = x / y;
        let g = z.grad();
        assert!((g.wrt(x) - 0.25).abs() < 1e-12);
        assert!((g.wrt(y) + 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_through_composite() {
        // f(x) = tanh(sigmoid(x) * x^2)
        let f = |x: f64| ((1.0 / (1.0 + (-x).exp())) * x * x).tanh();
        let t = Tape::new();
        let x = t.var(0.7);
        let z = (x.sigmoid() * x.square()).tanh();
        assert!((z.value() - f(0.7)).abs() < 1e-12);
        let g = z.grad();
        assert!((g.wrt(x) - fd(f, 0.7)).abs() < 1e-6);
    }

    #[test]
    fn fan_out_accumulates() {
        // z = x*x + x => dz/dx = 2x + 1
        let t = Tape::new();
        let x = t.var(3.0);
        let z = x * x + x;
        assert!((z.grad().wrt(x) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_mixed_ops() {
        let t = Tape::new();
        let x = t.var(2.0);
        let z = 3.0 * x + 1.0 - x / 2.0;
        assert!((z.value() - 6.0).abs() < 1e-12);
        assert!((z.grad().wrt(x) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn f64_minus_and_div_var() {
        let t = Tape::new();
        let x = t.var(4.0);
        let z = 1.0 - x;
        assert_eq!(z.value(), -3.0);
        assert_eq!(z.grad().wrt(x), -1.0);
        let w = 8.0 / x;
        assert_eq!(w.value(), 2.0);
        assert!((w.grad().wrt(x) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn relu_and_max_const() {
        let t = Tape::new();
        let x = t.var(-2.0);
        assert_eq!(x.relu().value(), 0.0);
        assert_eq!(x.relu().grad().wrt(x), 0.0);
        let m = x.max_const(1.5);
        assert_eq!(m.value(), 1.5);
        let y = t.var(3.0);
        let m2 = y.max_const(1.5);
        assert_eq!(m2.value(), 3.0);
        assert_eq!(m2.grad().wrt(y), 1.0);
    }

    #[test]
    fn binary_entropy_grad_matches_fd() {
        let h = |w: f64| -(w * w.ln() + (1.0 - w) * (1.0 - w).ln());
        for &w0 in &[0.2, 0.5, 0.9] {
            let t = Tape::new();
            let w = t.var(w0);
            let e = w.binary_entropy();
            assert!((e.value() - h(w0)).abs() < 1e-9);
            assert!((e.grad().wrt(w) - fd(h, w0)).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_helper() {
        let t = Tape::new();
        let vs = t.vars(&[1.0, 2.0, 3.0]);
        let s = sum(&t, &vs);
        assert_eq!(s.value(), 6.0);
        let g = s.grad();
        for v in &vs {
            assert_eq!(g.wrt(*v), 1.0);
        }
        let empty = sum(&t, &[]);
        assert_eq!(empty.value(), 0.0);
    }

    #[test]
    fn unused_vars_have_zero_grad() {
        let t = Tape::new();
        let x = t.var(1.0);
        let y = t.var(2.0);
        let z = x * 2.0;
        assert_eq!(z.grad().wrt(y), 0.0);
    }

    /// Every row of a batched program must be bit-identical to the same
    /// program replayed on a scalar tape with that row's inputs — values
    /// and gradients both.
    #[test]
    fn batch_tape_rows_match_scalar_tape() {
        let xs = [0.3, -1.2, 0.0, 2.5];
        let ws = [0.7, 0.2];
        let bt = BatchTape::new(xs.len());
        let x = bt.var(&xs);
        let w = bt.broadcasts(&ws);
        let z = (x * w[0] + w[1].sigmoid() * x.square()).tanh() + (x * w[1]).exp().ln();
        let g = z.grad();
        let mut w0_sum = 0.0;
        for (r, &x0) in xs.iter().enumerate() {
            let t = Tape::new();
            let sx = t.var(x0);
            let sw0 = t.var(ws[0]);
            let sw1 = t.var(ws[1]);
            let sz = (sx * sw0 + sw1.sigmoid() * sx.square()).tanh() + (sx * sw1).exp().ln();
            assert_eq!(z.value(r), sz.value(), "row {r} value diverges");
            let sg = sz.grad();
            assert_eq!(g.wrt(x)[r], sg.wrt(sx), "row {r} d/dx diverges");
            assert_eq!(g.wrt(w[0])[r], sg.wrt(sw0), "row {r} d/dw0 diverges");
            w0_sum += sg.wrt(sw0);
        }
        assert_eq!(g.sum_wrt(w[0]), w0_sum, "broadcast gradient sum order");
    }

    #[test]
    fn batch_tape_activations_match_scalar_apply() {
        use crate::layer::Activation;
        let xs = [-2.0, -0.5, 0.0, 0.5, 2.0];
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Linear,
        ] {
            let bt = BatchTape::new(xs.len());
            let x = bt.var(&xs);
            let y = x.activation(act);
            for (r, &x0) in xs.iter().enumerate() {
                assert_eq!(y.value(r), act.apply(x0), "{act:?} value row {r}");
                assert_eq!(
                    y.grad().wrt(x)[r],
                    act.derivative(x0, act.apply(x0)),
                    "{act:?} grad row {r}"
                );
            }
        }
    }

    #[test]
    fn sum_batch_helper() {
        let bt = BatchTape::new(2);
        let vs = vec![
            bt.var(&[1.0, 4.0]),
            bt.var(&[2.0, 5.0]),
            bt.var(&[3.0, 6.0]),
        ];
        let s = sum_batch(&bt, &vs);
        assert_eq!(s.values(), vec![6.0, 15.0]);
        let g = s.grad();
        for v in &vs {
            assert_eq!(g.wrt(*v), &[1.0, 1.0]);
        }
        assert_eq!(sum_batch(&bt, &[]).values(), vec![0.0, 0.0]);
    }

    proptest! {
        /// Gradient of a random rational/exponential composite matches
        /// central finite differences.
        #[test]
        fn prop_grad_matches_fd(x0 in -2.0_f64..2.0) {
            let f = |x: f64| (x * x + 1.0).ln() + (x * 0.5).exp() / (x * x + 2.0);
            let t = Tape::new();
            let x = t.var(x0);
            let z = (x * x + 1.0).ln() + (x * 0.5).exp() / (x * x + 2.0);
            prop_assert!((z.value() - f(x0)).abs() < 1e-9);
            let g = z.grad().wrt(x);
            prop_assert!((g - fd(f, x0)).abs() < 1e-4, "grad {} vs fd {}", g, fd(f, x0));
        }

        #[test]
        fn prop_sigmoid_bounds(x0 in -20.0_f64..20.0) {
            let t = Tape::new();
            let x = t.var(x0);
            let s = x.sigmoid();
            prop_assert!(s.value() > 0.0 && s.value() < 1.0);
            let g = s.grad().wrt(x);
            prop_assert!((0.0..=0.25 + 1e-12).contains(&g));
        }
    }
}
