//! The [`Network`] trait: anything trainable by gradient descent with a
//! batched forward/backward interface.
//!
//! [`crate::net::Mlp`] covers the plain models in the reproduction, but the
//! paper's §6.2 experiment modifies Pensieve's *architecture* (a skip
//! connection feeding the last-bitrate input straight to the output layer,
//! Figure 10). Custom architectures implement this trait and plug into the
//! same RL trainer as ordinary MLPs.

use crate::layer::ParamGrad;
use crate::matrix::Matrix;

/// A differentiable network with explicit forward/backward passes.
pub trait Network: Clone {
    /// Training forward pass over a `(batch, in_dim)` input (caches
    /// whatever the backward pass needs).
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Inference-only forward pass (no caches, shared receiver).
    fn forward_inference(&self, input: &Matrix) -> Matrix;

    /// Backward pass from the output gradient; accumulates parameter
    /// gradients and returns dL/d(input).
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Reset accumulated gradients.
    fn zero_grad(&mut self);

    /// All (param, grad) pairs in a stable order for the optimizer.
    fn params(&mut self) -> Vec<ParamGrad<'_>>;

    /// Input width.
    fn in_dim(&self) -> usize;

    /// Output width.
    fn out_dim(&self) -> usize;

    /// Run inference on a single feature vector.
    fn predict(&self, features: &[f64]) -> Vec<f64> {
        self.forward_inference(&Matrix::row_vector(features))
            .data()
            .to_vec()
    }

    /// Batched inference: push `(batch, in_dim)` observations through the
    /// network as one matrix-matrix pass. The default delegates to
    /// [`Network::forward_inference`] (whose layer kernels guarantee that
    /// row `i` of the output is bit-identical to `predict` of row `i`);
    /// implementations with a cheaper batch-only path may override.
    fn forward_batch(&self, input: &Matrix) -> Matrix {
        self.forward_inference(input)
    }

    /// Batched [`Network::predict`]: one row per observation.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Matrix {
        self.forward_batch(&Matrix::from_rows_vec(rows))
    }

    /// [`Network::forward_batch`] sharded across `threads` workers
    /// (0 = all cores) in fixed 32-row blocks merged in row order. Rows
    /// are independent, so the output is **bit-identical to
    /// `forward_batch` for any thread count** — the deterministic way to
    /// throw cores at large labelling batches (fidelity evaluation,
    /// dataset relabelling).
    fn forward_batch_threads(&self, input: &Matrix, threads: usize) -> Matrix
    where
        Self: Sync,
    {
        const BLOCK: usize = 32;
        let rows = input.rows();
        if rows <= BLOCK {
            return self.forward_batch(input);
        }
        let n_blocks = rows.div_ceil(BLOCK);
        let blocks = crate::par::parallel_map_indexed(n_blocks, threads, |b| {
            let lo = b * BLOCK;
            let hi = (lo + BLOCK).min(rows);
            self.forward_batch(&input.row_block(lo, hi))
        });
        let mut out = Matrix::zeros(rows, blocks[0].cols());
        let mut r = 0;
        for block in blocks {
            for i in 0..block.rows() {
                out.row_mut(r).copy_from_slice(block.row(i));
                r += 1;
            }
        }
        out
    }
}

impl Network for crate::net::Mlp {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        crate::net::Mlp::forward(self, input)
    }

    fn forward_inference(&self, input: &Matrix) -> Matrix {
        crate::net::Mlp::forward_inference(self, input)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        crate::net::Mlp::backward(self, grad_out)
    }

    fn zero_grad(&mut self) {
        crate::net::Mlp::zero_grad(self)
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        crate::net::Mlp::params(self)
    }

    fn in_dim(&self) -> usize {
        crate::net::Mlp::in_dim(self)
    }

    fn out_dim(&self) -> usize {
        crate::net::Mlp::out_dim(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::net::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generic_roundtrip<N: Network>(net: &mut N, x: &Matrix) -> Matrix {
        let y = net.forward(x);
        net.zero_grad();
        net.backward(&y);
        net.forward_inference(x)
    }

    #[test]
    fn forward_batch_threads_matches_forward_batch_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&[4, 9, 3], Activation::Tanh, Activation::Linear, &mut rng);
        let x = Matrix::from_fn(101, 4, |r, c| ((r * 4 + c) as f64 * 0.17).sin());
        let single = mlp.forward_batch(&x);
        for threads in [1, 2, 5] {
            assert_eq!(mlp.forward_batch_threads(&x, threads), single);
        }
    }

    #[test]
    fn mlp_satisfies_network() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Tanh, Activation::Linear, &mut rng);
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3]);
        let out = generic_roundtrip(&mut mlp, &x);
        assert_eq!(out.shape(), (1, 2));
        assert_eq!(Network::in_dim(&mlp), 3);
        assert_eq!(Network::out_dim(&mlp), 2);
        assert_eq!(
            Network::predict(&mlp, &[0.1, 0.2, 0.3]),
            out.data().to_vec()
        );
    }
}
