//! First-order optimizers operating on flat (param, grad) slice pairs.
//!
//! Optimizers are stateful (momentum/Adam moments) and identify parameter
//! tensors positionally: callers must pass the same tensor list, in the same
//! order, on every step — which `Mlp::params()` guarantees.

use crate::layer::ParamGrad;

/// Common interface for all optimizers.
pub trait Optimizer {
    /// Apply one update step given freshly accumulated gradients.
    fn step(&mut self, params: &mut [ParamGrad<'_>]);
    /// Current learning rate.
    fn learning_rate(&self) -> f64;
    /// Replace the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        for pg in params {
            for (p, &g) in pg.param.iter_mut().zip(pg.grad.iter()) {
                *p -= self.lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f64,
    beta: f64,
    velocity: Vec<Vec<f64>>,
}

impl Momentum {
    pub fn new(lr: f64, beta: f64) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&beta));
        Momentum {
            lr,
            beta,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &[ParamGrad<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|pg| vec![0.0; pg.param.len()]).collect();
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        self.ensure_state(params);
        for (pg, vel) in params.iter_mut().zip(self.velocity.iter_mut()) {
            for ((p, &g), v) in pg.param.iter_mut().zip(pg.grad.iter()).zip(vel.iter_mut()) {
                *v = self.beta * *v + g;
                *p -= self.lr * *v;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &[ParamGrad<'_>]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|pg| vec![0.0; pg.param.len()]).collect();
            self.v = params.iter().map(|pg| vec![0.0; pg.param.len()]).collect();
            self.t = 0;
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, pg) in params.iter_mut().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for (j, (p, &g)) in pg.param.iter_mut().zip(pg.grad.iter()).enumerate() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Clip every gradient tensor to a maximum L2 norm (computed jointly over
/// all tensors), the standard stabilizer for policy-gradient training.
pub fn clip_grad_norm(params: &mut [ParamGrad<'_>], max_norm: f64) -> f64 {
    let total: f64 = params
        .iter()
        .map(|pg| pg.grad.iter().map(|g| g * g).sum::<f64>())
        .sum::<f64>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for pg in params.iter_mut() {
            for g in pg.grad.iter_mut() {
                *g *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with each optimizer; all must converge.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0_f64];
        let mut g = [0.0_f64];
        for _ in 0..steps {
            g[0] = 2.0 * (x[0] - 3.0);
            let mut params = [ParamGrad {
                param: &mut x,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run_quadratic(&mut Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-6, "sgd ended at {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = run_quadratic(&mut Momentum::new(0.05, 0.9), 300);
        assert!((x - 3.0).abs() < 1e-4, "momentum ended at {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run_quadratic(&mut Adam::new(0.3), 300);
        assert!((x - 3.0).abs() < 1e-3, "adam ended at {x}");
    }

    #[test]
    fn adam_is_scale_invariant_at_start() {
        // Adam's first step size is exactly lr regardless of gradient scale.
        for scale in [1.0, 1000.0] {
            let mut x = [0.0_f64];
            let mut g = [scale];
            let mut opt = Adam::new(0.1);
            let mut params = [ParamGrad {
                param: &mut x,
                grad: &mut g,
            }];
            opt.step(&mut params);
            assert!(
                (x[0] + 0.1).abs() < 1e-6,
                "first adam step should be -lr, got {}",
                x[0]
            );
        }
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut p1 = [0.0];
        let mut g1 = [3.0];
        let mut p2 = [0.0];
        let mut g2 = [4.0];
        {
            let mut params = [
                ParamGrad {
                    param: &mut p1,
                    grad: &mut g1,
                },
                ParamGrad {
                    param: &mut p2,
                    grad: &mut g2,
                },
            ];
            let norm = clip_grad_norm(&mut params, 1.0);
            assert!((norm - 5.0).abs() < 1e-12);
        }
        assert!((g1[0] - 0.6).abs() < 1e-12);
        assert!((g2[0] - 0.8).abs() < 1e-12);
        // Below the limit: unchanged.
        {
            let mut params = [ParamGrad {
                param: &mut p1,
                grad: &mut g1,
            }];
            clip_grad_norm(&mut params, 10.0);
        }
        assert!((g1[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn set_learning_rate_roundtrip() {
        let mut o = Adam::new(0.1);
        o.set_learning_rate(0.01);
        assert_eq!(o.learning_rate(), 0.01);
    }
}
