//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Initialization scheme for layer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    /// Good default for tanh/sigmoid/linear layers.
    XavierUniform,
    /// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    /// Good default for ReLU layers.
    HeUniform,
    /// All zeros (used for biases and in tests).
    Zeros,
}

impl Init {
    /// Sample a `fan_out x fan_in`-shaped weight matrix.
    ///
    /// The convention in this crate is `W: (in, out)` for dense layers, so
    /// callers pass `(rows=fan_in, cols=fan_out)` and the scheme internally
    /// derives the fans from the shape.
    pub fn sample(self, rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let (fan_in, fan_out) = (rows as f64, cols as f64);
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out)).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
            }
            Init::HeUniform => {
                let a = (6.0 / fan_in).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
            }
            Init::Zeros => Matrix::zeros(rows, cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Init::XavierUniform.sample(10, 20, &mut rng);
        let a = (6.0_f64 / 30.0).sqrt();
        assert!(w.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn he_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Init::HeUniform.sample(16, 4, &mut rng);
        let a = (6.0_f64 / 16.0).sqrt();
        assert!(w.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Init::Zeros.sample(3, 3, &mut rng);
        assert!(w.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        assert_eq!(
            Init::XavierUniform.sample(4, 4, &mut r1),
            Init::XavierUniform.sample(4, 4, &mut r2)
        );
    }
}
