//! # metis-nn — neural-network substrate for the Metis reproduction
//!
//! The paper's systems (Pensieve, AuTO, RouteNet*) are built on TensorFlow;
//! this crate is the from-scratch Rust replacement. It provides:
//!
//! * [`matrix::Matrix`] — a dense row-major `f64` matrix,
//! * [`layer`] — `Dense` and `Conv1D` layers with explicit, finite-difference
//!   checked forward/backward passes,
//! * [`net::Mlp`] — a sequential network sufficient for every plain model in
//!   the reproduction (critics, sRLA, lRLA, readouts),
//! * [`optim`] — SGD / Momentum / Adam + gradient clipping,
//! * [`loss`] — MSE, Huber, softmax cross-entropy, KL divergence, binary
//!   entropy (the building blocks of the paper's Eq. 1 and Eqs. 4–8),
//! * [`tape`] — a scalar reverse-mode autodiff tape for ad-hoc differentiable
//!   programs (the hypergraph mask search and the RouteNet message-passing
//!   surrogate).
//!
//! Design notes: everything is deterministic under a caller-supplied
//! [`rand::rngs::StdRng`]; shapes are validated eagerly; no `unsafe`.

pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod net;
pub mod network;
pub mod optim;
pub mod par;
pub mod tape;

pub use init::Init;
pub use layer::{Activation, Conv1D, Dense, ParamGrad};
pub use matrix::Matrix;
pub use net::{argmax, argmax_rows, softmax, softmax_rows, Mlp};
pub use network::Network;
pub use optim::{clip_grad_norm, Adam, Momentum, Optimizer, Sgd};
pub use tape::{BVar, BatchGrads, BatchTape, Grads, Tape, Var};
