//! A sequential multi-layer perceptron built from [`Dense`] layers.
//!
//! This covers every "plain" network in the reproduction (value/critic nets,
//! AuTO's sRLA and lRLA, RouteNet readouts). Pensieve's two-tower
//! architecture with a skip connection is composed from raw layers in
//! `metis-abr`, using the same primitives.

use crate::init::Init;
use crate::layer::{Activation, Dense, ParamGrad};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A stack of dense layers applied in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[25, 128, 128, 6]`.
    ///
    /// Hidden layers use `hidden_act`; the final layer uses `out_act`
    /// (typically [`Activation::Linear`] and the caller applies softmax).
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp::new: need at least input and output dims"
        );
        let init = match hidden_act {
            Activation::Relu | Activation::LeakyRelu => Init::HeUniform,
            _ => Init::XavierUniform,
        };
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, init, rng));
        }
        Mlp { layers }
    }

    /// Construct from pre-built layers.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "Mlp::from_layers: empty layer list");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "Mlp::from_layers: adjacent layer dims mismatch"
            );
        }
        Mlp { layers }
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Training forward pass (caches activations in each layer).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference forward pass (no caches, shared receiver).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first().expect("Mlp has layers");
        let mut x = first.forward_inference(input);
        for layer in rest {
            x = layer.forward_inference(&x);
        }
        x
    }

    /// Convenience: run inference on a single feature vector.
    pub fn predict(&self, features: &[f64]) -> Vec<f64> {
        self.forward_inference(&Matrix::row_vector(features))
            .data()
            .to_vec()
    }

    /// Batched inference over many feature vectors as one matrix-matrix
    /// pass. Row `i` of the result is bit-identical to
    /// `self.predict(&rows[i])` (see [`Matrix::matmul`]).
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Matrix {
        self.forward_inference(&Matrix::from_rows_vec(rows))
    }

    /// The layer stack (read-only) — consumed by tape-replay paths such as
    /// the hypergraph mask search, which rebuild the forward pass with the
    /// weights as constants.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Backward pass from the output gradient; accumulates parameter
    /// gradients and returns dL/d(input).
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Reset all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// All (param, grad) pairs, in a stable order, for the optimizer.
    pub fn params(&mut self) -> Vec<ParamGrad<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Serialized size in bytes (JSON), used by the deployment cost model.
    pub fn artifact_bytes(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

/// Numerically-stable softmax of a slice.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Row-wise softmax of a `(batch, n)` matrix. Each row is computed by the
/// same scalar routine as [`softmax`], so row `i` of the result is
/// bit-identical to `softmax(m.row(i))`.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&softmax(m.row(r)));
    }
    out
}

/// Row-wise argmax of a `(batch, n)` matrix (first on ties).
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows()).map(|r| argmax(m.row(r))).collect()
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[4, 8, 3], Activation::Tanh, Activation::Linear, &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.layer_count(), 2);
        assert_eq!(mlp.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
        let q = softmax(&[-1e9, 0.0]);
        assert!(q[1] > 0.999);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[-0.1, 0.0, 0.4]]);
        assert_eq!(mlp.forward(&x), mlp.forward_inference(&x));
    }

    /// End-to-end learning check: a small MLP must fit XOR, which requires
    /// a hidden layer (a linear model cannot represent it).
    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let out = mlp.forward(&x);
            let mut grad = Matrix::zeros(4, 1);
            for i in 0..4 {
                grad[(i, 0)] = out[(i, 0)] - y[i];
            }
            mlp.zero_grad();
            mlp.backward(&grad);
            opt.step(&mut mlp.params());
        }
        let out = mlp.forward_inference(&x);
        for i in 0..4 {
            assert!(
                (out[(i, 0)] - y[i]).abs() < 0.1,
                "xor not learned: sample {i} predicted {}",
                out[(i, 0)]
            );
        }
    }

    /// The full pipeline gradient must match finite differences through
    /// a softmax cross-entropy loss.
    #[test]
    fn mlp_end_to_end_gradcheck() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut mlp = Mlp::new(&[3, 4, 3], Activation::Tanh, Activation::Linear, &mut rng);
        let x = Matrix::row_vector(&[0.5, -0.3, 0.8]);
        let target = 1usize;

        let logits = mlp.forward(&x);
        let (_, grad) = loss::softmax_cross_entropy(logits.row(0), target);
        mlp.zero_grad();
        let gin = mlp.backward(&Matrix::row_vector(&grad));

        let eps = 1e-6;
        for c in 0..3 {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let (lp, _) = loss::softmax_cross_entropy(mlp.forward_inference(&xp).row(0), target);
            let (lm, _) = loss::softmax_cross_entropy(mlp.forward_inference(&xm).row(0), target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin[(0, c)]).abs() < 1e-5,
                "end-to-end grad mismatch at input {c}: fd={fd} got={}",
                gin[(0, c)]
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(29);
        let mlp = Mlp::new(&[4, 6, 2], Activation::Relu, Activation::Linear, &mut rng);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.1, -0.5, 0.9, 0.0];
        // JSON float formatting may lose the last ULP; allow tiny drift.
        for (a, b) in mlp.predict(&x).iter().zip(back.predict(&x).iter()) {
            assert!((a - b).abs() < 1e-9, "serde drift: {a} vs {b}");
        }
        assert!(mlp.artifact_bytes() > 0);
    }
}
