//! Network layers with explicit forward/backward passes.
//!
//! Each layer caches whatever it needs from the forward pass; `backward`
//! accumulates parameter gradients (callers reset them via
//! [`Layer::zero_grad`]) and returns the gradient with respect to the input,
//! so layers compose by simple chaining.

use crate::init::Init;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    LeakyRelu,
    Tanh,
    Sigmoid,
    /// Identity (useful as a placeholder in configurable stacks).
    Linear,
}

impl Activation {
    /// Apply the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` where
    /// possible, falling back to the input for ReLU variants.
    #[inline]
    pub fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// A pair of (parameter, gradient) mutable slices handed to optimizers.
pub struct ParamGrad<'a> {
    pub param: &'a mut [f64],
    pub grad: &'a mut [f64],
}

/// A fully-connected layer `y = x W + b` with optional activation.
///
/// `W` has shape `(in_dim, out_dim)`; inputs are `(batch, in_dim)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
    #[serde(skip)]
    gw: Option<Matrix>,
    #[serde(skip)]
    gb: Vec<f64>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_pre: Option<Matrix>,
    #[serde(skip)]
    cache_out: Option<Matrix>,
}

impl Dense {
    /// Create a dense layer with the given initializer.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        Dense {
            w: init.sample(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            activation,
            gw: None,
            gb: vec![],
            cache_input: None,
            cache_pre: None,
            cache_out: None,
        }
    }

    /// Create from explicit weights (tests, hand-built models).
    pub fn from_weights(w: Matrix, b: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(
            w.cols(),
            b.len(),
            "Dense::from_weights: bias width mismatch"
        );
        Dense {
            w,
            b,
            activation,
            gw: None,
            gb: vec![],
            cache_input: None,
            cache_pre: None,
            cache_out: None,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    fn ensure_grads(&mut self) {
        if self.gw.is_none() {
            self.gw = Some(Matrix::zeros(self.w.rows(), self.w.cols()));
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    /// Forward pass; caches input and pre/post-activation for backward.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.w.rows(),
            "Dense::forward: input width {} != layer in_dim {}",
            input.cols(),
            self.w.rows()
        );
        let mut pre = input.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let out = pre.map(|x| self.activation.apply(x));
        self.cache_input = Some(input.clone());
        self.cache_pre = Some(pre);
        self.cache_out = Some(out.clone());
        out
    }

    /// Inference-only forward pass: no caches are written, `&self`
    /// receiver. Uses the fused kernel (bias + activation applied at tile
    /// write-back) — bit-identical to the unfused training forward.
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        input.matmul_bias_act(&self.w, &self.b, self.activation)
    }

    /// Backward pass. Accumulates `gw`/`gb` and returns dL/d(input).
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        self.ensure_grads();
        let input = self
            .cache_input
            .as_ref()
            .expect("Dense::backward called before forward");
        let pre = self.cache_pre.as_ref().unwrap();
        let out = self.cache_out.as_ref().unwrap();
        // Chain through the activation: grad_pre = grad_out ⊙ f'(pre).
        let act = self.activation;
        let mut grad_pre = Matrix::zeros(grad_out.rows(), grad_out.cols());
        {
            let gp = grad_pre.data_mut();
            let elems = grad_out.data().iter().zip(pre.data()).zip(out.data());
            for (gp_i, ((&g, &x), &y)) in gp.iter_mut().zip(elems) {
                *gp_i = g * act.derivative(x, y);
            }
        }
        // dW = input^T * grad_pre ; db = column sums of grad_pre. The
        // transpose-fused kernels accumulate over the batch in row order,
        // so batched gradients bit-match per-obs accumulation.
        let gw_update = input.matmul_ta(&grad_pre);
        self.gw.as_mut().unwrap().add_assign(&gw_update);
        for (gb, s) in self.gb.iter_mut().zip(grad_pre.column_sums()) {
            *gb += s;
        }
        // dInput = grad_pre * W^T
        grad_pre.matmul_tb(&self.w)
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        if let Some(gw) = &mut self.gw {
            gw.fill_zero();
        }
        self.gb.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Hand (param, grad) slices to an optimizer.
    pub fn params(&mut self) -> Vec<ParamGrad<'_>> {
        self.ensure_grads();
        vec![
            ParamGrad {
                param: self.w.data_mut(),
                grad: self.gw.as_mut().unwrap().data_mut(),
            },
            ParamGrad {
                param: &mut self.b,
                grad: &mut self.gb,
            },
        ]
    }
}

/// A 1-D convolution over a fixed-length sequence, as used by Pensieve's
/// feature towers (e.g. 128 filters of kernel 4 over the last 8 throughput
/// samples). Single input channel, `valid` padding, stride 1.
///
/// Input shape: `(batch, seq_len)`; output shape:
/// `(batch, filters * (seq_len - kernel + 1))`, i.e. the feature map is
/// flattened filter-major so it can feed straight into a [`Dense`] layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1D {
    seq_len: usize,
    kernel: usize,
    filters: usize,
    /// Shape `(filters, kernel)`.
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
    #[serde(skip)]
    gw: Option<Matrix>,
    #[serde(skip)]
    gb: Vec<f64>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_pre: Option<Matrix>,
    #[serde(skip)]
    cache_out: Option<Matrix>,
}

impl Conv1D {
    pub fn new(
        seq_len: usize,
        kernel: usize,
        filters: usize,
        activation: Activation,
        init: Init,
        rng: &mut rand::rngs::StdRng,
    ) -> Self {
        assert!(kernel <= seq_len, "Conv1D: kernel larger than sequence");
        Conv1D {
            seq_len,
            kernel,
            filters,
            w: init.sample(filters, kernel, rng),
            b: vec![0.0; filters],
            activation,
            gw: None,
            gb: vec![],
            cache_input: None,
            cache_pre: None,
            cache_out: None,
        }
    }

    /// Length of one filter's output map.
    pub fn out_positions(&self) -> usize {
        self.seq_len - self.kernel + 1
    }

    /// Total flattened output width.
    pub fn out_dim(&self) -> usize {
        self.filters * self.out_positions()
    }

    pub fn param_count(&self) -> usize {
        self.filters * self.kernel + self.b.len()
    }

    fn ensure_grads(&mut self) {
        if self.gw.is_none() {
            self.gw = Some(Matrix::zeros(self.filters, self.kernel));
        }
        if self.gb.len() != self.b.len() {
            self.gb = vec![0.0; self.b.len()];
        }
    }

    /// Forward pass over a `(batch, seq_len)` input.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = self.forward_inference(input);
        // Recompute pre-activation for the cache (cheap at these sizes).
        let pre = self.convolve(input);
        self.cache_input = Some(input.clone());
        self.cache_pre = Some(pre);
        self.cache_out = Some(out.clone());
        out
    }

    fn convolve(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.seq_len,
            "Conv1D::forward: input width {} != seq_len {}",
            input.cols(),
            self.seq_len
        );
        let positions = self.out_positions();
        let mut pre = Matrix::zeros(input.rows(), self.out_dim());
        for r in 0..input.rows() {
            let x = input.row(r);
            for f in 0..self.filters {
                let wf = self.w.row(f);
                for p in 0..positions {
                    let mut acc = self.b[f];
                    for k in 0..self.kernel {
                        acc += wf[k] * x[p + k];
                    }
                    pre[(r, f * positions + p)] = acc;
                }
            }
        }
        pre
    }

    /// Inference-only forward pass.
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut pre = self.convolve(input);
        pre.map_inplace(|x| self.activation.apply(x));
        pre
    }

    /// Backward pass; returns dL/d(input) of shape `(batch, seq_len)`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        self.ensure_grads();
        let input = self
            .cache_input
            .as_ref()
            .expect("Conv1D::backward called before forward");
        let pre = self.cache_pre.as_ref().unwrap();
        let out = self.cache_out.as_ref().unwrap();
        let positions = self.out_positions();
        let act = self.activation;

        let mut grad_in = Matrix::zeros(input.rows(), self.seq_len);
        let gw = self.gw.as_mut().unwrap();
        for r in 0..input.rows() {
            let x = input.row(r);
            for f in 0..self.filters {
                for p in 0..positions {
                    let idx = (r, f * positions + p);
                    let g = grad_out[idx] * act.derivative(pre[idx], out[idx]);
                    if g == 0.0 {
                        continue;
                    }
                    self.gb[f] += g;
                    for k in 0..self.kernel {
                        gw[(f, k)] += g * x[p + k];
                        grad_in[(r, p + k)] += g * self.w[(f, k)];
                    }
                }
            }
        }
        grad_in
    }

    pub fn zero_grad(&mut self) {
        if let Some(gw) = &mut self.gw {
            gw.fill_zero();
        }
        self.gb.iter_mut().for_each(|x| *x = 0.0);
    }

    pub fn params(&mut self) -> Vec<ParamGrad<'_>> {
        self.ensure_grads();
        vec![
            ParamGrad {
                param: self.w.data_mut(),
                grad: self.gw.as_mut().unwrap().data_mut(),
            },
            ParamGrad {
                param: &mut self.b,
                grad: &mut self.gb,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn dense_forward_known_values() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let mut d = Dense::from_weights(w, vec![0.5, -0.5], Activation::Linear);
        let x = Matrix::row_vector(&[3.0, 4.0]);
        let y = d.forward(&x);
        assert_eq!(y, Matrix::row_vector(&[3.5, 7.5]));
    }

    #[test]
    fn dense_relu_clamps() {
        let w = Matrix::from_rows(&[&[1.0]]);
        let mut d = Dense::from_weights(w, vec![0.0], Activation::Relu);
        assert_eq!(
            d.forward(&Matrix::row_vector(&[-2.0])),
            Matrix::row_vector(&[0.0])
        );
        assert_eq!(
            d.forward(&Matrix::row_vector(&[2.0])),
            Matrix::row_vector(&[2.0])
        );
    }

    /// Finite-difference gradient check of the dense layer (weights, bias,
    /// and input gradient) under a quadratic loss.
    #[test]
    fn dense_gradcheck() {
        let mut rng = rng();
        for act in [
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu,
            Activation::Linear,
        ] {
            let mut layer = Dense::new(3, 2, act, Init::XavierUniform, &mut rng);
            let x = Matrix::from_rows(&[&[0.3, -0.7, 0.5], &[1.1, 0.2, -0.4]]);
            // loss = 0.5 * sum(y^2) => dL/dy = y
            let y = layer.forward(&x);
            let gin = layer.backward(&y.clone());

            // check input gradient via finite differences
            let eps = 1e-6;
            for r in 0..x.rows() {
                for c in 0..x.cols() {
                    let mut xp = x.clone();
                    xp[(r, c)] += eps;
                    let mut xm = x.clone();
                    xm[(r, c)] -= eps;
                    let lp: f64 = layer
                        .forward_inference(&xp)
                        .data()
                        .iter()
                        .map(|v| 0.5 * v * v)
                        .sum();
                    let lm: f64 = layer
                        .forward_inference(&xm)
                        .data()
                        .iter()
                        .map(|v| 0.5 * v * v)
                        .sum();
                    let fd = (lp - lm) / (2.0 * eps);
                    assert!(
                        (fd - gin[(r, c)]).abs() < 1e-5,
                        "input grad mismatch for {act:?}: fd={fd}, got={}",
                        gin[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn dense_weight_gradcheck() {
        let mut rng = rng();
        let mut layer = Dense::new(2, 2, Activation::Tanh, Init::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[&[0.4, -0.2]]);
        let y = layer.forward(&x);
        let _ = layer.backward(&y.clone());
        let eps = 1e-6;
        // Perturb each weight, compare to accumulated gw.
        let w0 = layer.w.clone();
        let gw = layer.gw.clone().unwrap();
        for r in 0..w0.rows() {
            for c in 0..w0.cols() {
                let mut lp_layer = layer.clone();
                lp_layer.w[(r, c)] += eps;
                let mut lm_layer = layer.clone();
                lm_layer.w[(r, c)] -= eps;
                let lp: f64 = lp_layer
                    .forward_inference(&x)
                    .data()
                    .iter()
                    .map(|v| 0.5 * v * v)
                    .sum();
                let lm: f64 = lm_layer
                    .forward_inference(&x)
                    .data()
                    .iter()
                    .map(|v| 0.5 * v * v)
                    .sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - gw[(r, c)]).abs() < 1e-5,
                    "weight grad mismatch at ({r},{c}): fd={fd}, got={}",
                    gw[(r, c)]
                );
            }
        }
    }

    #[test]
    fn dense_grad_accumulates_until_zeroed() {
        let mut rng = rng();
        let mut layer = Dense::new(2, 1, Activation::Linear, Init::XavierUniform, &mut rng);
        let x = Matrix::row_vector(&[1.0, 1.0]);
        let g = Matrix::row_vector(&[1.0]);
        layer.forward(&x);
        layer.backward(&g);
        let g1 = layer.gw.clone().unwrap();
        layer.forward(&x);
        layer.backward(&g);
        let g2 = layer.gw.clone().unwrap();
        assert!((g2[(0, 0)] - 2.0 * g1[(0, 0)]).abs() < 1e-12);
        layer.zero_grad();
        assert_eq!(layer.gw.unwrap().max_abs(), 0.0);
    }

    #[test]
    fn conv1d_shapes() {
        let mut rng = rng();
        let c = Conv1D::new(8, 4, 3, Activation::Relu, Init::HeUniform, &mut rng);
        assert_eq!(c.out_positions(), 5);
        assert_eq!(c.out_dim(), 15);
    }

    #[test]
    fn conv1d_known_values() {
        let mut rng = rng();
        let mut c = Conv1D::new(4, 2, 1, Activation::Linear, Init::Zeros, &mut rng);
        // filter = [1, -1], bias = 0 => output is backward difference
        c.w = Matrix::from_rows(&[&[1.0, -1.0]]);
        let x = Matrix::row_vector(&[1.0, 3.0, 6.0, 10.0]);
        let y = c.forward(&x);
        assert_eq!(y, Matrix::row_vector(&[-2.0, -3.0, -4.0]));
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut rng = rng();
        let mut layer = Conv1D::new(6, 3, 2, Activation::Tanh, Init::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, -0.3, 0.5, 0.7, -0.2, 0.4]]);
        let y = layer.forward(&x);
        let gin = layer.backward(&y.clone());
        let eps = 1e-6;
        for c in 0..x.cols() {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let lp: f64 = layer
                .forward_inference(&xp)
                .data()
                .iter()
                .map(|v| 0.5 * v * v)
                .sum();
            let lm: f64 = layer
                .forward_inference(&xm)
                .data()
                .iter()
                .map(|v| 0.5 * v * v)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin[(0, c)]).abs() < 1e-5,
                "conv input grad mismatch at {c}: fd={fd}, got={}",
                gin[(0, c)]
            );
        }
    }

    #[test]
    fn dense_serde_roundtrip_preserves_inference() {
        let mut rng = rng();
        let mut layer = Dense::new(4, 3, Activation::Tanh, Init::XavierUniform, &mut rng);
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
        let y = layer.forward(&x);
        let json = serde_json::to_string(&layer).unwrap();
        let back: Dense = serde_json::from_str(&json).unwrap();
        assert_eq!(back.forward_inference(&x), y);
    }
}
