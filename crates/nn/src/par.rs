//! Deterministic fork/join primitives shared by every parallel stage of
//! the stack (episode collection, evaluation, multi-output fitting, the
//! per-node CART split scan, and the batched §4 mask-gradient blocks).
//!
//! The contract everywhere: work items are independent, each worker
//! handles an index stripe, and results merge back **in index order** —
//! so the output is identical for any thread count.
//!
//! # The persistent worker pool
//!
//! Every [`parallel_map_indexed`] call used to spawn fresh OS threads.
//! That is fine for coarse stages (a collection round), but once pipelines
//! run *concurrently* (one per workload) the inner stages fire thousands
//! of fine-grained calls and per-call spawning both dominates the runtime
//! and oversubscribes the machine. Calls now execute on one process-wide
//! [`WorkerPool`] ([`global`]):
//!
//! * **Long-lived workers** block on a condvar-fed queue; a call enqueues
//!   lightweight *tickets* instead of spawning.
//! * **Stripe claiming** — each job exposes an atomic cursor over its
//!   logical stripes (`w`, `w+T`, `w+2T`, … for stripe `w` of `T`). The
//!   submitting thread claims stripes too, so a job always makes progress
//!   even when every pool worker is busy — nested submissions (a pipeline
//!   stage inside a workload, a workload inside the pool) cannot deadlock.
//! * **Fair scheduling** — tickets are tagged with the submitting
//!   thread's *group* (see [`with_group`]); the queue round-robins across
//!   groups so concurrent workloads share the pool instead of the first
//!   submitter draining it.
//! * **Deadline classes** — a group may additionally carry a *deadline
//!   class* (see [`with_deadline_class`]; lower = more urgent). Workers
//!   drain every ticket of the most urgent class present before touching
//!   laxer ones, round-robinning across groups *within* a class. This is
//!   how the serving fabric pushes per-tenant SLO tiers into the pool:
//!   an urgent tenant's micro-batches get the helper threads first.
//!   Classes reorder **helpers only** — the submitting thread always
//!   claims stripes of its own job, so a lax job still progresses (no
//!   starvation-induced deadlock) and results stay bit-identical for any
//!   class assignment (merging is by index, never by completion order).
//! * **Determinism is structural** — the `threads` knob picks the stripe
//!   layout, results scatter into a pre-sized output by item index, and
//!   nothing depends on which OS thread computes which stripe. The output
//!   is bit-identical to the retained spawn-per-call implementation
//!   ([`reference::parallel_map_indexed`]) for every thread count, pool
//!   size, and interleaving; a proptest suite pins this.

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Helper tickets currently queued across every pool (updated under the
/// queue lock, so the value is never negative). Instantaneous load
/// signal for the telemetry plane / a future autoscaler — monitoring
/// only, never consulted by scheduling.
static QUEUED_TICKETS: AtomicI64 = AtomicI64::new(0);
/// Striped jobs currently executing (submitted and not yet joined),
/// including inline/sequential runs.
static ACTIVE_JOBS: AtomicI64 = AtomicI64::new(0);

/// Current queued helper-ticket count across every pool in the process.
pub fn queued_tickets() -> i64 {
    QUEUED_TICKETS.load(Ordering::Relaxed)
}

/// Current in-flight striped-job count across every pool in the process.
pub fn active_jobs() -> i64 {
    ACTIVE_JOBS.load(Ordering::Relaxed)
}

/// RAII guard pairing the [`ACTIVE_JOBS`] increment with its decrement,
/// so a panicking stripe body (re-raised by `Job::wait`) still restores
/// the gauge.
struct ActiveJobGauge;

impl ActiveJobGauge {
    fn enter() -> Self {
        ACTIVE_JOBS.fetch_add(1, Ordering::Relaxed);
        ActiveJobGauge
    }
}

impl Drop for ActiveJobGauge {
    fn drop(&mut self) {
        ACTIVE_JOBS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Resolve a thread-count knob: 0 means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// SplitMix64 finalizer — the avalanche step used to derive decorrelated
/// per-item RNG seeds from a base seed and an item index.
pub fn mix_seed(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

thread_local! {
    /// Scheduling group of pool submissions made from this thread
    /// (0 = ungrouped). Purely a fairness tag — results never depend on it.
    static GROUP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Deadline class of pool submissions made from this thread
    /// (lower = more urgent; 0 = the default, most-urgent class). Purely
    /// a scheduling tag — results never depend on it.
    static CLASS: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

static NEXT_GROUP: AtomicU64 = AtomicU64::new(1);

/// Reserve a fresh, process-unique scheduling group id.
pub fn fresh_group() -> u64 {
    NEXT_GROUP.fetch_add(1, Ordering::Relaxed)
}

/// Run `f` with every pool submission from this thread tagged with
/// `group`, the unit of the pool's round-robin fairness. The previous tag
/// is restored afterwards (also on unwind). Workload drivers wrap their
/// whole pipeline in this so concurrent workloads share the pool fairly;
/// the tag never affects results, only latency.
pub fn with_group<R>(group: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            GROUP.with(|g| g.set(self.0));
        }
    }
    let _restore = Restore(GROUP.with(|g| g.replace(group)));
    f()
}

fn current_group() -> u64 {
    GROUP.with(|g| g.get())
}

/// Run `f` with every pool submission from this thread scheduled in
/// deadline `class` (lower = more urgent; ties round-robin across
/// groups). The previous class is restored afterwards (also on unwind).
/// The class only steers which queued tickets pool workers pick up
/// first — the submitter still works its own job, so a lax class delays
/// helpers, never completion, and results are bit-identical for any
/// class assignment.
pub fn with_deadline_class<R>(class: u8, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            CLASS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CLASS.with(|c| c.replace(class)));
    f()
}

/// Deadline class pool submissions from this thread currently carry.
pub fn current_deadline_class() -> u8 {
    CLASS.with(|c| c.get())
}

#[derive(Default)]
struct JobState {
    /// Stripes whose bodies have finished running.
    completed: usize,
    /// First panic payload raised by a stripe body, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One fork/join submission: an atomic cursor over `total` logical
/// stripes plus a completion latch. The body pointer is type-erased; the
/// submitter guarantees its referent outlives the job by blocking until
/// `completed == total` before returning (see [`WorkerPool::run_stripes`]).
struct Job {
    next: AtomicUsize,
    total: usize,
    state: Mutex<JobState>,
    done: Condvar,
    /// Scheduling group of the submitter, re-applied around stripe
    /// bodies so *nested* submissions made from pool workers inherit the
    /// workload's fairness tag instead of the worker's default group.
    group: u64,
    /// Deadline class of the submitter, re-applied around stripe bodies
    /// for the same nested-inheritance reason as `group`.
    class: u8,
    body: *const (dyn Fn(usize) + Sync),
}

// SAFETY: `body` is only dereferenced for stripes claimed from `next`
// (strictly fewer than `total` claims succeed), and the submitting thread
// keeps the referent alive until all `total` stripes have completed.
// Everything else in the struct is Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run stripes until the cursor is exhausted. Safe to call
    /// from any thread, any number of times (late tickets no-op).
    fn work(&self) {
        loop {
            let w = self.next.fetch_add(1, Ordering::Relaxed);
            if w >= self.total {
                return;
            }
            // SAFETY: see the `unsafe impl Send` comment above.
            let body = unsafe { &*self.body };
            let result = catch_unwind(AssertUnwindSafe(|| {
                with_deadline_class(self.class, || with_group(self.group, || body(w)));
            }));
            let mut state = self.state.lock().unwrap();
            state.completed += 1;
            if let Err(payload) = result {
                state.panic.get_or_insert(payload);
            }
            if state.completed == self.total {
                self.done.notify_all();
            }
        }
    }

    /// Block until every stripe has completed, then re-raise the first
    /// stripe panic (if any) on the calling thread.
    fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.completed < self.total {
            state = self.done.wait(state).unwrap();
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

/// One group's pending tickets plus the deadline class its most recent
/// submission carried.
struct GroupQueue {
    group: u64,
    class: u8,
    tickets: VecDeque<Arc<Job>>,
}

/// Per-group FIFO ticket queues with deadline-aware ordering: each pop
/// serves the most urgent (lowest) deadline class present, round-robin
/// across the groups *of that class* so one chatty workload cannot
/// starve its peers. Groups vanish as soon as they drain, so every
/// present entry holds at least one ticket.
#[derive(Default)]
struct Queues {
    groups: Vec<GroupQueue>,
    cursor: usize,
    shutdown: bool,
}

impl Queues {
    fn push(&mut self, group: u64, class: u8, job: &Arc<Job>, tickets: usize) {
        let queue = match self.groups.iter_mut().position(|g| g.group == group) {
            Some(i) => {
                // Latest submission wins: a workload that tightens (or
                // relaxes) its class mid-run reschedules its whole queue.
                self.groups[i].class = class;
                &mut self.groups[i].tickets
            }
            None => {
                self.groups.push(GroupQueue {
                    group,
                    class,
                    tickets: VecDeque::new(),
                });
                &mut self.groups.last_mut().unwrap().tickets
            }
        };
        for _ in 0..tickets {
            queue.push_back(Arc::clone(job));
        }
        QUEUED_TICKETS.fetch_add(tickets as i64, Ordering::Relaxed);
    }

    fn pop(&mut self) -> Option<Arc<Job>> {
        let urgent = self.groups.iter().map(|g| g.class).min()?;
        let len = self.groups.len();
        for k in 0..len {
            let idx = (self.cursor + k) % len;
            if self.groups[idx].class != urgent {
                continue;
            }
            if let Some(job) = self.groups[idx].tickets.pop_front() {
                QUEUED_TICKETS.fetch_sub(1, Ordering::Relaxed);
                if self.groups[idx].tickets.is_empty() {
                    self.groups.remove(idx);
                    let remaining = self.groups.len();
                    self.cursor = if remaining == 0 { 0 } else { idx % remaining };
                } else {
                    self.cursor = (idx + 1) % len;
                }
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    queues: Mutex<Queues>,
    available: Condvar,
}

/// A persistent pool of worker threads executing index-striped fork/join
/// jobs. See the module docs; most callers go through [`global`] and
/// [`parallel_map_indexed`] rather than owning a pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queues = shared.queues.lock().unwrap();
            loop {
                if let Some(job) = queues.pop() {
                    break Some(job);
                }
                if queues.shutdown {
                    break None;
                }
                queues = shared.available.wait(queues).unwrap();
            }
        };
        match job {
            Some(job) => job.work(),
            None => return,
        }
    }
}

impl WorkerPool {
    /// Spawn a pool with `background_threads` long-lived workers. Zero is
    /// valid: every job then runs inline on the submitting thread (same
    /// results — determinism never depends on the pool size).
    pub fn new(background_threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues::default()),
            available: Condvar::new(),
        });
        let handles = (0..background_threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("metis-pool-{k}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of long-lived background workers (the submitting thread
    /// always participates on top of these).
    pub fn background_threads(&self) -> usize {
        self.handles.len()
    }

    /// Run `body(w)` for every stripe `w` in `0..stripes`, fanning across
    /// the pool. The submitting thread claims stripes alongside the
    /// workers and does not return until all stripes completed, so `body`
    /// may borrow from the caller's stack. Panics in any stripe are
    /// re-raised here after the remaining stripes finish.
    pub fn run_stripes<F: Fn(usize) + Sync>(&self, stripes: usize, body: F) {
        let _active = ActiveJobGauge::enter();
        if stripes <= 1 || self.handles.is_empty() {
            for w in 0..stripes {
                body(w);
            }
            return;
        }
        let erased: &(dyn Fn(usize) + Sync) = &body;
        // SAFETY: the lifetime is erased only for storage in `Job`; this
        // function blocks (`job.wait()`) until every stripe completed, so
        // no dereference outlives `body`.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        };
        let group = current_group();
        let class = current_deadline_class();
        let job = Arc::new(Job {
            next: AtomicUsize::new(0),
            total: stripes,
            state: Mutex::new(JobState::default()),
            done: Condvar::new(),
            group,
            class,
            body: erased as *const _,
        });
        let helpers = (stripes - 1).min(self.handles.len());
        self.shared
            .queues
            .lock()
            .unwrap()
            .push(group, class, &job, helpers);
        if helpers == 1 {
            self.shared.available.notify_one();
        } else {
            self.shared.available.notify_all();
        }
        job.work();
        job.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.queues.lock().unwrap().shutdown = true;
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool every [`parallel_map_indexed`] call executes on,
/// created on first use with `cores - 1` background workers (minimum 1, so
/// cross-thread merging is exercised even on single-core machines).
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkerPool::new(cores.saturating_sub(1).max(1))
    })
}

/// Pointer to the pre-sized output slots workers scatter into. Each item
/// index is written by exactly one stripe, so concurrent writers never
/// alias.
struct SlotPtr<T>(*mut MaybeUninit<T>);
impl<T> Clone for SlotPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotPtr<T> {}
// SAFETY: stripes write disjoint indices; the owning Vec outlives the job
// because the submitter blocks until every stripe completed.
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// # Safety
    /// `i` must be in bounds and written by exactly one stripe.
    unsafe fn write(&self, i: usize, value: T) {
        (*self.0.add(i)).write(value);
    }
}

/// Map `f` over `0..n` across `threads` logical workers (0 = all cores),
/// returning results in index order. Runs on the persistent [`global`]
/// pool: workers take index stripes (`w`, `w+T`, `w+2T`, …) and scatter
/// results **directly into pre-sized output slots** — no intermediate
/// `(index, value)` buffers. Falls back to a plain sequential map when one
/// worker suffices. Output is identical for any thread count and
/// bit-identical to [`reference::parallel_map_indexed`].
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    slots.resize_with(n, MaybeUninit::uninit);
    let out = SlotPtr(slots.as_mut_ptr());
    let f = &f;
    global().run_stripes(workers, move |w| {
        for i in (w..n).step_by(workers) {
            // SAFETY: stripe `w` owns exactly the indices `w, w+T, …`, so
            // this slot is written once, with no concurrent access. (If a
            // stripe panics, already-written slots leak rather than
            // double-drop: `MaybeUninit` suppresses the element drops.)
            unsafe { out.write(i, f(i)) };
        }
    });
    // Every index in 0..n belongs to exactly one stripe and run_stripes
    // completed them all, so all n slots are initialized.
    let (ptr, len, cap) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
    std::mem::forget(slots);
    // SAFETY: MaybeUninit<T> has the same layout as T and all slots are
    // initialized; ptr/len/cap come from the forgotten Vec.
    unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
}

/// The pre-pool spawn-per-call implementation, kept verbatim as the
/// behavioural oracle for the pool-backed engine (mirroring the CART
/// builder's reference splitter): scoped threads per call, per-item
/// `(index, value)` tuples merged through `Option` slots. The proptest
/// suite pins `parallel_map_indexed` bit-identical to this for any thread
/// count; the conversion bench quantifies how much pool reuse saves at
/// fine granularity.
#[doc(hidden)]
pub mod reference {
    use super::resolve_threads;

    pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = resolve_threads(threads).min(n.max(1));
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    scope.spawn(move || {
                        (w..n)
                            .step_by(workers)
                            .map(|i| (i, f(i)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel_map_indexed worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for chunk in chunks {
            for (i, v) in chunk {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index mapped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_for_any_thread_count() {
        let sq = |i: usize| i * i;
        let expected: Vec<usize> = (0..37).map(sq).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map_indexed(37, threads, sq), expected);
        }
        assert_eq!(parallel_map_indexed(0, 4, sq), Vec::<usize>::new());
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn empty_and_tiny_inputs_for_every_worker_count() {
        // n == 0 and n < workers must not touch the pool's scatter path
        // incorrectly: every stripe layout covers 0..n exactly once.
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map_indexed(0, threads, |i| i), Vec::<usize>::new());
            for n in 1..6 {
                let expected: Vec<usize> = (0..n).map(|i| i * 7 + 1).collect();
                assert_eq!(parallel_map_indexed(n, threads, |i| i * 7 + 1), expected);
            }
        }
    }

    #[test]
    fn heap_owning_results_match_reference() {
        // String results exercise drop correctness of the scatter merge.
        let f = |i: usize| format!("item-{i}-{}", i * i);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                parallel_map_indexed(29, threads, f),
                reference::parallel_map_indexed(29, threads, f)
            );
        }
    }

    #[test]
    fn pool_reuse_across_many_calls() {
        for round in 0..200 {
            let out = parallel_map_indexed(17, 4, |i| i + round);
            assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_submissions_do_not_deadlock() {
        // A pipeline stage inside a workload inside the pool: inner maps
        // submitted from pool-executed stripes must complete (submitter
        // claiming guarantees progress even with every worker busy).
        let out = parallel_map_indexed(6, 3, |i| {
            parallel_map_indexed(5, 2, move |j| i * 10 + j)
                .into_iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(16, 4, |i| {
                if i == 11 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err(), "stripe panic must reach the submitter");
        // The pool keeps serving jobs afterwards.
        let ok = parallel_map_indexed(8, 4, |i| i * 2);
        assert_eq!(ok, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    /// End-to-end class ordering on a real pool: with the only worker
    /// gated, a lax job queued *first* and an urgent job queued second,
    /// the freed worker must help the urgent job first — so the urgent
    /// job finishes before the earlier-queued lax one. Sleeping stripes
    /// make the timing robust on any core count (threads sleep
    /// concurrently), and the gate only opens once both tickets are
    /// provably queued.
    #[test]
    fn urgent_class_gets_the_helper_before_an_earlier_lax_job() {
        use std::time::{Duration, Instant};
        let pool = WorkerPool::new(1);
        let waiters = AtomicUsize::new(0);
        let gate = (Mutex::new(false), Condvar::new());
        let queued_groups = |n: usize| {
            let queues = pool.shared.queues.lock().unwrap();
            queues.groups.len() >= n
        };
        let (u_done, l_done) = std::thread::scope(|scope| {
            // Occupy the only worker (and this job's submitter) behind
            // the gate: both stripes block until it opens.
            let gate_job = scope.spawn(|| {
                pool.run_stripes(2, |_| {
                    waiters.fetch_add(1, Ordering::SeqCst);
                    let (lock, cv) = &gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                });
            });
            while waiters.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            let t0 = Instant::now();
            let pool = &pool;
            // Lax job enqueues its helper ticket first…
            let lax = scope.spawn(move || {
                with_group(fresh_group(), || {
                    with_deadline_class(4, || {
                        pool.run_stripes(2, |_| std::thread::sleep(Duration::from_millis(9)));
                    })
                });
                t0.elapsed()
            });
            while !queued_groups(1) {
                std::thread::yield_now();
            }
            // …then the urgent job.
            let urgent = scope.spawn(move || {
                with_group(fresh_group(), || {
                    with_deadline_class(0, || {
                        pool.run_stripes(2, |_| std::thread::sleep(Duration::from_millis(9)));
                    })
                });
                t0.elapsed()
            });
            while !queued_groups(2) {
                std::thread::yield_now();
            }
            // Open the gate: the worker frees up and must pick the
            // urgent ticket despite the lax one being queued longer.
            {
                let (lock, cv) = &gate;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            gate_job.join().unwrap();
            (urgent.join().unwrap(), lax.join().unwrap())
        });
        // Urgent: own stripe + helped stripe run concurrently (~9ms).
        // Lax: walks both stripes itself (~18ms) because its helper
        // ticket is only honoured after the urgent job drains.
        assert!(
            u_done < l_done,
            "urgent job ({u_done:?}) must finish before the earlier lax job ({l_done:?})"
        );
    }

    #[test]
    fn group_tag_propagates_into_worker_executed_stripes() {
        // Stripe bodies may run on pool worker threads whose own
        // thread-local group is 0; the job must re-apply the submitter's
        // group so *nested* submissions keep the workload's fairness tag.
        let group = fresh_group();
        with_group(group, || {
            let seen = parallel_map_indexed(8, 4, |_| current_group());
            assert!(
                seen.iter().all(|&g| g == group),
                "stripe lost the submitter's group: {seen:?} != {group}"
            );
        });
    }

    #[test]
    fn group_tag_is_scoped_and_restored() {
        assert_eq!(current_group(), 0);
        let (a, b) = (fresh_group(), fresh_group());
        assert_ne!(a, b);
        with_group(a, || {
            assert_eq!(current_group(), a);
            // Grouping never changes results.
            let tagged = parallel_map_indexed(13, 3, |i| i * 3);
            assert_eq!(tagged, (0..13).map(|i| i * 3).collect::<Vec<_>>());
            with_group(b, || assert_eq!(current_group(), b));
            assert_eq!(current_group(), a);
        });
        assert_eq!(current_group(), 0);
    }

    /// A queue ticket that never runs a body — identity-compared via
    /// `Arc::ptr_eq` to pin the scheduler's pop order exactly.
    fn dummy_job(group: u64, class: u8) -> Arc<Job> {
        static NOOP: fn(usize) = |_| {};
        let body: &'static (dyn Fn(usize) + Sync) = &NOOP;
        Arc::new(Job {
            next: AtomicUsize::new(0),
            total: 1,
            state: Mutex::new(JobState::default()),
            done: Condvar::new(),
            group,
            class,
            body: body as *const _,
        })
    }

    #[test]
    fn queue_pops_round_robin_within_a_class_and_urgent_class_first() {
        let mut queues = Queues::default();
        let (a, b, c) = (dummy_job(1, 0), dummy_job(2, 2), dummy_job(3, 0));
        queues.push(1, 0, &a, 2);
        queues.push(2, 2, &b, 2);
        queues.push(3, 0, &c, 1);
        // Class 0 drains first (groups 1 and 3 alternating), then class 2.
        let order: Vec<Arc<Job>> = std::iter::from_fn(|| queues.pop()).collect();
        assert_eq!(order.len(), 5);
        let expected = [&a, &c, &a, &b, &b];
        for (got, want) in order.iter().zip(expected) {
            assert!(Arc::ptr_eq(got, want), "pop order diverged");
        }
        assert!(queues.pop().is_none());
    }

    #[test]
    fn urgent_arrival_preempts_queued_lax_tickets() {
        let mut queues = Queues::default();
        let lax = dummy_job(7, 3);
        queues.push(7, 3, &lax, 3);
        assert!(Arc::ptr_eq(&queues.pop().unwrap(), &lax));
        // An urgent group arriving mid-drain is served before the
        // remaining lax tickets…
        let urgent = dummy_job(8, 1);
        queues.push(8, 1, &urgent, 1);
        assert!(Arc::ptr_eq(&queues.pop().unwrap(), &urgent));
        assert!(Arc::ptr_eq(&queues.pop().unwrap(), &lax));
        // …and a group re-pushed under a tighter class reschedules its
        // whole queue (latest submission wins).
        let tightened = dummy_job(7, 0);
        queues.push(7, 0, &tightened, 1);
        let nine = dummy_job(9, 1);
        queues.push(9, 1, &nine, 1);
        assert!(
            Arc::ptr_eq(&queues.pop().unwrap(), &lax),
            "group 7's FIFO serves its older ticket first, now at class 0"
        );
        assert!(Arc::ptr_eq(&queues.pop().unwrap(), &tightened));
        assert!(Arc::ptr_eq(&queues.pop().unwrap(), &nine));
        assert!(queues.pop().is_none());
    }

    #[test]
    fn deadline_class_is_scoped_and_never_changes_results() {
        assert_eq!(current_deadline_class(), 0);
        let expected: Vec<usize> = (0..31).map(|i| i * 13).collect();
        with_deadline_class(2, || {
            assert_eq!(current_deadline_class(), 2);
            assert_eq!(parallel_map_indexed(31, 3, |i| i * 13), expected);
            with_deadline_class(5, || assert_eq!(current_deadline_class(), 5));
            assert_eq!(current_deadline_class(), 2);
            // Stripe bodies inherit the submitter's class, so nested
            // submissions keep the tenant's SLO tier.
            let seen = parallel_map_indexed(6, 3, |_| current_deadline_class());
            assert!(seen.iter().all(|&c| c == 2), "stripe lost class: {seen:?}");
        });
        assert_eq!(current_deadline_class(), 0);
    }

    #[test]
    fn lax_class_jobs_still_complete_under_urgent_load() {
        // The submitter always claims its own stripes, so a lax job
        // finishes even while urgent groups keep the helpers busy.
        let out = with_deadline_class(250, || parallel_map_indexed(64, 8, |i| i + 1));
        assert_eq!(out, (0..64).map(|i| i + 1).collect::<Vec<_>>());
    }

    /// The load gauges see a running job and never go negative. (They
    /// are process-global and other tests run concurrently, so only
    /// lower bounds are assertable here.)
    #[test]
    fn pool_load_gauges_observe_running_jobs() {
        assert!(queued_tickets() >= 0);
        let seen_active = parallel_map_indexed(8, 4, |_| active_jobs());
        assert!(
            seen_active.iter().all(|&a| a >= 1),
            "a stripe body must observe its own job as active: {seen_active:?}"
        );
        assert!(queued_tickets() >= 0);
    }

    #[test]
    fn private_pool_any_size_matches() {
        let expected: Vec<usize> = (0..23).map(|i| i ^ 5).collect();
        for background in [0, 1, 3] {
            let pool = WorkerPool::new(background);
            assert_eq!(pool.background_threads(), background);
            let mut slots = vec![0usize; 23];
            let cell = std::sync::Mutex::new(&mut slots);
            pool.run_stripes(4, |w| {
                for i in (w..23).step_by(4) {
                    // Keep the test simple: serialize writes via the lock.
                    cell.lock().unwrap()[i] = i ^ 5;
                }
            });
            assert_eq!(slots, expected);
        }
    }
}
