//! Deterministic fork/join primitives shared by every parallel stage of
//! the stack (episode collection, evaluation, multi-output fitting, and
//! the batched §4 mask-gradient blocks).
//!
//! The contract everywhere: work items are independent, each worker
//! handles an index stripe, and results merge back **in index order** —
//! so the output is identical for any thread count.

/// Resolve a thread-count knob: 0 means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// SplitMix64 finalizer — the avalanche step used to derive decorrelated
/// per-item RNG seeds from a base seed and an item index.
pub fn mix_seed(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Map `f` over `0..n` across `threads` workers (0 = all cores), returning
/// results in index order. Falls back to a plain sequential map when one
/// worker suffices; workers take index stripes (`w`, `w+T`, `w+2T`, …).
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    (w..n)
                        .step_by(workers)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map_indexed worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for chunk in chunks {
        for (i, v) in chunk {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_for_any_thread_count() {
        let sq = |i: usize| i * i;
        let expected: Vec<usize> = (0..37).map(sq).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map_indexed(37, threads, sq), expected);
        }
        assert_eq!(parallel_map_indexed(0, 4, sq), Vec::<usize>::new());
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
