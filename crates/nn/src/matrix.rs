//! Dense row-major `f64` matrix used throughout the neural-network substrate.
//!
//! This is intentionally a small, predictable type (in the spirit of the
//! smoltcp design notes: simplicity over cleverness). All shapes are checked
//! at runtime and violations panic with a descriptive message — shape bugs
//! are programming errors, not recoverable conditions.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        assert!(r > 0, "Matrix::from_rows: need at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Create a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic ikj loop ordering which is cache-friendly for
    /// row-major layouts; at the model sizes used in this project this is
    /// within a small factor of BLAS and keeps the crate dependency-free.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(self.cols, bias.len(), "add_row_broadcast: width mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Sum over rows, producing one value per column.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += x;
            }
        }
        sums
    }

    /// Horizontally concatenate two matrices with the same number of rows.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat: row count mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Split off the last `right_cols` columns; returns `(left, right)`.
    pub fn hsplit(&self, right_cols: usize) -> (Matrix, Matrix) {
        assert!(
            right_cols <= self.cols,
            "hsplit: too many columns requested"
        );
        let left_cols = self.cols - right_cols;
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, right_cols);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..left_cols]);
            right.row_mut(r).copy_from_slice(&self.row(r)[left_cols..]);
        }
        (left, right)
    }

    /// Fill with zeros (used to reset gradient accumulators).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        let (left, right) = cat.hsplit(1);
        assert_eq!(left, a);
        assert_eq!(right, b);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = a.map(f64::abs);
        assert_eq!(b, Matrix::from_rows(&[&[1.0, 2.0]]));
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 0.0]]));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let b = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!b.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.5, 2.5], &[3.5, 4.5]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
