//! Dense row-major `f64` matrix used throughout the neural-network substrate.
//!
//! This is intentionally a small, predictable type (in the spirit of the
//! smoltcp design notes: simplicity over cleverness). All shapes are checked
//! at runtime and violations panic with a descriptive message — shape bugs
//! are programming errors, not recoverable conditions.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// The kernels' one multiply-accumulate step. With the `fma` target
/// feature this is a fused multiply-add (one rounding); otherwise a plain
/// mul + add (`mul_add` without hardware FMA falls back to a soft-float
/// libm call, which would be ruinously slow). Every matmul code path —
/// register tile, edge loop, and the transpose-fused kernels — funnels
/// through this helper, so per-element results are identical across paths
/// within any one build, which is what the batched-vs-per-obs bit-parity
/// contract requires.
#[inline(always)]
fn fmadd(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        assert!(r > 0, "Matrix::from_rows: need at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Create a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Stack owned rows (e.g. collected observations) into a matrix.
    ///
    /// # Panics
    /// Panics on an empty slice or ragged rows.
    pub fn from_rows_vec(rows: &[Vec<f64>]) -> Self {
        assert!(
            !rows.is_empty(),
            "Matrix::from_rows_vec: need at least one row"
        );
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows_vec: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols: c,
            data,
        }
    }

    /// Copy of rows `lo..hi` as a new matrix (contiguous in row-major
    /// storage, so this is one memcpy).
    pub fn row_block(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo < hi && hi <= self.rows, "row_block: range out of bounds");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// A 1 x n row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Register-tile shape of the blocked matmul kernel: `IT × JT`
    /// accumulators live in registers across the whole `k` loop, so the
    /// inner loop is pure FMA/mul-add on registers (one RHS vector load
    /// and `IT` LHS broadcasts per `k`) instead of a load–modify–store per
    /// element. 4×16 gives 8 independent accumulator vectors on AVX-512
    /// (4 on AVX2) — enough to hide the FMA latency chain without
    /// spilling.
    const MATMUL_IT: usize = 4;
    const MATMUL_JT: usize = 16;

    /// Matrix product `self * other`.
    ///
    /// Cache/register-blocked kernel. Element `(i, j)` is always a single
    /// accumulator summed in increasing-`k` order, **independent of the
    /// LHS row count and of which code path (register tile or edge loop)
    /// computes it** — the invariant behind the batched-vs-per-obs
    /// bit-parity guarantees throughout the workspace: a batched forward's
    /// row `i` is bit-identical to the per-obs forward of row `i`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        const IT: usize = Matrix::MATMUL_IT;
        const JT: usize = Matrix::MATMUL_JT;
        let (rows, cols, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(rows, n);
        let j_full = (n / JT) * JT;
        // Full-width register tiles.
        let mut i0 = 0;
        while i0 < rows {
            let it = IT.min(rows - i0);
            let mut j0 = 0;
            while j0 < j_full {
                let mut acc = [[0.0f64; JT]; IT];
                for k in 0..cols {
                    let b_vec = &other.data[k * n + j0..k * n + j0 + JT];
                    for (t, acc_row) in acc.iter_mut().enumerate().take(it) {
                        let a = self.data[(i0 + t) * cols + k];
                        for (c, &b) in acc_row.iter_mut().zip(b_vec.iter()) {
                            *c = fmadd(*c, a, b);
                        }
                    }
                }
                for (t, acc_row) in acc.iter().enumerate().take(it) {
                    out.data[(i0 + t) * n + j0..(i0 + t) * n + j0 + JT].copy_from_slice(acc_row);
                }
                j0 += JT;
            }
            i0 += it;
        }
        // Edge columns (width < JT): packed once into a zero-padded
        // fixed-width scratch so the inner loop stays the fully-unrolled
        // JT-wide tile (a variable-width slice would fall back to scalar
        // code — ruinous for narrow output layers like 6-wide policy
        // heads). Lanes beyond `jt` compute against zeros and are
        // discarded; per-element accumulation order is unchanged.
        if j_full < n {
            self.matmul_edge(other, j_full, &mut out);
        }
        out
    }

    /// The padded edge-column pass of [`Matrix::matmul`] (kept out of the
    /// main function so the hot tile loop stays small enough for clean
    /// register allocation).
    fn matmul_edge(&self, other: &Matrix, j0: usize, out: &mut Matrix) {
        const IT: usize = Matrix::MATMUL_IT;
        const JT: usize = Matrix::MATMUL_JT;
        let (rows, cols, n) = (self.rows, self.cols, other.cols);
        let jt = n - j0;
        let mut edge = vec![0.0; cols * JT];
        for k in 0..cols {
            edge[k * JT..k * JT + jt].copy_from_slice(&other.data[k * n + j0..k * n + j0 + jt]);
        }
        let mut i0 = 0;
        while i0 < rows {
            let it = IT.min(rows - i0);
            let mut acc = [[0.0f64; JT]; IT];
            for (k, b_vec) in edge.chunks_exact(JT).enumerate() {
                // Fixed-size view so the lane loop fully unrolls.
                let b_arr: &[f64; JT] = b_vec.try_into().expect("chunked to JT");
                for (t, acc_row) in acc.iter_mut().enumerate().take(it) {
                    let a = self.data[(i0 + t) * cols + k];
                    for (c, &b) in acc_row.iter_mut().zip(b_arr.iter()) {
                        *c = fmadd(*c, a, b);
                    }
                }
            }
            for (t, acc_row) in acc.iter().enumerate().take(it) {
                out.data[(i0 + t) * n + j0..(i0 + t) * n + j0 + jt].copy_from_slice(&acc_row[..jt]);
            }
            i0 += it;
        }
    }

    /// `act((self * other) + bias)`: the blocked product followed by a
    /// **single** combined bias+activation pass over the output (instead
    /// of two separate broadcast and map passes). Arithmetic per element
    /// is exactly `act(Σ_k a·b + bias_j)`, bit-identical to the unfused
    /// sequence.
    pub fn matmul_bias_act(
        &self,
        other: &Matrix,
        bias: &[f64],
        act: crate::layer::Activation,
    ) -> Matrix {
        assert_eq!(
            other.cols,
            bias.len(),
            "matmul_bias_act: bias width mismatch"
        );
        let mut out = self.matmul(other);
        for r in 0..out.rows {
            for (x, &bj) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *x = act.apply(*x + bj);
            }
        }
        out
    }

    /// The pre-refactor `ikj` kernel, kept verbatim as the parity oracle
    /// for the blocked kernel — and as the per-obs baseline the
    /// `BENCH_inference` report measures the batched engine against.
    #[doc(hidden)]
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose: element
    /// `(i, j)` is the dot product of two contiguous rows (the natural
    /// "transpose-B micro-kernel" — the RHS is *already* stored
    /// transposed). Accumulation is a single accumulator in increasing-`k`
    /// order, matching [`Matrix::matmul`]'s per-element order.
    pub fn matmul_tb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb: inner dimensions mismatch ({}x{}) * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (o, j) in out_row.iter_mut().zip(0..other.rows) {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc = fmadd(acc, a, b);
                }
                *o = acc;
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose (`k`-outer over
    /// the shared row index, contiguous in both operands and the output).
    /// Element `(i, j) = Σ_k self[k][i]·other[k][j]` accumulates in
    /// increasing-`k` order with a **separate multiply and add** (never
    /// fused): `k` here is the batch dimension, and a per-obs backward
    /// necessarily rounds each observation's product before adding it into
    /// the accumulated gradient — fusing would differ by one rounding and
    /// break the batched-vs-per-obs gradient bit-parity.
    pub fn matmul_ta(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta: inner dimensions mismatch ({}x{})ᵀ * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(self.cols, bias.len(), "add_row_broadcast: width mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Sum over rows, producing one value per column.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += x;
            }
        }
        sums
    }

    /// Horizontally concatenate two matrices with the same number of rows.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat: row count mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Split off the last `right_cols` columns; returns `(left, right)`.
    pub fn hsplit(&self, right_cols: usize) -> (Matrix, Matrix) {
        assert!(
            right_cols <= self.cols,
            "hsplit: too many columns requested"
        );
        let left_cols = self.cols - right_cols;
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, right_cols);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..left_cols]);
            right.row_mut(r).copy_from_slice(&self.row(r)[left_cols..]);
        }
        (left, right)
    }

    /// Fill with zeros (used to reset gradient accumulators).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// The tiled kernel must agree bitwise with a plain per-element dot —
    /// and each batch row must equal the same row multiplied on its own
    /// (the parity invariant the batched inference engine relies on).
    #[test]
    fn matmul_tile_boundaries_and_row_parity() {
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for rows in [1usize, 7, 8, 9, 17] {
            let a = Matrix::from_fn(rows, 13, |_, _| next());
            let b = Matrix::from_fn(13, 11, |_, _| next());
            let c = a.matmul(&b);
            // Reference: single-accumulator dot in increasing-k order.
            for i in 0..rows {
                for j in 0..11 {
                    let mut acc = 0.0;
                    for k in 0..13 {
                        acc = fmadd(acc, a[(i, k)], b[(k, j)]);
                    }
                    assert_eq!(c[(i, j)], acc, "tiled kernel diverges at ({i},{j})");
                }
                // Row-parity: multiplying row i alone gives bitwise the same row.
                let solo = Matrix::row_vector(a.row(i)).matmul(&b);
                assert_eq!(solo.row(0), c.row(i), "row {i} not batch-invariant");
            }
        }
    }

    /// The blocked kernel against the retained pre-refactor `ikj` oracle.
    /// Without hardware FMA the two are bit-identical (same per-element
    /// order); with FMA contraction they differ by at most one rounding
    /// per accumulation step.
    #[test]
    fn matmul_matches_reference_kernel() {
        let a = Matrix::from_fn(9, 13, |r, c| ((r * 13 + c) as f64 * 0.11).sin());
        let b = Matrix::from_fn(13, 21, |r, c| ((r * 21 + c) as f64 * 0.07).cos());
        let fast = a.matmul(&b);
        let oracle = a.matmul_reference(&b);
        for (x, y) in fast.data().iter().zip(oracle.data().iter()) {
            if cfg!(target_feature = "fma") {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "{x} vs {y}");
            } else {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn matmul_bias_act_matches_unfused_bitwise() {
        use crate::layer::Activation;
        let a = Matrix::from_fn(11, 7, |r, c| ((r * 7 + c) as f64 * 0.19).sin());
        let w = Matrix::from_fn(7, 19, |r, c| ((r * 19 + c) as f64 * 0.03).cos());
        let bias: Vec<f64> = (0..19).map(|j| (j as f64 * 0.5).sin()).collect();
        for act in [Activation::Tanh, Activation::Relu, Activation::Linear] {
            let fused = a.matmul_bias_act(&w, &bias, act);
            let mut unfused = a.matmul(&w);
            unfused.add_row_broadcast(&bias);
            unfused.map_inplace(|x| act.apply(x));
            assert_eq!(fused, unfused, "fused epilogue diverges for {act:?}");
        }
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -0.5, 0.25]]);
        assert_eq!(a.matmul_tb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_ta_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.5, 0.25, -2.0], &[3.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_ta(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn from_rows_vec_matches_from_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(
            Matrix::from_rows_vec(&rows),
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
        );
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        let (left, right) = cat.hsplit(1);
        assert_eq!(left, a);
        assert_eq!(right, b);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = a.map(f64::abs);
        assert_eq!(b, Matrix::from_rows(&[&[1.0, 2.0]]));
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 0.0]]));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let b = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!b.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.5, 2.5], &[3.5, 4.5]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
