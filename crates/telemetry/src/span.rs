//! Stage-attributed spans: each flushed micro-batch decomposes into
//! batch-formation / kernel-compute / collect segments (plus
//! publish/swap cost on the registry path); per-request queue-wait is
//! accounted in the stage sketches rather than as per-request spans, so
//! the span log stays batch-granular and bounded.
//!
//! Under a virtual clock all stamps derive from the submission schedule
//! (batch-formation spans the min→max submit stamps; kernel and collect
//! are zero-width at the batch close), so the span log is bit-identical
//! across thread counts. Under a real clock the stamps are wall-time
//! reads around the actual work.

use crate::metrics::Counter;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// The span/stage taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Submit → kernel start, per request (sketch-only, no spans).
    QueueWait,
    /// Batch open → kernel start (the micro-batcher filling the batch).
    BatchForm,
    /// The batched model evaluation itself.
    KernelCompute,
    /// Kernel end → responses delivered.
    Collect,
    /// Registry publish/hot-swap cost (compile + pointer swap).
    Publish,
}

/// Stages indexed densely — the order of [`Stage::ALL`].
impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::KernelCompute,
        Stage::Collect,
        Stage::Publish,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::KernelCompute => "kernel_compute",
            Stage::Collect => "collect",
            Stage::Publish => "publish",
        }
    }
}

/// One completed span on a scope's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub stage: Stage,
    pub start_s: f64,
    pub dur_s: f64,
    /// Rows in the batch (0 for registry-path spans).
    pub rows: usize,
    pub epoch: u64,
}

/// Bounded span timeline: keeps the **first** `capacity` spans (the
/// head of the run a trace viewer wants) and counts the overflow.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: Counter,
}

impl SpanLog {
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            capacity,
            spans: Mutex::new(Vec::new()),
            dropped: Counter::new(),
        }
    }

    pub fn push(&self, span: SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < self.capacity {
            spans.push(span);
        } else {
            self.dropped.inc();
        }
    }

    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans rejected by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// FNV-1a digest of the retained spans (JSON-rendered).
    pub fn digest(&self) -> u64 {
        crate::fnv1a(
            serde_json::to_string(&self.records())
                .expect("spans serialize infallibly")
                .as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_keeps_the_head_and_counts_drops() {
        let log = SpanLog::new(2);
        for k in 0..4 {
            log.push(SpanRecord {
                stage: Stage::KernelCompute,
                start_s: k as f64,
                dur_s: 0.1,
                rows: 16,
                epoch: 0,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].start_s, 0.0);
        assert_eq!(log.records()[1].start_s, 1.0);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn stage_indices_are_dense_and_names_stable() {
        for (k, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
        assert_eq!(Stage::QueueWait.name(), "queue_wait");
        assert_eq!(Stage::Publish.name(), "publish");
    }

    #[test]
    fn spans_round_trip_through_the_serde_shim() {
        let log = SpanLog::new(8);
        log.push(SpanRecord {
            stage: Stage::BatchForm,
            start_s: 1.25,
            dur_s: 0.5,
            rows: 32,
            epoch: 3,
        });
        let json = serde_json::to_string(&log.records()).unwrap();
        let back: Vec<SpanRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log.records());
    }
}
