//! Lock-free counters and gauges — the live metrics a scraper (or the
//! future autoscaler) reads mid-run. All operations are relaxed
//! atomics: they impose no ordering on the hot path and no determinism
//! burden — instantaneous gauge values are monitoring data, explicitly
//! **excluded** from the deterministic event-stream digest (counters
//! written by a single batcher thread, e.g. `served`, are still exact).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// Monotone event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Instantaneous level (queue depth, in-flight batches, ensemble width).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn set(&self, n: i64) {
        self.0.store(n, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_levels() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        g.add(5);
        assert_eq!(g.get(), 2);
    }
}
