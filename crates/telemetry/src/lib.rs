//! # metis-telemetry — the live telemetry plane
//!
//! Everything the serving stack knew about itself used to materialize
//! only at shutdown (`EngineReport` / `FabricReport` / `RunnerStats`).
//! This crate is the *while-it-runs* view — the observability
//! prerequisite for the ROADMAP's autoscaler — in four pieces:
//!
//! * [`span`] — **stage-attributed spans**: each request's latency
//!   decomposes into queue-wait / batch-formation / kernel-compute /
//!   collect (plus publish cost on the registry path), stamped from the
//!   serving stack's `Clock` so real and virtual time share one path,
//! * [`metrics`] — lock-free counters and gauges (queue depth,
//!   in-flight batches, served-per-epoch, ensemble width),
//! * [`sketch`] — a windowed streaming percentile sketch (fixed
//!   log-spaced histogram, `γ = 2^(1/8)` ⇒ ≤ 9.05% relative error,
//!   mergeable, bounded memory) for mid-run per-tenant p50/p99 reads,
//! * [`recorder`] — a flight recorder: bounded ring of structured
//!   events (admission, flush, hot-swap, audit verdict, drain) with
//!   per-scope sequence numbers,
//! * [`trace`] — Chrome trace-event JSON export
//!   (`chrome://tracing` / Perfetto) rendering a run as a
//!   per-shard/per-tenant timeline.
//!
//! **Determinism contract**: under a virtual clock every span stamp,
//! flight event, and sketch bucket is derived from the submission/swap
//! schedule — never from a wall clock or thread interleaving — so the
//! deterministic surfaces ([`ShardTelemetry::digest`]) are bit-identical
//! across thread counts (`tests/telemetry_determinism.rs`). Gauges are
//! the documented exception: instantaneous levels are monitoring data,
//! excluded from digests.
//!
//! **Disabled cost**: a disabled plane ([`Telemetry::off`], the
//! default) hands out no scopes, so instrumented call sites reduce to
//! one `Option` test on an engine-local field — no atomics, no locks
//! (`telemetry_overhead_pct` in `BENCH_serving.json` gates the enabled
//! cost too).

pub mod metrics;
pub mod recorder;
pub mod sketch;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge};
pub use recorder::{EventKind, FlightEvent, FlightRecorder};
pub use sketch::{bucket_edge, LogSketch, SketchSnapshot, WindowedSketch, GAMMA};
pub use span::{SpanLog, SpanRecord, Stage};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// FNV-1a over a byte string — the digest primitive shared by the
/// deterministic telemetry surfaces.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sizing knobs for the per-scope instruments.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Max spans retained per scope (head of run; overflow counted).
    pub span_capacity: usize,
    /// Flight-recorder ring size per scope (tail of run; drops counted).
    pub recorder_capacity: usize,
    /// Width of the sketch's rotating window, in stamp seconds.
    pub window_s: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            span_capacity: 4096,
            recorder_capacity: 1024,
            window_s: 1.0,
        }
    }
}

/// Shard index used when registering a control scope (registry/audit
/// events for a scenario rather than one shard's serving lane).
pub const CONTROL_SHARD: usize = usize::MAX;

/// Per-scope instruments: one per serving shard, plus one control scope
/// per scenario for registry/audit events. Handed out by
/// [`Telemetry::register`]; every field is safe to read while the run
/// is live.
pub struct ShardTelemetry {
    scenario: String,
    shard: usize,
    tenant: String,
    deadline_class: u8,
    /// Requests submitted but not yet batched (client-side inc, batcher dec).
    pub queue_depth: Gauge,
    /// Batches opened but not yet flushed.
    pub inflight_batches: Gauge,
    /// Requests served (batcher-written — exact).
    pub served: Counter,
    /// Batches flushed.
    pub batches: Counter,
    /// Ensemble width of the last flushed epoch.
    pub ensemble_width: Gauge,
    /// Windowed latency sketch (full request span, seconds).
    pub latency: WindowedSketch,
    stage_sketches: [LogSketch; Stage::ALL.len()],
    per_epoch: Mutex<BTreeMap<u64, u64>>,
    /// Batch-level span timeline.
    pub spans: SpanLog,
    /// Structured event ring.
    pub events: FlightRecorder,
}

impl std::fmt::Debug for ShardTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardTelemetry")
            .field("scenario", &self.scenario)
            .field("shard", &self.shard)
            .field("tenant", &self.tenant)
            .field("served", &self.served.get())
            .finish_non_exhaustive()
    }
}

/// Raw stamps of one flushed micro-batch, handed to
/// [`ShardTelemetry::record_flush`]. Under a virtual clock the engine
/// derives all four from the batch's submit stamps (open = min submit,
/// the rest = the batch close), keeping the telemetry a pure function
/// of the schedule.
#[derive(Debug, Clone, Copy)]
pub struct FlushStamps {
    pub open_s: f64,
    pub kernel_start_s: f64,
    pub kernel_end_s: f64,
    pub close_s: f64,
    pub rows: usize,
    pub epoch: u64,
    pub width: usize,
}

impl ShardTelemetry {
    fn new(
        scenario: &str,
        shard: usize,
        tenant: &str,
        deadline_class: u8,
        cfg: &TelemetryConfig,
    ) -> Self {
        ShardTelemetry {
            scenario: scenario.to_string(),
            shard,
            tenant: tenant.to_string(),
            deadline_class,
            queue_depth: Gauge::new(),
            inflight_batches: Gauge::new(),
            served: Counter::new(),
            batches: Counter::new(),
            ensemble_width: Gauge::new(),
            latency: WindowedSketch::new(cfg.window_s),
            stage_sketches: Default::default(),
            per_epoch: Mutex::new(BTreeMap::new()),
            spans: SpanLog::new(cfg.span_capacity),
            events: FlightRecorder::new(cfg.recorder_capacity),
        }
    }

    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Shard index, or [`CONTROL_SHARD`] for a scenario's control scope.
    pub fn shard(&self) -> usize {
        self.shard
    }

    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tenant's deadline class at registration (0 when the caller
    /// predates classes) — labels trace rows and health reports.
    pub fn deadline_class(&self) -> u8 {
        self.deadline_class
    }

    /// Duration sketch of one stage.
    pub fn stage_sketch(&self, stage: Stage) -> &LogSketch {
        &self.stage_sketches[stage.index()]
    }

    /// Requests served per registry epoch.
    pub fn served_per_epoch(&self) -> Vec<(u64, u64)> {
        self.per_epoch
            .lock()
            .unwrap()
            .iter()
            .map(|(&e, &n)| (e, n))
            .collect()
    }

    /// A micro-batch opened. Gauge-only: the admission **event** is
    /// recorded by [`ShardTelemetry::record_flush`], once the batch's
    /// deterministic composition is known — the instant a batch opens,
    /// the ingest queue's length depends on host scheduling, which must
    /// never leak into the digestable event stream.
    pub fn on_batch_open(&self) {
        self.inflight_batches.inc();
    }

    /// One request completed: full-span latency plus its queue-wait
    /// share, stamped at the batch close.
    pub fn on_request(&self, close_s: f64, latency_s: f64, queue_wait_s: f64) {
        self.latency.record(close_s, latency_s);
        self.stage_sketches[Stage::QueueWait.index()].record(queue_wait_s);
    }

    /// A whole flushed batch's request samples in one pass — the
    /// engine's hot path. Equivalent multiset to calling
    /// [`Self::on_request`] per request with `close_s` as every stamp,
    /// but run-length amortized: within a batch latencies and
    /// queue-waits are monotone (earlier submits waited longer), so
    /// each distinct sketch bucket costs one atomic add regardless of
    /// batch size.
    pub fn on_requests(&self, close_s: f64, latencies_s: &[f64], queue_waits_s: &[f64]) {
        self.latency.record_all(close_s, latencies_s);
        self.stage_sketches[Stage::QueueWait.index()].record_all(queue_waits_s);
    }

    /// A micro-batch flushed; records the batch-form/kernel/collect
    /// spans, their duration sketches, and the flush event.
    pub fn record_flush(&self, s: &FlushStamps) {
        self.inflight_batches.dec();
        self.batches.inc();
        self.served.add(s.rows as u64);
        self.ensemble_width.set(s.width as i64);
        *self.per_epoch.lock().unwrap().entry(s.epoch).or_insert(0) += s.rows as u64;
        self.events
            .record(s.open_s, EventKind::Admission { queued: s.rows });
        for (stage, start, end) in [
            (Stage::BatchForm, s.open_s, s.kernel_start_s),
            (Stage::KernelCompute, s.kernel_start_s, s.kernel_end_s),
            (Stage::Collect, s.kernel_end_s, s.close_s),
        ] {
            let dur_s = (end - start).max(0.0);
            self.stage_sketches[stage.index()].record(dur_s);
            self.spans.push(SpanRecord {
                stage,
                start_s: start,
                dur_s,
                rows: s.rows,
                epoch: s.epoch,
            });
        }
        self.events.record(
            s.close_s,
            EventKind::Flush {
                rows: s.rows,
                epoch: s.epoch,
                width: s.width,
            },
        );
    }

    /// A model hot-swap published to the registry scope.
    pub fn on_hot_swap(&self, time_s: f64, epoch: u64, trees: usize, cost_s: f64) {
        self.stage_sketches[Stage::Publish.index()].record(cost_s);
        self.spans.push(SpanRecord {
            stage: Stage::Publish,
            start_s: time_s,
            dur_s: cost_s,
            rows: 0,
            epoch,
        });
        self.events.record(
            time_s,
            EventKind::HotSwap {
                epoch,
                trees,
                cost_s,
            },
        );
    }

    /// A shadow audit concluded on this scope.
    pub fn on_audit(&self, time_s: f64, epoch: u64, mismatches: u64, promoted: bool) {
        self.events.record(
            time_s,
            EventKind::AuditVerdict {
                epoch,
                mismatches,
                promoted,
            },
        );
    }

    /// Shutdown drained `rows` queued requests.
    pub fn on_drain(&self, time_s: f64, rows: usize) {
        self.events.record(time_s, EventKind::Drain { rows });
    }

    /// Digest of the scope's deterministic surfaces: the span log, the
    /// event ring (retained entries **and** overflow drop counts, so a
    /// saturated recorder is visible, not silently lossy), the latency
    /// sketch, every stage sketch, the served count, and the per-epoch
    /// split. Gauges (instantaneous levels) are excluded by design.
    pub fn digest(&self) -> u64 {
        let mut text = String::new();
        text.push_str(&self.scenario);
        text.push('/');
        text.push_str(&self.tenant);
        text.push_str(&format!(
            "|spans:{:x}/{}|events:{:x}/{}/{}|served:{}|epochs:{:?}|lat:{:?}",
            self.spans.digest(),
            self.spans.dropped(),
            self.events.digest(),
            self.events.recorded(),
            self.events.dropped(),
            self.served.get(),
            self.served_per_epoch(),
            self.latency.cumulative().snapshot(),
        ));
        for stage in Stage::ALL {
            text.push_str(&format!(
                "|{}:{:?}",
                stage.name(),
                self.stage_sketch(stage).snapshot()
            ));
        }
        fnv1a(text.as_bytes())
    }
}

#[derive(Debug)]
struct Plane {
    cfg: TelemetryConfig,
    scopes: Mutex<Vec<Arc<ShardTelemetry>>>,
}

/// The plane handle threaded through configs. Cloning shares the plane;
/// the default is **off** — a disabled plane registers no scopes, so
/// instrumented call sites cost one `Option` test.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Plane>>,
}

/// Does this environment ask for telemetry to be forced off?
/// (`METIS_TELEMETRY=0|off|false` — the CI disabled-plane runs.)
pub fn enabled_by_env_value(value: Option<&str>) -> bool {
    !matches!(
        value.map(str::trim),
        Some("0") | Some("off") | Some("false")
    )
}

impl Telemetry {
    /// A disabled plane (also the `Default`).
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled plane with default sizing.
    pub fn enabled() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An enabled plane with explicit sizing.
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Plane {
                cfg,
                scopes: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Enabled unless `METIS_TELEMETRY=0|off|false` — what tests and
    /// demos use so CI can run them with the plane disabled.
    pub fn from_env() -> Self {
        let forced_off = std::env::var("METIS_TELEMETRY")
            .ok()
            .is_some_and(|v| !enabled_by_env_value(Some(&v)));
        if forced_off {
            Telemetry::off()
        } else {
            Telemetry::enabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register a scope (a serving shard, or a scenario control scope
    /// with [`CONTROL_SHARD`]). `None` when the plane is disabled —
    /// callers store the `Option` and skip all instrumentation on `None`.
    /// Deadline class defaults to 0; see [`Telemetry::register_scope`].
    pub fn register(
        &self,
        scenario: &str,
        shard: usize,
        tenant: &str,
    ) -> Option<Arc<ShardTelemetry>> {
        self.register_scope(scenario, shard, tenant, 0)
    }

    /// [`Telemetry::register`] carrying the tenant's deadline class, so
    /// trace rows and health reports can label scopes by service tier.
    pub fn register_scope(
        &self,
        scenario: &str,
        shard: usize,
        tenant: &str,
        deadline_class: u8,
    ) -> Option<Arc<ShardTelemetry>> {
        let plane = self.inner.as_ref()?;
        let scope = Arc::new(ShardTelemetry::new(
            scenario,
            shard,
            tenant,
            deadline_class,
            &plane.cfg,
        ));
        plane.scopes.lock().unwrap().push(Arc::clone(&scope));
        Some(scope)
    }

    /// Every registered scope, in registration order (deterministic:
    /// the router registers sequentially at construction).
    pub fn scopes(&self) -> Vec<Arc<ShardTelemetry>> {
        match &self.inner {
            Some(plane) => plane.scopes.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Chrome trace-event JSON of every scope's timeline.
    pub fn chrome_trace(&self) -> serde::Value {
        trace::chrome_trace(&self.scopes())
    }

    /// [`Telemetry::chrome_trace`] rendered to a JSON string.
    pub fn chrome_trace_json(&self) -> String {
        serde_json::to_string(&self.chrome_trace()).expect("trace document serializes infallibly")
    }

    /// Combined digest over every scope's deterministic surfaces, in
    /// registration order. 0 for a disabled plane.
    pub fn digest(&self) -> u64 {
        let mut h = 0u64;
        for scope in self.scopes() {
            h = h.rotate_left(7).wrapping_mul(0x0000_0100_0000_01b3) ^ scope.digest();
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_registers_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        assert!(t.register("abr", 0, "gold").is_none());
        assert!(t.scopes().is_empty());
        assert_eq!(t.digest(), 0);
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn env_value_parsing() {
        assert!(enabled_by_env_value(None));
        assert!(enabled_by_env_value(Some("1")));
        assert!(enabled_by_env_value(Some("on")));
        assert!(!enabled_by_env_value(Some("0")));
        assert!(!enabled_by_env_value(Some("off")));
        assert!(!enabled_by_env_value(Some("false")));
        assert!(!enabled_by_env_value(Some(" 0 ")));
    }

    #[test]
    fn scopes_register_in_order_and_clones_share_the_plane() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        let a = t.register("abr", 0, "gold").unwrap();
        let b = t2.register("abr", 1, "gold").unwrap();
        let scopes = t.scopes();
        assert_eq!(scopes.len(), 2);
        assert!(Arc::ptr_eq(&scopes[0], &a));
        assert!(Arc::ptr_eq(&scopes[1], &b));
        assert_eq!(scopes[1].shard(), 1);
    }

    #[test]
    fn flush_accounting_feeds_every_surface() {
        let t = Telemetry::enabled();
        let s = t.register("abr", 0, "gold").unwrap();
        s.on_batch_open();
        s.on_request(2.0, 1.0, 0.5);
        s.on_request(2.0, 0.25, 0.0);
        s.record_flush(&FlushStamps {
            open_s: 1.0,
            kernel_start_s: 2.0,
            kernel_end_s: 2.0,
            close_s: 2.0,
            rows: 2,
            epoch: 5,
            width: 3,
        });
        assert_eq!(s.served.get(), 2);
        assert_eq!(s.batches.get(), 1);
        assert_eq!(s.inflight_batches.get(), 0);
        assert_eq!(s.ensemble_width.get(), 3);
        assert_eq!(s.served_per_epoch(), vec![(5, 2)]);
        assert_eq!(s.latency.cumulative().count(), 2);
        assert_eq!(s.stage_sketch(Stage::QueueWait).count(), 2);
        assert_eq!(s.stage_sketch(Stage::BatchForm).count(), 1);
        assert_eq!(s.spans.len(), 3, "batch_form + kernel + collect spans");
        let events = s.events.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.name(), "admission");
        assert_eq!(events[1].kind.name(), "flush");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let run = |latency: f64| {
            let t = Telemetry::enabled();
            let s = t.register("abr", 0, "gold").unwrap();
            s.on_request(1.0, latency, 0.0);
            s.on_hot_swap(1.5, 2, 4, 0.0);
            t.digest()
        };
        assert_eq!(run(0.25), run(0.25));
        assert_ne!(run(0.25), run(0.5));
    }
}
