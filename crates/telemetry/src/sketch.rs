//! Streaming percentile sketch: a fixed log-spaced histogram over
//! latency seconds, mergeable and bounded-memory, in the spirit of
//! DDSketch's relative-error guarantee but with **static** bucket edges
//! so that merging is a plain bucket-wise add — commutative and
//! associative, hence bit-identical for any interleaving of writers.
//!
//! Geometry: 8 buckets per octave (`γ = 2^(1/8) ≈ 1.0905`). Bucket `i`
//! covers `(2^((i-1)/8), 2^(i/8)]` seconds; indices span
//! [`IDX_MIN`]..=[`IDX_MAX`] (≈ 1.1e-7 s .. 1024 s), values outside
//! land in dedicated under/overflow buckets and NaNs in an `invalid`
//! count. A quantile estimate returns the **upper edge** of the bucket
//! holding the exact order statistic at the same floor-index rank the
//! exact recorder uses (`metis_serve::summarize_sorted`), so for
//! in-range samples:
//!
//! ```text
//!   exact_p  ≤  sketch_p  ≤  exact_p · γ        (γ − 1 ≈ 9.05% relative error)
//! ```
//!
//! Underflow reports 0.0 (absolute error < 1.2e-7 s); overflow saturates
//! at the 1024 s edge. All counters are relaxed atomics: recording is
//! lock-free and wait-free; snapshots are racy against concurrent
//! writers (each bucket individually consistent), which is fine for live
//! scraping — deterministic reads happen after the writers quiesce.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// Buckets per octave: `γ = 2^(1/8)`.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// The sketch's relative-error factor, `2^(1/8)`.
pub const GAMMA: f64 = 1.090_507_732_665_257_7;
/// Lowest bucket index: lower edge `2^((IDX_MIN-1)/8) ≈ 9.2e-8 s`.
pub const IDX_MIN: i64 = -186;
/// Highest bucket index: upper edge `2^(IDX_MAX/8) = 1024 s`.
pub const IDX_MAX: i64 = 80;
const N_BUCKETS: usize = (IDX_MAX - IDX_MIN + 1) as usize;

/// Upper edge of bucket `i`: `2^(i/8)`.
fn edge(i: i64) -> f64 {
    (i as f64 / BUCKETS_PER_OCTAVE).exp2()
}

/// Public view of the bucket geometry: the upper edge (seconds) of
/// bucket `i` — what a consumer of [`SketchSnapshot::counts`] needs to
/// turn bucket indices back into durations (e.g. the health plane's
/// stage-attribution mass estimates).
pub fn bucket_edge(i: i64) -> f64 {
    edge(i)
}

/// `edge(IDX_MIN - 1)` = `2^(-187/8)`, precomputed so the record path
/// never calls libm.
const UNDERFLOW_EDGE: f64 = 9.192_292_841_720_228e-8;
/// `edge(IDX_MAX)` = `2^(80/8)` = 1024 s exactly.
const OVERFLOW_EDGE: f64 = 1024.0;

/// Where one sample lands: computed once, recordable into several
/// sketches (cumulative + window) without re-classifying.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Invalid,
    Underflow,
    Overflow,
    /// Offset into `buckets`, already rebased by `IDX_MIN`.
    Bucket(usize),
}

impl Slot {
    #[inline]
    fn classify(v: f64) -> Slot {
        if v.is_nan() {
            Slot::Invalid
        } else if v <= UNDERFLOW_EDGE {
            // Zero, negatives (upstream clamps, but be total), tiny.
            Slot::Underflow
        } else if v > OVERFLOW_EDGE {
            Slot::Overflow
        } else {
            let i = bucket_index(v).clamp(IDX_MIN, IDX_MAX);
            Slot::Bucket((i - IDX_MIN) as usize)
        }
    }

    /// `(lo, hi]` bounds such that `lo < v && v <= hi` iff `v` lands in
    /// this slot — the two-compare membership test `record_runs` uses to
    /// extend a run without re-classifying. NaN fails every test
    /// (including `Invalid`'s, whose bounds are NaN), which safely
    /// forces a re-classify.
    #[inline]
    fn range(self) -> (f64, f64) {
        match self {
            Slot::Invalid => (f64::NAN, f64::NAN),
            Slot::Underflow => (f64::NEG_INFINITY, UNDERFLOW_EDGE),
            Slot::Overflow => (OVERFLOW_EDGE, f64::INFINITY),
            Slot::Bucket(k) => {
                let i = IDX_MIN + k as i64;
                (edge(i - 1), edge(i))
            }
        }
    }
}

/// Sub-octave edges `2^(k/8)` for `k = 0..=7` — the thresholds a
/// mantissa in `[1, 2)` is compared against to find its bucket within
/// the octave.
const SUB_EDGES: [f64; 8] = [
    1.0,
    1.090_507_732_665_257_7,  // 2^(1/8)
    1.189_207_115_002_721,    // 2^(2/8)
    1.296_839_554_651_009_6,  // 2^(3/8)
    std::f64::consts::SQRT_2, // 2^(4/8)
    1.542_210_825_407_940_7,  // 2^(5/8)
    1.681_792_830_507_429,    // 2^(6/8)
    1.834_008_086_409_342_4,  // 2^(7/8)
];

/// Bucket index `ceil(8·log2(v))` for a positive, finite, **normal**
/// `v` (the record path only calls this between the under/overflow
/// edges, both far inside normal range), computed from the float's bits:
/// the exponent gives the octave, eight branchless mantissa compares
/// give the sub-octave — no libm call on the per-request hot path. Exact
/// by construction: the mantissa is compared against the correctly
/// rounded `2^(k/8)` edges, with ties (a sample exactly on an edge)
/// landing in the lower bucket, matching the `(lo, hi]` bucket contract.
#[inline]
fn bucket_index(v: f64) -> i64 {
    let bits = v.to_bits();
    let octave = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let mut k = 0i64;
    for e in SUB_EDGES {
        k += (e < mantissa) as i64;
    }
    8 * octave + k
}

/// Classify each sample and hand `(slot, run length)` pairs to `sink`,
/// merging adjacent equal slots — the amortization behind
/// [`LogSketch::record_all`] / [`WindowedSketch::record_all`].
#[inline]
fn record_runs(vs: &[f64], mut sink: impl FnMut(Slot, u64)) {
    let mut idx = 0;
    while idx < vs.len() {
        let slot = Slot::classify(vs[idx]);
        let (lo, hi) = slot.range();
        let start = idx;
        idx += 1;
        // Extend the run with the slot's own `(lo, hi]` test: two f64
        // compares per sample instead of a full classify.
        while idx < vs.len() && lo < vs[idx] && vs[idx] <= hi {
            idx += 1;
        }
        sink(slot, (idx - start) as u64);
    }
}

/// A fixed-geometry log-spaced histogram of non-negative seconds.
#[derive(Debug)]
pub struct LogSketch {
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    invalid: AtomicU64,
}

impl Default for LogSketch {
    fn default() -> Self {
        LogSketch {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
        }
    }
}

impl LogSketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (seconds). Lock-free; NaN counts as `invalid`
    /// and is excluded from quantiles (unlike the exact recorder, whose
    /// NaNs inflate the tail — documented divergence).
    pub fn record(&self, v: f64) {
        self.record_slot(Slot::classify(v));
    }

    #[inline]
    fn record_slot(&self, slot: Slot) {
        self.add_slot(slot, 1);
    }

    #[inline]
    fn add_slot(&self, slot: Slot, n: u64) {
        match slot {
            Slot::Invalid => self.invalid.fetch_add(n, Relaxed),
            Slot::Underflow => self.underflow.fetch_add(n, Relaxed),
            Slot::Overflow => self.overflow.fetch_add(n, Relaxed),
            Slot::Bucket(k) => self.buckets[k].fetch_add(n, Relaxed),
        };
    }

    /// Record a slice of samples in one pass. Samples are classified
    /// locally and each *run* of equal buckets lands as a single atomic
    /// add — for batch-sorted inputs (an engine flush's latencies are
    /// monotone within the batch) the RMW count collapses from one per
    /// sample to one per bucket spanned.
    pub fn record_all(&self, vs: &[f64]) {
        record_runs(vs, |slot, n| self.add_slot(slot, n));
    }

    /// Bucket-wise add of `other` into `self` — commutative, so any
    /// merge order over the same multiset of samples yields identical
    /// contents.
    pub fn merge(&self, other: &LogSketch) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let n = src.load(Relaxed);
            if n > 0 {
                dst.fetch_add(n, Relaxed);
            }
        }
        self.underflow
            .fetch_add(other.underflow.load(Relaxed), Relaxed);
        self.overflow
            .fetch_add(other.overflow.load(Relaxed), Relaxed);
        self.invalid.fetch_add(other.invalid.load(Relaxed), Relaxed);
    }

    /// Reset to the contents of `other` (single-writer window rotation).
    pub(crate) fn reset_from(&self, other: &LogSketch) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            dst.store(src.load(Relaxed), Relaxed);
        }
        self.underflow.store(other.underflow.load(Relaxed), Relaxed);
        self.overflow.store(other.overflow.load(Relaxed), Relaxed);
        self.invalid.store(other.invalid.load(Relaxed), Relaxed);
    }

    pub(crate) fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.underflow.store(0, Relaxed);
        self.overflow.store(0, Relaxed);
        self.invalid.store(0, Relaxed);
    }

    /// Sparse point-in-time copy of the contents.
    pub fn snapshot(&self) -> SketchSnapshot {
        let mut counts = Vec::new();
        let mut total = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                counts.push((IDX_MIN + k as i64, n));
                total += n;
            }
        }
        let underflow = self.underflow.load(Relaxed);
        let overflow = self.overflow.load(Relaxed);
        SketchSnapshot {
            counts,
            underflow,
            overflow,
            invalid: self.invalid.load(Relaxed),
            total: total + underflow + overflow,
        }
    }

    /// Quantile estimate (see module docs for the error contract).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// Samples recorded (excluding `invalid`).
    pub fn count(&self) -> u64 {
        self.snapshot().total
    }
}

/// Point-in-time sketch contents: sparse `(bucket index, count)` pairs
/// plus the out-of-range counts. Comparable, serializable, mergeable —
/// the unit the determinism tests pin bit-identical across thread
/// counts.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SketchSnapshot {
    pub counts: Vec<(i64, u64)>,
    pub underflow: u64,
    pub overflow: u64,
    pub invalid: u64,
    pub total: u64,
}

impl SketchSnapshot {
    /// Merge with another snapshot (bucket-wise add).
    pub fn merged(&self, other: &SketchSnapshot) -> SketchSnapshot {
        let mut map: std::collections::BTreeMap<i64, u64> = self.counts.iter().copied().collect();
        for &(i, n) in &other.counts {
            *map.entry(i).or_insert(0) += n;
        }
        SketchSnapshot {
            counts: map.into_iter().collect(),
            underflow: self.underflow + other.underflow,
            overflow: self.overflow + other.overflow,
            invalid: self.invalid + other.invalid,
            total: self.total + other.total,
        }
    }

    /// Quantile estimate at the same floor-index rank as
    /// `summarize_sorted`: the upper edge of the bucket containing the
    /// `floor(q·(n−1))`-th smallest sample. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).floor() as u64;
        let mut cum = self.underflow;
        if cum > target {
            return Some(0.0);
        }
        for &(i, n) in &self.counts {
            cum += n;
            if cum > target {
                return Some(edge(i));
            }
        }
        Some(edge(IDX_MAX))
    }

    /// Bucket **index** holding the `floor(q·(n−1))`-th sample: the
    /// resolution the health plane's drift score works in (shift counted
    /// in buckets, i.e. multiples of γ, rather than seconds). Underflow
    /// reports `IDX_MIN − 1`, a rank past every retained bucket reports
    /// `IDX_MAX + 1`. `None` when empty.
    pub fn quantile_index(&self, q: f64) -> Option<i64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).floor() as u64;
        let mut cum = self.underflow;
        if cum > target {
            return Some(IDX_MIN - 1);
        }
        for &(i, n) in &self.counts {
            cum += n;
            if cum > target {
                return Some(i);
            }
        }
        Some(IDX_MAX + 1)
    }

    /// Samples strictly attributable above `threshold_s`: buckets whose
    /// **lower** edge clears the threshold, plus overflow (≥ 1024 s)
    /// when the threshold is below the overflow edge, plus underflow
    /// only for negative thresholds. Conservative by up to one bucket
    /// (γ relative) — a sample inside the threshold's own bucket is not
    /// counted. Non-finite thresholds count nothing.
    pub fn count_over(&self, threshold_s: f64) -> u64 {
        if !threshold_s.is_finite() {
            return 0;
        }
        let mut over = 0u64;
        for &(i, n) in &self.counts {
            if edge(i - 1) > threshold_s {
                over += n;
            }
        }
        if threshold_s < OVERFLOW_EDGE {
            over += self.overflow;
        }
        if threshold_s < 0.0 {
            over += self.underflow;
        }
        over
    }

    /// Bucket-wise `self − earlier`, saturating at zero: the per-window
    /// delta between two snapshots of one monotone (cumulative) sketch.
    /// `total` is recomputed from the surviving counts.
    pub fn saturating_delta(&self, earlier: &SketchSnapshot) -> SketchSnapshot {
        let prev: std::collections::BTreeMap<i64, u64> = earlier.counts.iter().copied().collect();
        let mut counts = Vec::new();
        let mut total = 0u64;
        for &(i, n) in &self.counts {
            let d = n.saturating_sub(prev.get(&i).copied().unwrap_or(0));
            if d > 0 {
                counts.push((i, d));
                total += d;
            }
        }
        let underflow = self.underflow.saturating_sub(earlier.underflow);
        let overflow = self.overflow.saturating_sub(earlier.overflow);
        SketchSnapshot {
            counts,
            underflow,
            overflow,
            invalid: self.invalid.saturating_sub(earlier.invalid),
            total: total + underflow + overflow,
        }
    }

    /// Upper-bound estimate of the summed duration mass (seconds) in the
    /// snapshot: each bucket contributes `count × upper edge`, overflow
    /// contributes at the overflow edge, underflow contributes nothing.
    /// The health plane ranks stages by this when attributing a tail.
    pub fn mass_s(&self) -> f64 {
        let mut mass = 0.0;
        for &(i, n) in &self.counts {
            mass += n as f64 * edge(i);
        }
        mass + self.overflow as f64 * OVERFLOW_EDGE
    }
}

/// A [`LogSketch`] tripled into cumulative + rotating time windows, so a
/// scraper can read both all-of-run and recent percentiles mid-run.
/// Window rotation keys off the **stamp** passed to [`Self::record`]
/// (virtual or real seconds), so rotation is a pure function of the
/// sample schedule. Recording is single-writer per sketch (the engine's
/// batcher thread); reads may race a rotation and see a freshly cleared
/// current window — the `window_quantile` read merges current + previous
/// to smooth that seam.
#[derive(Debug)]
pub struct WindowedSketch {
    /// `1 / window_s` when windowing is active, else 0.0 — the record
    /// path multiplies instead of dividing.
    inv_window_s: f64,
    cumulative: LogSketch,
    cur: LogSketch,
    prev: LogSketch,
    cur_window: AtomicI64,
}

impl WindowedSketch {
    pub fn new(window_s: f64) -> Self {
        WindowedSketch {
            inv_window_s: if window_s.is_finite() && window_s > 0.0 {
                window_s.recip()
            } else {
                0.0
            },
            cumulative: LogSketch::new(),
            cur: LogSketch::new(),
            prev: LogSketch::new(),
            cur_window: AtomicI64::new(0),
        }
    }

    /// Rotate the current window if `stamp_s` has crossed a boundary.
    #[inline]
    fn rotate_to(&self, stamp_s: f64) {
        let w = if self.inv_window_s > 0.0 && stamp_s.is_finite() {
            (stamp_s * self.inv_window_s).floor() as i64
        } else {
            0
        };
        if w != self.cur_window.load(Relaxed) {
            self.prev.reset_from(&self.cur);
            self.cur.clear();
            self.cur_window.store(w, Relaxed);
        }
    }

    /// Record `v` stamped at `stamp_s`. Single writer per sketch.
    pub fn record(&self, stamp_s: f64, v: f64) {
        self.rotate_to(stamp_s);
        let slot = Slot::classify(v);
        self.cumulative.record_slot(slot);
        self.cur.record_slot(slot);
    }

    /// Record a batch of samples sharing one window stamp (an engine
    /// flush's close): one rotation check, then run-length classified
    /// adds into cumulative + current (see [`LogSketch::record_all`]).
    /// Keying every sample off the batch stamp can shift a sample by at
    /// most one flush interval at a window seam — windows are seconds,
    /// flushes sub-millisecond, and under a virtual clock the per-batch
    /// and per-sample stamps coincide exactly.
    pub fn record_all(&self, stamp_s: f64, vs: &[f64]) {
        self.rotate_to(stamp_s);
        record_runs(vs, |slot, n| {
            self.cumulative.add_slot(slot, n);
            self.cur.add_slot(slot, n);
        });
    }

    /// All-of-run sketch.
    pub fn cumulative(&self) -> &LogSketch {
        &self.cumulative
    }

    /// All-of-run quantile estimate.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.cumulative.quantile(q)
    }

    /// Recent quantile estimate over the current + previous windows.
    pub fn window_quantile(&self, q: f64) -> Option<f64> {
        self.cur
            .snapshot()
            .merged(&self.prev.snapshot())
            .quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact floor-index percentile, the `summarize_sorted` rule.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)]
    }

    #[test]
    fn quantile_brackets_the_exact_order_statistic() {
        let sketch = LogSketch::new();
        let mut xs: Vec<f64> = (1..=1000).map(|k| 1e-5 * k as f64 * 1.37).collect();
        for &x in &xs {
            sketch.record(x);
        }
        xs.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&xs, q);
            let est = sketch.quantile(q).unwrap();
            assert!(
                est >= exact && est <= exact * GAMMA,
                "q={q}: est {est} not in [{exact}, {}]",
                exact * GAMMA
            );
        }
    }

    #[test]
    fn merge_is_order_independent_bitwise() {
        let parts: Vec<LogSketch> = (0..4).map(|_| LogSketch::new()).collect();
        for (k, part) in parts.iter().enumerate() {
            for j in 0..50 {
                part.record(1e-4 * ((k * 50 + j) as f64 + 1.0));
            }
        }
        let forward = LogSketch::new();
        for p in &parts {
            forward.merge(p);
        }
        let backward = LogSketch::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
        assert_eq!(forward.count(), 200);
    }

    #[test]
    fn out_of_range_and_nan_are_bucketed_not_lost() {
        let sketch = LogSketch::new();
        sketch.record(0.0);
        sketch.record(-1.0);
        sketch.record(1e-9);
        sketch.record(5000.0);
        sketch.record(f64::INFINITY);
        sketch.record(f64::NAN);
        let snap = sketch.snapshot();
        assert_eq!(snap.underflow, 3);
        assert_eq!(snap.overflow, 2);
        assert_eq!(snap.invalid, 1);
        assert_eq!(snap.total, 5, "invalid excluded from total");
        // All-underflow quantile reports 0.0; overflow tail saturates.
        assert_eq!(sketch.quantile(0.0).unwrap(), 0.0);
        assert_eq!(sketch.quantile(1.0).unwrap(), edge(IDX_MAX));
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        assert_eq!(LogSketch::new().quantile(0.5), None);
        assert_eq!(LogSketch::new().count(), 0);
    }

    #[test]
    fn snapshot_round_trips_through_the_serde_shim() {
        let sketch = LogSketch::new();
        for k in 1..=100 {
            sketch.record(1e-3 * k as f64);
        }
        sketch.record(f64::NAN);
        let snap = sketch.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SketchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn windows_rotate_on_the_stamp_and_cumulative_keeps_everything() {
        let w = WindowedSketch::new(1.0);
        for k in 0..100 {
            w.record(0.5, 1e-3 * (k + 1) as f64); // window 0: 1ms..100ms
        }
        for k in 0..100 {
            w.record(1.5, 1.0 + 1e-3 * k as f64); // window 1: ~1s
        }
        for _ in 0..100 {
            w.record(2.5, 10.0); // window 2: 10s
        }
        // Cumulative p50 sits in the ~1s region (rank 149 of 0..=299).
        let cum = w.quantile(0.5).unwrap();
        assert!((1.0..=1.2 * GAMMA).contains(&cum), "cumulative p50 {cum}");
        // Recent (windows 1+2 after rotation... window 0 aged out) median
        // covers only the 1s/10s samples.
        let recent = w.window_quantile(0.5).unwrap();
        assert!(recent >= 1.0, "recent p50 {recent} must not see window 0");
        let recent_p99 = w.window_quantile(0.99).unwrap();
        assert!(
            (10.0..=10.0 * GAMMA).contains(&recent_p99),
            "recent p99 {recent_p99}"
        );
    }

    /// The branchless bit-twiddled bucket index must agree with the
    /// reference `ceil(8·log2(v))` everywhere in range — dense sweep
    /// plus every edge and its representable neighbours (at an exact
    /// edge the bit path is authoritative: it compares the mantissa
    /// against the correctly rounded `2^(k/8)`, where libm's log2 can
    /// round either way).
    #[test]
    fn bucket_index_matches_the_log_reference() {
        let reference = |v: f64| (BUCKETS_PER_OCTAVE * v.log2()).ceil() as i64;
        let mut v = edge(IDX_MIN - 1) * 1.0001;
        while v <= edge(IDX_MAX) {
            let got = bucket_index(v);
            let want = reference(v);
            assert!(
                (got - want).abs() <= 1,
                "bucket index diverged at {v}: bit path {got}, log2 path {want}"
            );
            // Off-by-one is only legal exactly on an edge, where the
            // (lo, hi] contract puts the sample in the lower bucket.
            if got != want {
                assert_eq!(got + 1, want);
                assert!((edge(got) - v).abs() <= v * 1e-15, "not an edge: {v}");
            }
            v *= 1.000_37;
        }
        for i in IDX_MIN..=IDX_MAX {
            let e = edge(i);
            assert_eq!(bucket_index(e), i, "edge {i} must land in its own bucket");
            let above = f64::from_bits(e.to_bits() + 1);
            assert_eq!(bucket_index(above), i + 1, "just above edge {i}");
        }
    }

    #[test]
    fn precomputed_range_edges_match_the_bucket_geometry() {
        assert_eq!(UNDERFLOW_EDGE, edge(IDX_MIN - 1));
        assert_eq!(OVERFLOW_EDGE, edge(IDX_MAX));
    }

    /// The amortized batch path must produce the identical histogram to
    /// per-sample recording — exercised with exact edges, their ulp
    /// neighbours, NaNs, out-of-range values, runs, and non-monotone
    /// order (the run optimization must not *require* sorted input).
    #[test]
    fn record_all_matches_per_sample_recording() {
        let mut vs = vec![
            0.0,
            -3.0,
            f64::NAN,
            f64::NAN,
            1e-9,
            5000.0,
            f64::INFINITY,
            0.2,
            0.2,
            0.2,
            0.19,
            1.0,
        ];
        for i in [IDX_MIN, -5, 0, 7, IDX_MAX] {
            let e = edge(i);
            vs.push(e);
            vs.push(e);
            vs.push(f64::from_bits(e.to_bits() + 1));
        }
        for k in 0..200 {
            vs.push(0.3 - k as f64 * 1e-4); // monotone sweep across buckets
        }
        let batched = LogSketch::new();
        batched.record_all(&vs);
        let singles = LogSketch::new();
        for &v in &vs {
            singles.record(v);
        }
        assert_eq!(batched.snapshot(), singles.snapshot());

        let windowed = WindowedSketch::new(1.0);
        windowed.record_all(7.25, &vs);
        assert_eq!(windowed.cumulative().snapshot(), singles.snapshot());
        assert_eq!(windowed.cur.snapshot(), singles.snapshot());
    }

    #[test]
    fn bucket_edges_bound_single_samples() {
        let sketch = LogSketch::new();
        for v in [1.19e-7, 1e-6, 0.003, 1.0, 42.0, 1023.9] {
            sketch.clear();
            sketch.record(v);
            let est = sketch.quantile(0.5).unwrap();
            assert!(
                est >= v && est <= v * GAMMA,
                "sample {v}: estimate {est} outside [v, v·γ]"
            );
        }
    }

    #[test]
    fn snapshot_delta_recovers_a_window_and_saturates() {
        let sketch = LogSketch::new();
        sketch.record(0.01);
        sketch.record(f64::NAN);
        let before = sketch.snapshot();
        sketch.record(0.01);
        sketch.record(0.5);
        sketch.record(5000.0);
        sketch.record(-1.0);
        let delta = sketch.snapshot().saturating_delta(&before);
        assert_eq!(delta.total, 4);
        assert_eq!(delta.overflow, 1);
        assert_eq!(delta.underflow, 1);
        assert_eq!(delta.invalid, 0);
        assert_eq!(delta.counts.iter().map(|&(_, n)| n).sum::<u64>(), 2);
        // Deltas against a *later* snapshot saturate instead of wrapping.
        let wrapped = before.saturating_delta(&sketch.snapshot());
        assert_eq!(wrapped.total, 0);
        assert!(wrapped.counts.is_empty());
    }

    #[test]
    fn count_over_splits_on_the_budget_edge() {
        let sketch = LogSketch::new();
        for _ in 0..10 {
            sketch.record(0.001);
        }
        for _ in 0..4 {
            sketch.record(1.0);
        }
        sketch.record(5000.0);
        sketch.record(0.0);
        let snap = sketch.snapshot();
        // Budget between the clusters: the 1s samples + overflow clear it.
        assert_eq!(snap.count_over(0.1), 5);
        // Budget above everything finite in range: only overflow remains.
        assert_eq!(snap.count_over(1023.0), 1);
        // Nothing is "over" an infinite or invalid budget.
        assert_eq!(snap.count_over(f64::INFINITY), 0);
        assert_eq!(snap.count_over(f64::NAN), 0);
        // A negative budget counts every sample, underflow included.
        assert_eq!(snap.count_over(-1.0), snap.total);
    }

    #[test]
    fn quantile_index_tracks_the_value_quantile() {
        let sketch = LogSketch::new();
        for k in 1..=100 {
            sketch.record(1e-3 * k as f64);
        }
        let snap = sketch.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let i = snap.quantile_index(q).unwrap();
            assert_eq!(snap.quantile(q).unwrap(), bucket_edge(i));
        }
        let under = LogSketch::new();
        under.record(0.0);
        assert_eq!(under.snapshot().quantile_index(0.5), Some(IDX_MIN - 1));
        let over = LogSketch::new();
        over.record(f64::INFINITY);
        assert_eq!(over.snapshot().quantile_index(0.5), Some(IDX_MAX + 1));
        assert_eq!(SketchSnapshot::default().quantile_index(0.5), None);
    }

    #[test]
    fn mass_upper_bounds_the_recorded_sum() {
        let sketch = LogSketch::new();
        let mut sum = 0.0;
        for k in 1..=500 {
            let v = 1e-4 * k as f64 * 2.13;
            sketch.record(v);
            sum += v;
        }
        let mass = sketch.snapshot().mass_s();
        assert!(mass >= sum, "mass {mass} must bound the true sum {sum}");
        assert!(mass <= sum * GAMMA, "mass {mass} over-estimates past γ");
    }

    /// Satellite: `LogSketch::merge` algebra under proptest — the merged
    /// histogram is a commutative monoid (associative, commutative,
    /// empty-sketch identity) and merging can only move quantiles
    /// monotonically toward the union's, never invent mass. Includes
    /// empty and single-bucket operands via the `0` sample-count case.
    mod merge_algebra {
        use super::*;
        use proptest::prelude::*;

        /// Decode a proptest-chosen integer into a sample: mostly
        /// in-range log-uniform magnitudes, with underflow, overflow,
        /// and invalid classes mixed in.
        fn decode(code: u64) -> f64 {
            match code % 16 {
                0 => 0.0,
                1 => -2.5,
                2 => 1e-9,
                3 => 4096.0,
                4 => f64::INFINITY,
                5 => f64::NAN,
                _ => ((code / 16) as f64 / 62_500.0 * 32.9 - 23.0).exp2(),
            }
        }

        /// Build a sketch from the first `n` decoded codes — `n = 0`
        /// yields the empty sketch, `n = 1` a single-bucket one.
        fn sketch_of(codes: &[u64], n: usize) -> LogSketch {
            let samples: Vec<f64> = codes[..n.min(codes.len())]
                .iter()
                .map(|&c| decode(c))
                .collect();
            let s = LogSketch::new();
            s.record_all(&samples);
            s
        }

        proptest! {
            #[test]
            fn merge_is_associative_and_commutative(
                a in collection::vec(0u64..1_000_000, 24),
                b in collection::vec(0u64..1_000_000, 24),
                c in collection::vec(0u64..1_000_000, 24),
                na in 0usize..25,
                nb in 0usize..25,
                nc in 0usize..25,
            ) {
                let (sa, sb, sc) = (sketch_of(&a, na), sketch_of(&b, nb), sketch_of(&c, nc));
                // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), built via fresh accumulators.
                let left = LogSketch::new();
                left.merge(&sa);
                left.merge(&sb);
                let lhs = LogSketch::new();
                lhs.merge(&left);
                lhs.merge(&sc);
                let right = LogSketch::new();
                right.merge(&sb);
                right.merge(&sc);
                let rhs = LogSketch::new();
                rhs.merge(&sa);
                rhs.merge(&right);
                prop_assert_eq!(lhs.snapshot(), rhs.snapshot());
                // Commutativity, snapshot-level and sketch-level.
                let ab = LogSketch::new();
                ab.merge(&sa);
                ab.merge(&sb);
                let ba = LogSketch::new();
                ba.merge(&sb);
                ba.merge(&sa);
                prop_assert_eq!(ab.snapshot(), ba.snapshot());
                prop_assert_eq!(
                    sa.snapshot().merged(&sb.snapshot()),
                    sb.snapshot().merged(&sa.snapshot())
                );
            }

            #[test]
            fn empty_sketch_is_the_merge_identity(
                a in collection::vec(0u64..1_000_000, 24),
                na in 0usize..25,
            ) {
                let sa = sketch_of(&a, na);
                let merged = LogSketch::new();
                merged.merge(&sa);
                merged.merge(&LogSketch::new());
                prop_assert_eq!(merged.snapshot(), sa.snapshot());
                prop_assert_eq!(
                    sa.snapshot().merged(&SketchSnapshot::default()),
                    sa.snapshot()
                );
            }

            #[test]
            fn merged_quantiles_stay_bracketed_and_monotone(
                a in collection::vec(0u64..1_000_000, 24),
                b in collection::vec(0u64..1_000_000, 24),
                na in 0usize..25,
                nb in 0usize..25,
            ) {
                let (sa, sb) = (sketch_of(&a, na), sketch_of(&b, nb));
                let union = sa.snapshot().merged(&sb.snapshot());
                prop_assert_eq!(union.total, sa.count() + sb.count());
                // Quantiles are monotone in q after a merge…
                let mut prev = f64::NEG_INFINITY;
                for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                    if let Some(v) = union.quantile(q) {
                        prop_assert!(v >= prev, "q={} regressed: {} < {}", q, v, prev);
                        prev = v;
                    }
                }
                // …and bracketed by the operands' extremes: the union's
                // min/max quantile cannot escape [min of mins, max of maxes].
                if union.total > 0 && sa.count() > 0 && sb.count() > 0 {
                    let lo = sa
                        .quantile(0.0)
                        .unwrap()
                        .min(sb.quantile(0.0).unwrap());
                    let hi = sa
                        .quantile(1.0)
                        .unwrap()
                        .max(sb.quantile(1.0).unwrap());
                    prop_assert!(union.quantile(0.0).unwrap() >= lo);
                    prop_assert!(union.quantile(1.0).unwrap() <= hi);
                }
            }
        }
    }
}
