//! The flight recorder: a bounded ring of structured events with
//! per-scope sequence numbers — what happened, in order, dumpable on
//! demand (or from a panic handler) without grepping logs.
//!
//! Writes are single-writer per scope on the deterministic paths (the
//! shard's batcher thread; the driver thread for control scopes), so
//! under a virtual clock the event stream is a pure function of the
//! submission/swap schedule — the determinism tests digest it
//! bit-identical across thread counts. The ring drops the **oldest**
//! events when full and counts the drops, so the recorder's memory is
//! bounded no matter how long the run.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Mutex;

/// What a flight-recorder entry describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A micro-batch was admitted; `queued` requests went into it.
    /// Stamped at the batch's open time, recorded at flush (when the
    /// batch's composition is deterministic).
    Admission { queued: usize },
    /// A batch flushed through the kernel.
    Flush {
        rows: usize,
        epoch: u64,
        width: usize,
    },
    /// A model hot-swap was published to the registry.
    HotSwap {
        epoch: u64,
        trees: usize,
        cost_s: f64,
    },
    /// A shadow audit concluded.
    AuditVerdict {
        epoch: u64,
        mismatches: u64,
        promoted: bool,
    },
    /// Shutdown drained queued requests.
    Drain { rows: usize },
}

impl EventKind {
    /// Short tag for trace export and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admission { .. } => "admission",
            EventKind::Flush { .. } => "flush",
            EventKind::HotSwap { .. } => "hot_swap",
            EventKind::AuditVerdict { .. } => "audit_verdict",
            EventKind::Drain { .. } => "drain",
        }
    }
}

/// One recorded event: scope-local sequence number, stamp, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    pub seq: u64,
    pub time_s: f64,
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct RecorderState {
    ring: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// Append an event, evicting the oldest entry when full.
    pub fn record(&self, time_s: f64, kind: EventKind) {
        let mut s = self.state.lock().unwrap();
        let seq = s.next_seq;
        s.next_seq += 1;
        if s.ring.len() == self.capacity {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(FlightEvent { seq, time_s, kind });
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.state.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Events recorded over the recorder's lifetime (including dropped).
    pub fn recorded(&self) -> u64 {
        self.state.lock().unwrap().next_seq
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// FNV-1a digest of the retained event stream (JSON-rendered), the
    /// value the determinism suites compare across thread counts.
    pub fn digest(&self) -> u64 {
        crate::fnv1a(
            serde_json::to_string(&self.events())
                .expect("flight events serialize infallibly")
                .as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for k in 0..5u64 {
            r.record(k as f64, EventKind::Drain { rows: k as usize });
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted, sequence numbers survive"
        );
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn identical_streams_have_identical_digests() {
        let build = || {
            let r = FlightRecorder::new(64);
            r.record(0.5, EventKind::Admission { queued: 3 });
            r.record(
                1.0,
                EventKind::Flush {
                    rows: 4,
                    epoch: 1,
                    width: 2,
                },
            );
            r.record(
                1.0,
                EventKind::HotSwap {
                    epoch: 2,
                    trees: 3,
                    cost_s: 0.0,
                },
            );
            r.digest()
        };
        assert_eq!(build(), build());
        let other = FlightRecorder::new(64);
        other.record(0.5, EventKind::Admission { queued: 4 });
        assert_ne!(build(), other.digest());
    }

    #[test]
    fn events_round_trip_through_the_serde_shim() {
        let r = FlightRecorder::new(8);
        r.record(
            2.5,
            EventKind::AuditVerdict {
                epoch: 7,
                mismatches: 0,
                promoted: true,
            },
        );
        let json = serde_json::to_string(&r.events()).unwrap();
        let back: Vec<FlightEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r.events());
    }
}
