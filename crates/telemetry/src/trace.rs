//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto's
//! legacy JSON format): render every registered scope's span timeline
//! and flight events as one `{"traceEvents": [...]}` document.
//!
//! Mapping: each **scenario** becomes a trace process (`pid` in order
//! of first appearance, named via `process_name` metadata), each shard
//! a thread (`tid` = shard + 1; a scenario's control scope is `tid` 0,
//! named "control"). Spans become complete events (`ph: "X"`, `ts`/`dur`
//! in microseconds), flight events become thread-scoped instants
//! (`ph: "i"`, `s: "t"`) carrying their structured payload in `args`.

use crate::{ShardTelemetry, CONTROL_SHARD};
use serde::{Serialize, Value};
use std::sync::Arc;

const US_PER_S: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

fn tid_of(scope: &ShardTelemetry) -> f64 {
    if scope.shard() == CONTROL_SHARD {
        0.0
    } else {
        (scope.shard() + 1) as f64
    }
}

/// Build the trace document for a set of scopes (normally
/// [`crate::Telemetry::scopes`], in registration order).
pub fn chrome_trace(scopes: &[Arc<ShardTelemetry>]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    let mut pids: Vec<String> = Vec::new();
    for scope in scopes {
        let pid = match pids.iter().position(|k| k == scope.scenario()) {
            Some(p) => p as f64,
            None => {
                pids.push(scope.scenario().to_string());
                let p = (pids.len() - 1) as f64;
                events.push(obj(vec![
                    ("name", s("process_name")),
                    ("ph", s("M")),
                    ("pid", num(p)),
                    ("tid", num(0.0)),
                    ("args", obj(vec![("name", s(scope.scenario()))])),
                ]));
                p
            }
        };
        let tid = tid_of(scope);
        let thread_name = if scope.shard() == CONTROL_SHARD {
            format!("control ({}, dc{})", scope.tenant(), scope.deadline_class())
        } else {
            format!(
                "shard{} ({}, dc{})",
                scope.shard(),
                scope.tenant(),
                scope.deadline_class()
            )
        };
        events.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", num(pid)),
            ("tid", num(tid)),
            (
                "args",
                obj(vec![
                    ("name", s(&thread_name)),
                    ("tenant", s(scope.tenant())),
                    ("deadline_class", num(scope.deadline_class() as f64)),
                ]),
            ),
        ]));
        for span in scope.spans.records() {
            events.push(obj(vec![
                ("name", s(span.stage.name())),
                ("ph", s("X")),
                ("ts", num(span.start_s * US_PER_S)),
                ("dur", num(span.dur_s * US_PER_S)),
                ("pid", num(pid)),
                ("tid", num(tid)),
                (
                    "args",
                    obj(vec![
                        ("rows", num(span.rows as f64)),
                        ("epoch", num(span.epoch as f64)),
                    ]),
                ),
            ]));
        }
        for event in scope.events.events() {
            events.push(obj(vec![
                ("name", s(event.kind.name())),
                ("ph", s("i")),
                ("s", s("t")),
                ("ts", num(event.time_s * US_PER_S)),
                ("pid", num(pid)),
                ("tid", num(tid)),
                (
                    "args",
                    obj(vec![
                        ("seq", num(event.seq as f64)),
                        ("event", event.kind.to_value()),
                    ]),
                ),
            ]));
        }
        // Ring-wrap visibility: a scope whose recorder or span log
        // overflowed gets an instant mark carrying the drop counts, so
        // a saturated timeline reads as truncated, not complete.
        let event_drops = scope.events.dropped();
        let span_drops = scope.spans.dropped();
        if event_drops > 0 || span_drops > 0 {
            events.push(obj(vec![
                ("name", s("recorder_drops")),
                ("ph", s("i")),
                ("s", s("t")),
                ("ts", num(0.0)),
                ("pid", num(pid)),
                ("tid", num(tid)),
                (
                    "args",
                    obj(vec![
                        ("events_dropped", num(event_drops as f64)),
                        ("events_recorded", num(scope.events.recorded() as f64)),
                        ("spans_dropped", num(span_drops as f64)),
                    ]),
                ),
            ]));
        }
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushStamps, Telemetry};

    fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
        v.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
            .unwrap_or_else(|| panic!("missing field {key}"))
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let t = Telemetry::enabled();
        let shard = t.register("abr", 0, "gold").unwrap();
        let control = t.register("abr", CONTROL_SHARD, "gold").unwrap();
        shard.on_batch_open();
        shard.record_flush(&FlushStamps {
            open_s: 1.0,
            kernel_start_s: 1.5,
            kernel_end_s: 1.75,
            close_s: 2.0,
            rows: 2,
            epoch: 1,
            width: 1,
        });
        control.on_hot_swap(1.2, 2, 3, 0.1);

        // Round-trip through the JSON printer/parser: the document must
        // survive serialization, the shape a trace viewer loads.
        let json = t.chrome_trace_json();
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = field(&doc, "traceEvents").as_array().unwrap();
        // 2 metadata pairs (process + 2 threads = 3), 4 spans, 3 events.
        let phases: Vec<&str> = events
            .iter()
            .map(|e| field(e, "ph").as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 4);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 3);
        for e in events {
            assert!(field(e, "name").as_str().is_some());
            assert!(field(e, "pid").as_f64().unwrap().is_finite());
            assert!(field(e, "tid").as_f64().unwrap().is_finite());
            if field(e, "ph").as_str() == Some("X") {
                assert!(field(e, "ts").as_f64().unwrap() >= 0.0);
                assert!(field(e, "dur").as_f64().unwrap() >= 0.0);
            }
        }
        // The hot-swap span lives on the control thread (tid 0).
        let publish = events
            .iter()
            .find(|e| field(e, "name").as_str() == Some("publish"))
            .expect("publish span exported");
        assert_eq!(field(publish, "tid").as_f64().unwrap(), 0.0);
        // Instant events carry the structured payload.
        let swap = events
            .iter()
            .find(|e| field(e, "name").as_str() == Some("hot_swap"))
            .expect("hot_swap instant exported");
        let args = field(swap, "args");
        let event = field(args, "event");
        let trees = field(field(event, "HotSwap"), "trees").as_f64().unwrap();
        assert_eq!(trees, 3.0);
    }

    #[test]
    fn rows_are_labeled_and_saturated_recorders_surface_drop_marks() {
        let t = Telemetry::with_config(crate::TelemetryConfig {
            span_capacity: 1,
            recorder_capacity: 2,
            ..Default::default()
        });
        let scope = t.register_scope("abr", 0, "gold", 2).unwrap();
        for k in 0..5u64 {
            scope.on_hot_swap(k as f64, k, 1, 0.0);
        }
        let json = t.chrome_trace_json();
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = field(&doc, "traceEvents").as_array().unwrap();
        // Thread metadata names the tenant + deadline class.
        let thread = events
            .iter()
            .find(|e| field(e, "name").as_str() == Some("thread_name"))
            .unwrap();
        let args = field(thread, "args");
        assert_eq!(field(args, "name").as_str(), Some("shard0 (gold, dc2)"));
        assert_eq!(field(args, "deadline_class").as_f64(), Some(2.0));
        // One drop mark carrying both overflow counts.
        let drops = events
            .iter()
            .find(|e| field(e, "name").as_str() == Some("recorder_drops"))
            .expect("overflowed scope exports a drop mark");
        let args = field(drops, "args");
        assert_eq!(field(args, "events_dropped").as_f64(), Some(3.0));
        assert_eq!(field(args, "events_recorded").as_f64(), Some(5.0));
        assert_eq!(field(args, "spans_dropped").as_f64(), Some(4.0));
    }

    #[test]
    fn disabled_plane_exports_an_empty_timeline() {
        let doc = Telemetry::off().chrome_trace();
        let events = field(&doc, "traceEvents").as_array().unwrap();
        assert!(events.is_empty());
    }
}
