//! Hypergraph formulations of the paper's Table-2 scenarios beyond SDN
//! routing (Appendix B): NFV placement, ultra-dense cellular networks, and
//! cluster job scheduling — each with a small reference policy so the
//! formulation can actually be exercised and interpreted.

use metis_hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------
// Appendix B.1 — NFV placement: servers are vertices, NFs are hyperedges;
// I_ev = 1 means an instance of NF e runs on server v.
// ---------------------------------------------------------------------

/// A network-function placement problem.
#[derive(Debug, Clone)]
pub struct NfvProblem {
    /// Per-server capacity.
    pub server_capacity: Vec<f64>,
    /// Per-NF (demand, per-instance load) — instances are spread across
    /// servers until demand is covered.
    pub nf_demand: Vec<f64>,
    pub instance_load: Vec<f64>,
}

/// A placement: for each NF, the set of servers hosting an instance.
pub type NfvPlacement = Vec<Vec<usize>>;

/// Greedy first-fit placement (the interpretable reference policy).
pub fn greedy_placement(p: &NfvProblem) -> NfvPlacement {
    let mut used = vec![0.0; p.server_capacity.len()];
    p.nf_demand
        .iter()
        .zip(p.instance_load.iter())
        .map(|(&demand, &load)| {
            let mut servers = Vec::new();
            let mut covered = 0.0;
            while covered < demand {
                // First server with room that doesn't already host this NF.
                let slot = (0..used.len())
                    .find(|&s| {
                        !servers.contains(&s) && used[s] + load <= p.server_capacity[s] + 1e-12
                    })
                    .unwrap_or_else(|| {
                        panic!("placement infeasible: demand {demand} unsatisfiable")
                    });
                used[slot] += load;
                servers.push(slot);
                covered += load;
            }
            servers
        })
        .collect()
}

/// Formulate a placement as a hypergraph (Figure 21).
pub fn nfv_hypergraph(p: &NfvProblem, placement: &NfvPlacement) -> Hypergraph {
    let mut h = Hypergraph::new(p.server_capacity.len());
    for servers in placement {
        h.add_edge(servers)
            .expect("placement produces valid hyperedges");
    }
    h.set_vertex_features(p.server_capacity.iter().map(|&c| vec![c]).collect())
        .unwrap();
    h.set_edge_features(
        p.nf_demand
            .iter()
            .zip(p.instance_load.iter())
            .map(|(&d, &l)| vec![d, l])
            .collect(),
    )
    .unwrap();
    h.vertex_names = Some(
        (0..p.server_capacity.len())
            .map(|s| format!("server {s}"))
            .collect(),
    );
    h.edge_names = Some((0..p.nf_demand.len()).map(|i| format!("NF{i}")).collect());
    h
}

// ---------------------------------------------------------------------
// Appendix B.2 — ultra-dense cellular: users are vertices, base-station
// coverage areas are hyperedges; I_ev = 1 means station e covers user v.
// ---------------------------------------------------------------------

/// An ultra-dense network instance on the unit square.
#[derive(Debug, Clone)]
pub struct UdnProblem {
    pub user_pos: Vec<(f64, f64)>,
    pub station_pos: Vec<(f64, f64)>,
    pub station_radius: f64,
    pub user_demand: Vec<f64>,
    pub station_capacity: Vec<f64>,
}

impl UdnProblem {
    /// Random instance.
    pub fn random(n_users: usize, n_stations: usize, radius: f64, rng: &mut StdRng) -> Self {
        UdnProblem {
            user_pos: (0..n_users)
                .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
                .collect(),
            station_pos: (0..n_stations)
                .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
                .collect(),
            station_radius: radius,
            user_demand: (0..n_users).map(|_| rng.gen_range(0.1..1.0)).collect(),
            station_capacity: (0..n_stations).map(|_| rng.gen_range(2.0..6.0)).collect(),
        }
    }

    fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
    }

    /// Users covered by each station.
    pub fn coverage(&self) -> Vec<Vec<usize>> {
        self.station_pos
            .iter()
            .map(|&sp| {
                (0..self.user_pos.len())
                    .filter(|&u| Self::dist(self.user_pos[u], sp) <= self.station_radius)
                    .collect()
            })
            .collect()
    }
}

/// Formulate coverage as a hypergraph (Figure 22). Stations covering no
/// user are skipped (hyperedges must be non-empty).
pub fn udn_hypergraph(p: &UdnProblem) -> Hypergraph {
    let mut h = Hypergraph::new(p.user_pos.len());
    let mut names = Vec::new();
    for (s, covered) in p.coverage().iter().enumerate() {
        if !covered.is_empty() {
            h.add_edge(covered).unwrap();
            names.push(format!("station {s}"));
        }
    }
    h.set_vertex_features(p.user_demand.iter().map(|&d| vec![d]).collect())
        .unwrap();
    let feats: Vec<Vec<f64>> = p
        .coverage()
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(s, _)| vec![p.station_capacity[s]])
        .collect();
    h.set_edge_features(feats).unwrap();
    h.edge_names = Some(names);
    h
}

// ---------------------------------------------------------------------
// Appendix B.3 — cluster scheduling: job-DAG nodes are vertices,
// dependencies are hyperedges over {parents..., child}.
// ---------------------------------------------------------------------

/// A job DAG: `deps[i]` lists the parents of node `i`.
#[derive(Debug, Clone)]
pub struct JobDag {
    pub work: Vec<f64>,
    pub deps: Vec<Vec<usize>>,
}

impl JobDag {
    /// Validate acyclicity (parents must have smaller indices — the
    /// builder convention) and return the DAG.
    pub fn new(work: Vec<f64>, deps: Vec<Vec<usize>>) -> Self {
        assert_eq!(work.len(), deps.len());
        for (i, parents) in deps.iter().enumerate() {
            assert!(
                parents.iter().all(|&p| p < i),
                "node {i} has a forward dependency"
            );
        }
        JobDag { work, deps }
    }

    /// Critical-path length to each node (the reference scheduler policy
    /// prioritizes the longest critical path).
    pub fn critical_path(&self) -> Vec<f64> {
        let mut cp = vec![0.0; self.work.len()];
        for i in 0..self.work.len() {
            let parent_max = self.deps[i].iter().map(|&p| cp[p]).fold(0.0, f64::max);
            cp[i] = parent_max + self.work[i];
        }
        cp
    }
}

/// Formulate the DAG as a hypergraph (Figure 23): one hyperedge per
/// dependency group {parents ∪ child}.
pub fn dag_hypergraph(dag: &JobDag) -> Hypergraph {
    let mut h = Hypergraph::new(dag.work.len());
    for (i, parents) in dag.deps.iter().enumerate() {
        if parents.is_empty() {
            continue;
        }
        let mut members = parents.clone();
        members.push(i);
        h.add_edge(&members).unwrap();
    }
    h.set_vertex_features(dag.work.iter().map(|&w| vec![w]).collect())
        .unwrap();
    let n_edges = h.n_edges();
    h.set_edge_features(vec![vec![1.0]; n_edges]).unwrap();
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nfv_greedy_respects_capacity() {
        let p = NfvProblem {
            server_capacity: vec![2.0, 2.0, 2.0, 2.0],
            nf_demand: vec![2.0, 1.0, 3.0],
            instance_load: vec![1.0, 1.0, 1.0],
        };
        let placement = greedy_placement(&p);
        // NF0 needs 2 instances, NF1 one, NF2 three.
        assert_eq!(placement[0].len(), 2);
        assert_eq!(placement[1].len(), 1);
        assert_eq!(placement[2].len(), 3);
        // Capacity: count instances per server.
        let mut used = [0.0; 4];
        for (nf, servers) in placement.iter().enumerate() {
            for &s in servers {
                used[s] += p.instance_load[nf];
            }
        }
        for (s, &u) in used.iter().enumerate() {
            assert!(
                u <= p.server_capacity[s] + 1e-9,
                "server {s} overloaded: {u}"
            );
        }
        let h = nfv_hypergraph(&p, &placement);
        assert_eq!(h.n_edges(), 3);
        assert_eq!(h.n_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn nfv_infeasible_panics() {
        let p = NfvProblem {
            server_capacity: vec![1.0],
            nf_demand: vec![5.0],
            instance_load: vec![1.0],
        };
        let _ = greedy_placement(&p);
    }

    #[test]
    fn udn_coverage_and_hypergraph() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = UdnProblem::random(30, 8, 0.4, &mut rng);
        let cov = p.coverage();
        assert_eq!(cov.len(), 8);
        let h = udn_hypergraph(&p);
        assert_eq!(h.n_vertices(), 30);
        assert!(h.n_edges() <= 8);
        // Every hyperedge's vertices must be inside the radius.
        for e in 0..h.n_edges() {
            assert!(!h.edge_vertices(e).is_empty());
        }
    }

    #[test]
    fn dag_critical_path() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 with works 1, 2, 5, 1.
        let dag = JobDag::new(
            vec![1.0, 2.0, 5.0, 1.0],
            vec![vec![], vec![0], vec![0], vec![1, 2]],
        );
        let cp = dag.critical_path();
        assert_eq!(cp, vec![1.0, 3.0, 6.0, 7.0]);
        let h = dag_hypergraph(&dag);
        assert_eq!(h.n_edges(), 3);
        // The join node's hyperedge covers both parents and itself.
        assert_eq!(h.edge_vertices(2), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "forward dependency")]
    fn dag_rejects_cycles() {
        let _ = JobDag::new(vec![1.0, 1.0], vec![vec![1], vec![]]);
    }
}
