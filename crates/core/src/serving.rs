//! Serve-while-converting: live tree serving and §3.2 conversion sharing
//! one thread budget.
//!
//! The deployment story the paper gestures at (§6.4) and the ROADMAP's
//! north star both need the same shape: a converted tree **keeps serving
//! decisions** while the conversion pipeline retrains behind it, each
//! freshly fitted round hot-swapping into the serving path with zero
//! dropped requests. [`serve_while_converting`] wires the pieces:
//!
//! * the [`crate::ConversionPipeline`] runs as one [`crate::Workload`]
//!   and publishes every round's student tree to a
//!   [`metis_serve::ModelRegistry`] via
//!   [`crate::ConversionPipeline::run_publishing`],
//! * an open-loop traffic schedule ([`metis_serve::ArrivalProcess`])
//!   drives a [`metis_serve::TreeServer`] as a second workload,
//! * both run under one [`crate::WorkloadRunner`] (shared admission
//!   budget); the engine's batches and the pipeline's stages share the
//!   process-wide worker pool under distinct fairness groups.
//!
//! Every response is bit-identical to `DecisionTree::predict` on the
//! epoch it reports — swaps change *which* tree answers, never *how*.

use crate::convert::ConversionResult;
use crate::pipeline::ConversionPipeline;
use crate::workload::{RunnerStats, Workload, WorkloadRunner};
use metis_dt::DecisionTree;
use metis_rl::{Env, Policy, ValueEstimate};
use metis_serve::{
    drive_open_loop, ArrivalProcess, EngineReport, ModelRegistry, Response, ServeConfig, TreeServer,
};
use std::sync::Arc;

/// Everything one serve-while-converting run produces.
#[derive(Debug)]
pub struct ServeWhileConvertOutcome {
    /// The conversion pipeline's final result (identical to a solo run).
    pub conversion: ConversionResult,
    /// The serving engine's lifetime report (latency percentiles, batch
    /// shapes, per-epoch served counts).
    pub serving: EngineReport,
    /// Every response, sorted by request id.
    pub responses: Vec<Response>,
    /// Trees published by the pipeline (one per conversion round).
    pub published_epochs: u64,
    /// Admission-queue statistics of the shared runner.
    pub runner: RunnerStats,
}

enum Lane {
    Converted(Box<ConversionResult>),
    Served(Vec<Response>),
}

/// Run `pipeline` and an open-loop serving lane concurrently over one
/// shared [`WorkloadRunner`] budget. `initial` seeds the registry's
/// epoch 0 (traffic never waits for the first fit); each conversion
/// round's student is published as the next epoch. `features(k)` supplies
/// request `k`'s feature vector; `time_scale` stretches the arrival
/// schedule (0 = submit as fast as possible).
pub fn serve_while_converting<E, T, V>(
    pipeline: &ConversionPipeline<'_, E, T, V>,
    initial: DecisionTree,
    serve_cfg: ServeConfig,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64> + Send,
    time_scale: f64,
) -> ServeWhileConvertOutcome
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    let registry = Arc::new(ModelRegistry::new(initial));
    let server = TreeServer::start(Arc::clone(&registry), serve_cfg);
    let mut handle = server.handle();
    let mut features = features;
    let (results, runner) = WorkloadRunner::new(2).run_detailed(vec![
        Workload::new("convert", {
            let registry = &registry;
            move || {
                Lane::Converted(Box::new(pipeline.run_publishing(|_, student| {
                    registry.publish(student.tree.clone());
                })))
            }
        }),
        Workload::new("serve", move || {
            Lane::Served(drive_open_loop(
                &mut handle,
                arrivals,
                &mut features,
                time_scale,
            ))
        }),
    ]);
    let mut conversion = None;
    let mut responses = Vec::new();
    for result in results {
        match result.value {
            Lane::Converted(c) => conversion = Some(*c),
            Lane::Served(r) => responses = r,
        }
    }
    let serving = server.shutdown();
    ServeWhileConvertOutcome {
        conversion: conversion.expect("conversion workload completed"),
        serving,
        responses,
        published_epochs: registry.swap_count(),
        runner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConversionConfig;
    use metis_rl::env::test_envs::BanditEnv;
    use std::time::Duration;

    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    fn one_hot(k: u64) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[(k % 3) as usize] = 1.0;
        v
    }

    #[test]
    fn traffic_is_served_across_conversion_epochs_with_zero_drops() {
        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(3, 16, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            dagger_rounds: 2,
            ..Default::default()
        };
        let pipeline = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .conversion(cfg)
            .seed(5);
        // Epoch 0: a quick teacher-round fit so serving never waits.
        let seed_states = pipeline.collect_teacher_states(4, 16);
        let initial = pipeline.fit_states(&seed_states, 3, 0).tree;
        let solo = pipeline.run();

        let arrivals = ArrivalProcess::poisson(20_000.0, 400, 9);
        let outcome = serve_while_converting(
            &pipeline,
            initial.clone(),
            ServeConfig {
                max_batch: 32,
                max_delay: Duration::from_micros(300),
                ..Default::default()
            },
            &arrivals,
            one_hot,
            1.0,
        );

        // Conversion is bit-identical to the solo run: serving never
        // perturbs the pipeline.
        assert_eq!(outcome.conversion.policy.tree, solo.policy.tree);
        assert_eq!(outcome.conversion.fidelity_history, solo.fidelity_history);
        // One publish per round (round 0 + 2 DAgger rounds).
        assert_eq!(outcome.published_epochs, 3);
        // Zero drops: every request answered, every answer consistent
        // with the epoch that served it.
        assert_eq!(outcome.responses.len(), 400);
        assert_eq!(outcome.serving.served, 400);
        assert_eq!(outcome.serving.delivery_failures, 0);
        let mut sources = vec![initial];
        // Rebuild the per-round students exactly as run_publishing saw
        // them, via a replay of the solo pipeline.
        pipeline.run_publishing(|_, student| sources.push(student.tree.clone()));
        for resp in &outcome.responses {
            let oracle = &sources[resp.epoch as usize];
            assert_eq!(
                resp.prediction,
                oracle.predict(&one_hot(resp.id)),
                "epoch {} diverged",
                resp.epoch
            );
        }
        let served_total: u64 = outcome.serving.per_epoch.iter().map(|(_, c)| c).sum();
        assert_eq!(served_total, 400);
        assert_eq!(outcome.serving.latency.count, 400);
        assert!(outcome.runner.peak_queue_depth >= 1);
    }
}
