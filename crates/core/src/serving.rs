//! Serve-while-converting: live tree serving and §3.2 conversion sharing
//! one thread budget.
//!
//! The deployment story the paper gestures at (§6.4) and the ROADMAP's
//! north star both need the same shape: a converted tree **keeps serving
//! decisions** while the conversion pipeline retrains behind it, each
//! freshly fitted round hot-swapping into the serving path with zero
//! dropped requests. [`serve_while_converting`] wires the pieces:
//!
//! * the [`crate::ConversionPipeline`] runs as one [`crate::Workload`]
//!   and publishes every round's student tree to a
//!   [`metis_serve::ModelRegistry`] via
//!   [`crate::ConversionPipeline::run_publishing`],
//! * an open-loop traffic schedule ([`metis_serve::ArrivalProcess`])
//!   drives a [`metis_serve::TreeServer`] as a second workload,
//! * both run under one [`crate::WorkloadRunner`] (shared admission
//!   budget); the engine's batches and the pipeline's stages share the
//!   process-wide worker pool under distinct fairness groups.
//!
//! Every response is bit-identical to `DecisionTree::predict` on the
//! epoch it reports — swaps change *which* tree answers, never *how*.

use crate::convert::ConversionResult;
use crate::pipeline::ConversionPipeline;
use crate::workload::{RunnerStats, Workload, WorkloadRunner};
use metis_dt::DecisionTree;
use metis_fabric::{
    FabricConfig, FabricReport, FabricResponse, Router, ScenarioSpec, ShadowConfig, TenantSpec,
};
use metis_rl::{Env, Policy, ValueEstimate};
use metis_serve::{
    drive_open_loop, ArrivalProcess, EngineReport, ModelRegistry, Response, ServeConfig, TreeServer,
};
use std::sync::Arc;
use std::time::Duration;

/// Everything one serve-while-converting run produces.
#[derive(Debug)]
pub struct ServeWhileConvertOutcome {
    /// The conversion pipeline's final result (identical to a solo run).
    pub conversion: ConversionResult,
    /// The serving engine's lifetime report (latency percentiles, batch
    /// shapes, per-epoch served counts).
    pub serving: EngineReport,
    /// Every response, sorted by request id.
    pub responses: Vec<Response>,
    /// Trees published by the pipeline (one per conversion round).
    pub published_epochs: u64,
    /// Admission-queue statistics of the shared runner.
    pub runner: RunnerStats,
}

enum Lane {
    Converted(Box<ConversionResult>),
    Served(Vec<Response>),
}

/// Run `pipeline` and an open-loop serving lane concurrently over one
/// shared [`WorkloadRunner`] budget. `initial` seeds the registry's
/// epoch 0 (traffic never waits for the first fit); each conversion
/// round's student is published as the next epoch. `features(k)` supplies
/// request `k`'s feature vector; `time_scale` stretches the arrival
/// schedule (0 = submit as fast as possible).
pub fn serve_while_converting<E, T, V>(
    pipeline: &ConversionPipeline<'_, E, T, V>,
    initial: DecisionTree,
    serve_cfg: ServeConfig,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64> + Send,
    time_scale: f64,
) -> ServeWhileConvertOutcome
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    let registry = Arc::new(ModelRegistry::new(initial));
    let server = TreeServer::start(Arc::clone(&registry), serve_cfg);
    let mut handle = server.handle();
    let mut features = features;
    let (results, runner) = WorkloadRunner::new(2).run_detailed(vec![
        Workload::new("convert", {
            let registry = &registry;
            move || {
                Lane::Converted(Box::new(pipeline.run_publishing(|_, student| {
                    registry.publish(student.tree.clone());
                })))
            }
        }),
        Workload::new("serve", move || {
            Lane::Served(drive_open_loop(
                &mut handle,
                arrivals,
                &mut features,
                time_scale,
            ))
        }),
    ]);
    let mut conversion = None;
    let mut responses = Vec::new();
    for result in results {
        match result.value {
            Lane::Converted(c) => conversion = Some(*c),
            Lane::Served(r) => responses = r,
        }
    }
    let serving = server.shutdown();
    ServeWhileConvertOutcome {
        conversion: conversion.expect("conversion workload completed"),
        serving,
        responses,
        published_epochs: registry.swap_count(),
        runner,
    }
}

/// Everything one fabric-backed serve-while-converting run produces.
#[derive(Debug)]
pub struct FabricServeOutcome {
    /// The conversion pipeline's final result (identical to a solo run).
    pub conversion: ConversionResult,
    /// The fabric's merged shutdown report: per-shard engine reports,
    /// the scenario's shadow audit trail, per-tenant SLO accounting.
    pub fabric: FabricReport,
    /// Every response, sorted by submission id.
    pub responses: Vec<FabricResponse>,
    /// Admission-queue statistics of the shared runner.
    pub runner: RunnerStats,
}

enum FabricLane {
    Converted(Box<ConversionResult>),
    Served(Vec<FabricResponse>),
}

/// The scenario key the conversion lane publishes under.
pub const FABRIC_STUDENT_KEY: &str = "student";

/// [`serve_while_converting`] upgraded to the fabric: traffic flows
/// through a session-affine sharded [`Router`] while the conversion
/// pipeline retrains behind it, and each round's student tree is
/// **staged** into the scenario's shadow slot instead of being published
/// blind — mirrored traffic diffs it bit-exactly against the live model
/// and the `shadow` policy decides the swap
/// ([`metis_fabric::PromotePolicy::AfterAudit`] to hot-swap every round
/// with its behavioural diff on the record,
/// [`metis_fabric::PromotePolicy::OnZeroDiff`] to only ever auto-swap
/// no-op refreshes). `session(k)` names request `k`'s sticky session;
/// `shards` splits the scenario's batching across that many
/// session-affine micro-batchers. Conversion results stay bit-identical
/// to a solo [`ConversionPipeline::run`].
#[allow(clippy::too_many_arguments)]
pub fn serve_fabric_while_converting<E, T, V>(
    pipeline: &ConversionPipeline<'_, E, T, V>,
    initial: DecisionTree,
    fabric_cfg: FabricConfig,
    shadow: ShadowConfig,
    shards: usize,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64> + Send,
    session: impl FnMut(u64) -> u64 + Send,
    time_scale: f64,
) -> FabricServeOutcome
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    run_fabric_serve(
        pipeline,
        initial,
        fabric_cfg,
        shadow,
        shards,
        arrivals,
        features,
        session,
        time_scale,
        |router, _, student| router.stage(FABRIC_STUDENT_KEY, student.tree.clone()),
    )
}

/// [`serve_fabric_while_converting`] with **ensemble staging**: after
/// round `r`, the candidate is a majority-vote [`metis_dt::Forest`] over
/// the last `min(ensemble_k, r + 1)` students (vote order = round order)
/// instead of round `r`'s tree alone — the serving-side analogue of
/// epoch averaging, smoothing round-to-round fit jitter while the same
/// mirrored audit and CAS promotion gate every swap. A window of one
/// stages a plain tree, so `ensemble_k == 1` is exactly
/// [`serve_fabric_while_converting`]. Conversion results stay
/// bit-identical to a solo [`ConversionPipeline::run`].
#[allow(clippy::too_many_arguments)]
pub fn serve_fabric_ensemble_while_converting<E, T, V>(
    pipeline: &ConversionPipeline<'_, E, T, V>,
    initial: DecisionTree,
    fabric_cfg: FabricConfig,
    shadow: ShadowConfig,
    shards: usize,
    ensemble_k: usize,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64> + Send,
    session: impl FnMut(u64) -> u64 + Send,
    time_scale: f64,
) -> FabricServeOutcome
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    assert!(ensemble_k >= 1, "ensemble_k must be at least 1");
    let mut recent: Vec<DecisionTree> = Vec::new();
    run_fabric_serve(
        pipeline,
        initial,
        fabric_cfg,
        shadow,
        shards,
        arrivals,
        features,
        session,
        time_scale,
        move |router, _, student| {
            recent.push(student.tree.clone());
            if recent.len() > ensemble_k {
                recent.remove(0);
            }
            if recent.len() == 1 {
                router.stage(FABRIC_STUDENT_KEY, recent[0].clone());
            } else {
                router.stage_forest(FABRIC_STUDENT_KEY, recent.clone());
            }
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_fabric_serve<E, T, V>(
    pipeline: &ConversionPipeline<'_, E, T, V>,
    initial: DecisionTree,
    fabric_cfg: FabricConfig,
    shadow: ShadowConfig,
    shards: usize,
    arrivals: &ArrivalProcess,
    features: impl FnMut(u64) -> Vec<f64> + Send,
    session: impl FnMut(u64) -> u64 + Send,
    time_scale: f64,
    stage: impl FnMut(&Router, usize, &crate::TreePolicy) + Send,
) -> FabricServeOutcome
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    assert!(
        time_scale.is_finite() && time_scale >= 0.0,
        "time_scale must be finite and non-negative"
    );
    // The runner reports into the same plane the fabric serves on: its
    // scope rides shard slot `CONTROL_SHARD` under a synthetic "runner"
    // scenario, so health observers see admission queueing next to the
    // serving stages it competes with.
    let plane = fabric_cfg.telemetry.clone();
    let router = Router::new(
        vec![TenantSpec::new("convert-serve")],
        vec![
            ScenarioSpec::new(FABRIC_STUDENT_KEY, "convert-serve", initial)
                .shards(shards)
                .shadow(shadow),
        ],
        fabric_cfg,
    );
    let mut handle = router.handle();
    let mut features = features;
    let mut session = session;
    let mut stage = stage;
    let pace_clock = Arc::clone(router.clock());
    let mut workload_runner = WorkloadRunner::new(2);
    if let Some(scope) =
        plane.register_scope("runner", metis_telemetry::CONTROL_SHARD, "convert-serve", 0)
    {
        workload_runner = workload_runner.telemetry(scope);
    }
    let (results, runner) = workload_runner.run_detailed(vec![
        Workload::new("convert", {
            let router = &router;
            move || {
                FabricLane::Converted(Box::new(pipeline.run_publishing(|round, student| {
                    stage(router, round, student);
                })))
            }
        }),
        Workload::new("serve", move || {
            let start_s = pace_clock.now_s();
            let mut t = 0.0;
            for (k, gap) in arrivals.gaps_s().iter().enumerate() {
                if time_scale > 0.0 {
                    t += gap * time_scale;
                    // Paced on the fabric's clock: a real-clock fabric
                    // sleeps each gap out (no busy-spin tail — this lane
                    // shares its core budget with the conversion
                    // pipeline), a virtual-clock fabric advances time
                    // and submits immediately.
                    pace_clock.sleep_until(start_s + t, Duration::ZERO);
                }
                let k = k as u64;
                handle.submit(0, session(k), features(k));
            }
            FabricLane::Served(handle.collect())
        }),
    ]);
    let mut conversion = None;
    let mut responses = Vec::new();
    for result in results {
        match result.value {
            FabricLane::Converted(c) => conversion = Some(*c),
            FabricLane::Served(r) => responses = r,
        }
    }
    let fabric = router.shutdown();
    FabricServeOutcome {
        conversion: conversion.expect("conversion workload completed"),
        fabric,
        responses,
        runner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConversionConfig;
    use metis_rl::env::test_envs::BanditEnv;

    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    fn one_hot(k: u64) -> Vec<f64> {
        let mut v = vec![0.0; 3];
        v[(k % 3) as usize] = 1.0;
        v
    }

    #[test]
    fn traffic_is_served_across_conversion_epochs_with_zero_drops() {
        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(3, 16, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            dagger_rounds: 2,
            ..Default::default()
        };
        let pipeline = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .conversion(cfg)
            .seed(5);
        // Epoch 0: a quick teacher-round fit so serving never waits.
        let seed_states = pipeline.collect_teacher_states(4, 16);
        let initial = pipeline.fit_states(&seed_states, 3, 0).tree;
        let solo = pipeline.run();

        let arrivals = ArrivalProcess::poisson(20_000.0, 400, 9);
        let outcome = serve_while_converting(
            &pipeline,
            initial.clone(),
            ServeConfig {
                max_batch: 32,
                max_delay: Duration::from_micros(300),
                ..Default::default()
            },
            &arrivals,
            one_hot,
            1.0,
        );

        // Conversion is bit-identical to the solo run: serving never
        // perturbs the pipeline.
        assert_eq!(outcome.conversion.policy.tree, solo.policy.tree);
        assert_eq!(outcome.conversion.fidelity_history, solo.fidelity_history);
        // One publish per round (round 0 + 2 DAgger rounds).
        assert_eq!(outcome.published_epochs, 3);
        // Zero drops: every request answered, every answer consistent
        // with the epoch that served it.
        assert_eq!(outcome.responses.len(), 400);
        assert_eq!(outcome.serving.served, 400);
        assert_eq!(outcome.serving.delivery_failures, 0);
        let mut sources = vec![initial];
        // Rebuild the per-round students exactly as run_publishing saw
        // them, via a replay of the solo pipeline.
        pipeline.run_publishing(|_, student| sources.push(student.tree.clone()));
        for resp in &outcome.responses {
            let oracle = &sources[resp.epoch as usize];
            assert_eq!(
                resp.prediction,
                oracle.predict(&one_hot(resp.id)),
                "epoch {} diverged",
                resp.epoch
            );
        }
        let served_total: u64 = outcome.serving.per_epoch.iter().map(|(_, c)| c).sum();
        assert_eq!(served_total, 400);
        assert_eq!(outcome.serving.latency.count, 400);
        assert!(outcome.runner.peak_queue_depth >= 1);
    }

    #[test]
    fn fabric_variant_stages_rounds_and_stays_bit_identical_to_solo() {
        use metis_fabric::PromotePolicy;

        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(3, 16, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            dagger_rounds: 2,
            ..Default::default()
        };
        let pipeline = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .conversion(cfg)
            .seed(5);
        let seed_states = pipeline.collect_teacher_states(4, 16);
        let initial = pipeline.fit_states(&seed_states, 3, 0).tree;
        let solo = pipeline.run();

        let arrivals = ArrivalProcess::poisson(20_000.0, 500, 9);
        let telemetry = metis_telemetry::Telemetry::enabled();
        let outcome = serve_fabric_while_converting(
            &pipeline,
            initial.clone(),
            FabricConfig {
                serve: ServeConfig {
                    max_batch: 32,
                    max_delay: Duration::from_micros(300),
                    ..Default::default()
                },
                mirror_batch: 16,
                telemetry: telemetry.clone(),
                ..Default::default()
            },
            metis_fabric::ShadowConfig {
                audit_rows: 32,
                policy: PromotePolicy::AfterAudit,
            },
            2,
            &arrivals,
            one_hot,
            |k| k % 7, // seven sticky sessions
            1.0,
        );

        // Conversion is bit-identical to the solo run: the fabric never
        // perturbs the pipeline.
        assert_eq!(outcome.conversion.policy.tree, solo.policy.tree);
        assert_eq!(outcome.conversion.fidelity_history, solo.fidelity_history);
        // Zero drops, and session affinity held for every response.
        assert_eq!(outcome.responses.len(), 500);
        assert_eq!(outcome.fabric.served, 500);
        let scenario = outcome.fabric.scenario(FABRIC_STUDENT_KEY).unwrap();
        assert_eq!(scenario.shards.len(), 2);
        assert_eq!(scenario.served, 500);
        for report in &scenario.shards {
            assert_eq!(report.delivery_failures, 0);
        }
        let mut session_shard = std::collections::HashMap::new();
        for resp in &outcome.responses {
            assert_eq!(resp.session, resp.id % 7);
            let prev = session_shard.entry(resp.session).or_insert(resp.shard);
            assert_eq!(*prev, resp.shard, "session hopped shards");
            if resp.response.epoch == 0 {
                assert_eq!(
                    resp.response.prediction,
                    initial.predict(&one_hot(resp.id)),
                    "epoch-0 answers must come from the initial tree"
                );
            }
        }
        // One staging per round (round 0 + 2 DAgger rounds); every staged
        // candidate is accounted for as promoted, replaced, or pending.
        assert_eq!(scenario.shadow.staged, 3);
        let decided = scenario.shadow.promotions.len() as u64
            + scenario.shadow.replaced
            + scenario.shadow.rejected
            + u64::from(scenario.shadow.pending.is_some());
        assert_eq!(decided, 3, "shadow audit lost a candidate");
        // Promotions went live in order and were audited first.
        assert_eq!(scenario.swaps, scenario.shadow.promotions.len() as u64);
        for promo in &scenario.shadow.promotions {
            assert!(promo.audited_rows >= 32);
        }
        let tenant = outcome.fabric.tenant("convert-serve").unwrap();
        assert_eq!(tenant.served, 500);
        assert!(tenant.met_p99_budget);
        // The telemetry plane flowed through the fabric: one scope per
        // shard, the scenario's control scope, and the workload runner's
        // admission scope; every request accounted for, and each
        // concluded audit on the control scope's flight recorder.
        let scopes = telemetry.scopes();
        assert_eq!(
            scopes.len(),
            4,
            "2 shard scopes + 1 control scope + 1 runner scope"
        );
        let served: u64 = scopes
            .iter()
            .filter(|s| s.shard() != metis_telemetry::CONTROL_SHARD)
            .map(|s| s.served.get())
            .sum();
        assert_eq!(served, 500);
        let runner_scope = scopes
            .iter()
            .find(|s| s.scenario() == "runner")
            .expect("runner scope");
        // Both workloads (convert + serve) landed as runner requests.
        assert_eq!(runner_scope.latency.cumulative().count(), 2);
        let control = scopes
            .iter()
            .find(|s| {
                s.shard() == metis_telemetry::CONTROL_SHARD && s.scenario() == FABRIC_STUDENT_KEY
            })
            .expect("control scope");
        let verdicts = control
            .events
            .events()
            .iter()
            .filter(|e| e.kind.name() == "audit_verdict")
            .count() as u64;
        let concluded = scenario.shadow.promotions.len() as u64
            + scenario.shadow.rejected
            + scenario.shadow.superseded;
        assert_eq!(verdicts, concluded, "every concluded audit is recorded");
    }

    /// The ensemble variant: each round stages a forest over the last
    /// `k` students. Conversion stays bit-identical to solo, every
    /// promotion records its ensemble width within the window bound, and
    /// the live model at shutdown is whatever the last promotion
    /// installed.
    #[test]
    fn ensemble_variant_stages_windowed_forests_and_preserves_conversion() {
        use metis_fabric::PromotePolicy;

        let pool: Vec<BanditEnv> = (0..3).map(|s| BanditEnv::new(3, 16, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            dagger_rounds: 2,
            ..Default::default()
        };
        let pipeline = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .conversion(cfg)
            .seed(5);
        let seed_states = pipeline.collect_teacher_states(4, 16);
        let initial = pipeline.fit_states(&seed_states, 3, 0).tree;
        let solo = pipeline.run();

        let arrivals = ArrivalProcess::poisson(20_000.0, 500, 9);
        let outcome = serve_fabric_ensemble_while_converting(
            &pipeline,
            initial.clone(),
            FabricConfig {
                serve: ServeConfig {
                    max_batch: 32,
                    max_delay: Duration::from_micros(300),
                    ..Default::default()
                },
                mirror_batch: 16,
                ..Default::default()
            },
            metis_fabric::ShadowConfig {
                audit_rows: 32,
                policy: PromotePolicy::AfterAudit,
            },
            2,
            2, // ensemble_k: forests over the last two rounds
            &arrivals,
            one_hot,
            |k| k % 7,
            1.0,
        );

        // The staging hook never perturbs the conversion itself.
        assert_eq!(outcome.conversion.policy.tree, solo.policy.tree);
        assert_eq!(outcome.conversion.fidelity_history, solo.fidelity_history);
        assert_eq!(outcome.responses.len(), 500);
        assert_eq!(outcome.fabric.served, 500);
        let scenario = outcome.fabric.scenario(FABRIC_STUDENT_KEY).unwrap();
        // One staging per round; round 0 stages a lone tree, later rounds
        // two-tree forests — every promotion's width reflects its window.
        assert_eq!(scenario.shadow.staged, 3);
        for (i, promo) in scenario.shadow.promotions.iter().enumerate() {
            assert!(
                promo.trees == 1 || promo.trees == 2,
                "window bound violated: promotion {i} carries {} trees",
                promo.trees
            );
            assert!(promo.audited_rows >= 32);
        }
        assert_eq!(scenario.swaps, scenario.shadow.promotions.len() as u64);
        // The live model at shutdown is the last promotion's ensemble (or
        // still the epoch-0 tree when nothing promoted in time).
        match scenario.shadow.promotions.last() {
            Some(last) => {
                assert_eq!(scenario.live_trees, last.trees);
                assert_eq!(scenario.live_epoch, last.epoch);
            }
            None => assert_eq!(scenario.live_trees, 1),
        }
        // Epoch-0 answers must still come from the initial tree.
        for resp in &outcome.responses {
            if resp.response.epoch == 0 {
                assert_eq!(resp.response.prediction, initial.predict(&one_hot(resp.id)));
            }
        }
    }
}
