//! Conversion configuration, results, and deployable students for the
//! §3.2 pipeline.
//!
//! The loop itself — trace collection with DAgger takeover, Eq.-1
//! resampling, fitting, CCP pruning — lives in the scenario-agnostic
//! engine [`crate::pipeline::ConversionPipeline`]; [`convert_policy`] is
//! the thin RNG-driven wrapper kept for callers that already hold an
//! [`StdRng`]. Also here: the §6.3 debugging interface (oversampling rare
//! actions) and the multi-output regression student for AuTO's sRLA.

use crate::pipeline::{ConversionPipeline, PipelineStats};
use metis_dt::{fit, Criterion, Dataset, DecisionTree, TreeConfig};
use metis_rl::{Env, Policy, SampledState};
use rand::rngs::StdRng;
use rand::RngCore;

/// A decision-tree policy: the deployable student (§3.2 Step 4).
#[derive(Debug, Clone)]
pub struct TreePolicy {
    pub tree: DecisionTree,
}

impl TreePolicy {
    pub fn new(tree: DecisionTree) -> Self {
        TreePolicy { tree }
    }
}

impl Policy for TreePolicy {
    fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
        // Leaf class frequencies are a natural soft output; fall back to a
        // one-hot on the prediction for degenerate leaves.
        match self.tree.predict_proba(obs) {
            Some(p) => p,
            None => {
                let n = match self.tree.kind() {
                    metis_dt::TreeKind::Classifier { n_classes } => n_classes,
                    metis_dt::TreeKind::Regressor => {
                        panic!("TreePolicy requires a classification tree")
                    }
                };
                let mut p = vec![0.0; n];
                p[self.tree.predict_class(obs)] = 1.0;
                p
            }
        }
    }

    fn act_greedy(&self, obs: &[f64]) -> usize {
        self.tree.predict_class(obs)
    }
}

/// Conversion configuration (§3.2 + Table 4).
#[derive(Debug, Clone)]
pub struct ConversionConfig {
    /// Final leaf budget (Table 4: 200 for Pensieve, 2000 for AuTO).
    pub max_leaf_nodes: usize,
    /// Overshoot factor before CCP pruning (§3.2 Step 3): the tree is
    /// grown to `ccp_overshoot * max_leaf_nodes` leaves, then pruned.
    pub ccp_overshoot: usize,
    /// DAgger rounds after the initial teacher-controlled round.
    pub dagger_rounds: usize,
    /// Episodes collected per round.
    pub episodes_per_round: usize,
    pub max_steps: usize,
    pub gamma: f64,
    /// Apply the Eq.-1 advantage resampling (Step 2). Off = ablation.
    pub resample: bool,
    /// Number of resampled points (defaults to the dataset size).
    pub resample_size: Option<usize>,
    /// Teacher takeover probability on student deviation.
    pub takeover_prob: f64,
    /// §6.3 debugging: oversample each action to at least this fraction.
    pub oversample_min_frac: Option<f64>,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        ConversionConfig {
            max_leaf_nodes: 200,
            ccp_overshoot: 4,
            dagger_rounds: 2,
            episodes_per_round: 16,
            max_steps: 1000,
            gamma: 0.99,
            resample: true,
            resample_size: None,
            takeover_prob: 0.7,
            oversample_min_frac: None,
        }
    }
}

/// Conversion output.
#[derive(Debug, Clone)]
pub struct ConversionResult {
    pub policy: TreePolicy,
    /// Aggregated training states (before resampling).
    pub dataset_size: usize,
    /// Student-vs-teacher agreement after each round.
    pub fidelity_history: Vec<f64>,
    /// Wall-clock/volume statistics of the run.
    pub stats: PipelineStats,
}

/// §6.3: duplicate states of rare actions until every action present in
/// the dataset reaches `min_frac` of the total (missing actions cannot be
/// conjured, matching the paper — oversampling only rebalances).
pub fn oversample_rare_actions(
    states: &mut Vec<SampledState>,
    n_actions: usize,
    min_frac: f64,
    rng: &mut StdRng,
) {
    use rand::Rng;
    let total0 = states.len();
    if total0 == 0 {
        return;
    }
    for a in 0..n_actions {
        let holders: Vec<usize> = (0..states.len())
            .filter(|&i| states[i].teacher_action == a)
            .collect();
        if holders.is_empty() {
            continue;
        }
        let mut count = holders.len();
        while (count as f64) < min_frac * states.len() as f64 {
            let pick = holders[rng.gen_range(0..holders.len())];
            states.push(states[pick].clone());
            count += 1;
        }
    }
}

/// Convert a teacher policy into a decision tree (§3.2 Steps 1–3) — a
/// thin wrapper over [`ConversionPipeline`] for callers that already hold
/// an [`StdRng`]: the pipeline's base seed is drawn from it, everything
/// else (collection rounds, resampling, fitting, pruning) runs through
/// the unified engine on all available cores.
///
/// `value_fn` supplies the bootstrap V(s') for the Eq.-1 Q lookahead
/// (pass the teacher's critic, or `|_| 0.0` for myopic weights).
pub fn convert_policy<E: Env + Sync, T: Policy + Sync + ?Sized>(
    pool: &[E],
    teacher: &T,
    value_fn: impl Fn(&[f64]) -> f64 + Sync,
    cfg: &ConversionConfig,
    rng: &mut StdRng,
) -> ConversionResult {
    ConversionPipeline::new(pool, teacher, value_fn)
        .conversion(cfg.clone())
        .seed(rng.next_u64())
        .run()
}

/// A bundle of per-output regression trees — Metis' student for agents
/// with continuous multi-dimensional outputs (AuTO's sRLA thresholds).
#[derive(Debug, Clone)]
pub struct MultiRegressor {
    pub trees: Vec<DecisionTree>,
}

impl MultiRegressor {
    /// Fit one regression tree per output dimension, output dimensions in
    /// parallel (they are independent; results merge in dimension order,
    /// so the bundle is identical for any core count).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        max_leaf_nodes: usize,
    ) -> Result<Self, metis_dt::FitError> {
        assert!(!x.is_empty() && x.len() == y.len(), "x/y mismatch");
        let out_dim = y[0].len();
        let fit_dim = |k: usize| {
            let ds = Dataset::regression(x.to_vec(), y.iter().map(|row| row[k]).collect())
                .expect("valid regression dataset");
            let cfg = TreeConfig {
                max_leaf_nodes,
                criterion: Criterion::Mse,
                // Outer per-dimension parallelism; keep the inner split
                // scan sequential to avoid oversubscription.
                threads: 1,
                ..Default::default()
            };
            fit(&ds, &cfg)
        };
        let results = metis_rl::parallel_map_indexed(out_dim, 0, fit_dim);
        let trees: Result<Vec<DecisionTree>, metis_dt::FitError> = results.into_iter().collect();
        Ok(MultiRegressor { trees: trees? })
    }

    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict_value(x)).collect()
    }

    /// Mean per-dimension RMSE against reference outputs.
    pub fn rmse(&self, x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
        let out_dim = self.trees.len();
        let mut acc = 0.0;
        for k in 0..out_dim {
            let pred: Vec<f64> = x.iter().map(|xi| self.trees[k].predict_value(xi)).collect();
            let truth: Vec<f64> = y.iter().map(|row| row[k]).collect();
            acc += metis_dt::metrics::rmse_slices(&pred, &truth);
        }
        acc / out_dim as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_rl::env::test_envs::{BanditEnv, DelayedEnv};
    use metis_rl::{evaluate, ConstantPolicy};
    use rand::SeedableRng;

    /// Oracle teacher for the bandit.
    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    #[test]
    fn converted_tree_mimics_oracle_bandit() {
        let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 20, s)).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 8,
            max_steps: 20,
            ..Default::default()
        };
        let result = convert_policy(&pool, &Oracle, |_| 0.0, &cfg, &mut rng);
        // The one-hot context is trivially separable: perfect fidelity.
        assert!(
            *result.fidelity_history.last().unwrap() > 0.99,
            "fidelity {:?}",
            result.fidelity_history
        );
        // And the tree must actually play the bandit optimally.
        let score = evaluate(&pool[0], &result.policy, 3, 20, &mut rng);
        assert!(score > 19.0, "tree bandit score {score}");
    }

    #[test]
    fn converted_tree_solves_delayed_env() {
        let pool = [DelayedEnv::new()];
        let teacher = ConstantPolicy {
            action: 1,
            n_actions: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ConversionConfig {
            max_leaf_nodes: 4,
            episodes_per_round: 4,
            max_steps: 5,
            ..Default::default()
        };
        let result = convert_policy(&pool, &teacher, |_| 0.0, &cfg, &mut rng);
        assert_eq!(result.policy.act_greedy(&[0.0, 0.0]), 1);
        let score = evaluate(&pool[0], &result.policy, 1, 5, &mut rng);
        assert_eq!(score, 1.0);
    }

    #[test]
    fn leaf_budget_respected() {
        let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 50, s)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for max in [2, 4, 16] {
            let cfg = ConversionConfig {
                max_leaf_nodes: max,
                episodes_per_round: 4,
                max_steps: 50,
                ..Default::default()
            };
            let result = convert_policy(&pool, &Oracle, |_| 0.0, &cfg, &mut rng);
            assert!(result.policy.tree.n_leaves() <= max);
        }
    }

    #[test]
    fn tree_policy_probs_are_distributions() {
        let pool = [BanditEnv::new(3, 20, 9)];
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = ConversionConfig {
            max_leaf_nodes: 4,
            episodes_per_round: 4,
            max_steps: 20,
            dagger_rounds: 0,
            ..Default::default()
        };
        let result = convert_policy(&pool, &Oracle, |_| 0.0, &cfg, &mut rng);
        let p = result.policy.action_probs(&[1.0, 0.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversampling_rebalances_actions() {
        let mut states = vec![
            SampledState {
                obs: vec![0.0],
                teacher_action: 0,
                weight: 1.0
            };
            99
        ];
        states.push(SampledState {
            obs: vec![1.0],
            teacher_action: 1,
            weight: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(5);
        oversample_rare_actions(&mut states, 3, 0.05, &mut rng);
        let ones = states.iter().filter(|s| s.teacher_action == 1).count();
        assert!(
            ones as f64 >= 0.05 * states.len() as f64 - 1.0,
            "action 1 still rare: {ones}/{}",
            states.len()
        );
        // Action 2 was absent: oversampling cannot create it.
        assert!(states.iter().all(|s| s.teacher_action != 2));
    }

    #[test]
    fn multiregressor_fits_independent_outputs() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![if i < 25 { 1.0 } else { 3.0 }, i as f64 * 0.1])
            .collect();
        let mr = MultiRegressor::fit(&x, &y, 16).unwrap();
        assert_eq!(mr.trees.len(), 2);
        let p = mr.predict(&[10.0]);
        assert!((p[0] - 1.0).abs() < 0.1);
        assert!((p[1] - 1.0).abs() < 0.3);
        assert!(mr.rmse(&x, &y) < 0.2);
    }

    #[test]
    fn resampling_ablation_both_work() {
        let pool: Vec<BanditEnv> = (0..2).map(|s| BanditEnv::new(2, 20, s)).collect();
        let mut rng = StdRng::seed_from_u64(6);
        for resample in [true, false] {
            let cfg = ConversionConfig {
                max_leaf_nodes: 4,
                episodes_per_round: 4,
                max_steps: 20,
                resample,
                ..Default::default()
            };
            let result = convert_policy(&pool, &Oracle, |_| 0.0, &cfg, &mut rng);
            assert!(*result.fidelity_history.last().unwrap() > 0.9);
        }
    }
}
