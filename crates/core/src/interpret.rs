//! Hypergraph interpretation of the RouteNet* global system (§4, §6.1,
//! §6.5): formulate the routing as a hypergraph, run the critical-
//! connection search, classify the top connections (Table 3), correlate
//! mask mass with link traffic (Figure 9b), and drive ad-hoc rerouting
//! decisions (Figure 18). Also the local-system instance of the same
//! search ([`interpret_policy_features`]): a feature mask on an MLP policy
//! over recorded observations, evaluated through the batched block
//! gradient of [`metis_hypergraph::MaskedMlp`].

use metis_hypergraph::{
    optimize_mask, Hypergraph, MaskConfig, MaskResult, MaskedMlp, MaskedSystem, OutputKind,
};
use metis_nn::net::softmax;
use metis_nn::tape::{Tape, Var};
use metis_nn::Mlp;
use metis_routing::{
    candidates_for, connections, Demand, LatencyModel, RouteNetModel, Routing, Topology,
};

/// Formulate an SDN routing result as a hypergraph (§4.1 / Figure 5):
/// vertices are directed links, hyperedges are the routed paths, features
/// are capacities and demand volumes.
pub fn routing_hypergraph(topo: &Topology, demands: &[Demand], routing: &Routing) -> Hypergraph {
    let mut h = Hypergraph::new(topo.n_links());
    for path in routing {
        let links = topo.path_links(path);
        h.add_edge(&links).expect("paths produce valid hyperedges");
    }
    h.set_vertex_features(
        (0..topo.n_links())
            .map(|l| vec![topo.link(l).capacity])
            .collect(),
    )
    .unwrap();
    h.set_edge_features(demands.iter().map(|d| vec![d.volume]).collect())
        .unwrap();
    h.vertex_names = Some((0..topo.n_links()).map(|l| topo.link_name(l)).collect());
    h.edge_names = Some(
        routing
            .iter()
            .map(|p| {
                p.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join("->")
            })
            .collect(),
    );
    h
}

/// The masked RouteNet* system: damping a (path, link) connection damps
/// the messages exchanged across it inside the GNN, and the output is the
/// concatenation of per-demand softmax distributions over candidate paths
/// (routing decisions -> discrete, compared by KL; Eq. 6).
pub struct MaskedRouting<'a> {
    pub model: &'a RouteNetModel,
    pub topo: &'a Topology,
    pub demands: &'a [Demand],
    pub routing: &'a Routing,
    pub candidates: Vec<Vec<Vec<usize>>>,
    /// Softmax sharpness over candidate delays.
    pub beta: f64,
    n_connections: usize,
}

impl<'a> MaskedRouting<'a> {
    pub fn new(
        model: &'a RouteNetModel,
        topo: &'a Topology,
        demands: &'a [Demand],
        routing: &'a Routing,
    ) -> Self {
        let candidates = candidates_for(topo, demands);
        let n_connections = connections(topo, routing).len();
        // Sharp candidate distributions: damping a decisive connection must
        // move real probability mass, otherwise the KL term cannot compete
        // with the conciseness penalty and every mask collapses to zero.
        MaskedRouting {
            model,
            topo,
            demands,
            routing,
            candidates,
            beta: 25.0,
            n_connections,
        }
    }
}

impl MaskedSystem for MaskedRouting<'_> {
    fn n_connections(&self) -> usize {
        self.n_connections
    }

    fn reference_output(&self) -> Vec<f64> {
        // Unmasked candidate delays -> per-demand softmax, concatenated.
        let tape = Tape::new();
        let pv = tape.vars(self.model.params());
        let delays = self.model.candidate_delays_tape(
            &tape,
            &pv,
            self.topo,
            self.demands,
            self.routing,
            &self.candidates,
            None,
        );
        let mut out = Vec::new();
        for per_demand in delays {
            let scores: Vec<f64> = per_demand.iter().map(|v| -self.beta * v.value()).collect();
            out.extend(softmax(&scores));
        }
        out
    }

    fn masked_output<'t>(&self, tape: &'t Tape, mask: &[Var<'t>]) -> Vec<Var<'t>> {
        let pv = tape.vars(self.model.params());
        let delays = self.model.candidate_delays_tape(
            tape,
            &pv,
            self.topo,
            self.demands,
            self.routing,
            &self.candidates,
            Some(mask),
        );
        let mut out = Vec::new();
        for per_demand in delays {
            // Differentiable softmax over -beta * delay.
            let exps: Vec<Var<'t>> = per_demand
                .iter()
                .map(|d| (*d * (-self.beta)).exp())
                .collect();
            let total = metis_nn::tape::sum(tape, &exps);
            for e in exps {
                out.push(e / total);
            }
        }
        out
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::Discrete
    }
}

/// One row of the Table-3 style report.
#[derive(Debug, Clone)]
pub struct ConnectionReport {
    pub path: String,
    pub link: String,
    pub mask: f64,
    pub kind: InterpretationKind,
    /// (demand index, link index) of the connection.
    pub demand_idx: usize,
    pub link_idx: usize,
}

/// The paper's two interpretation categories for critical connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpretationKind {
    /// The chosen path is strictly shorter than the masked alternative.
    Shorter,
    /// An equal-length alternative exists but is more congested.
    LessCongested,
    Other,
}

impl std::fmt::Display for InterpretationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpretationKind::Shorter => write!(f, "Shorter"),
            InterpretationKind::LessCongested => write!(f, "Less congested"),
            InterpretationKind::Other => write!(f, "Other"),
        }
    }
}

/// Classify why a critical connection matters (Table 3's last column):
/// compare the chosen path against the alternatives that avoid this link.
pub fn classify_connection(
    topo: &Topology,
    demands: &[Demand],
    routing: &Routing,
    latency: &LatencyModel,
    demand_idx: usize,
    link_idx: usize,
) -> InterpretationKind {
    let chosen = &routing[demand_idx];
    let d = demands[demand_idx];
    let alternatives: Vec<Vec<usize>> = metis_routing::candidate_paths(topo, d.src, d.dst)
        .into_iter()
        .filter(|p| p != chosen && !topo.path_links(p).contains(&link_idx))
        .collect();
    if alternatives.is_empty() {
        // Every candidate route uses this link: it is selected because all
        // detours would be longer than the candidate budget allows.
        return InterpretationKind::Shorter;
    }
    let chosen_len = chosen.len();
    if alternatives.iter().all(|p| p.len() > chosen_len) {
        return InterpretationKind::Shorter;
    }
    // Some equal-length alternative exists: critical if it is more loaded.
    let loads = latency.link_loads(topo, demands, routing);
    let path_max_load = |p: &Vec<usize>| -> f64 {
        topo.path_links(p)
            .iter()
            .map(|&l| loads[l])
            .fold(0.0, f64::max)
    };
    let chosen_load = path_max_load(chosen);
    let equal_len: Vec<&Vec<usize>> = alternatives
        .iter()
        .filter(|p| p.len() == chosen_len)
        .collect();
    if equal_len.iter().any(|p| path_max_load(p) > chosen_load) {
        InterpretationKind::LessCongested
    } else {
        InterpretationKind::Other
    }
}

/// Run the full §4.2 search and produce the Table-3 style top-k report.
pub fn interpret_routing(
    model: &RouteNetModel,
    topo: &Topology,
    demands: &[Demand],
    routing: &Routing,
    mask_cfg: &MaskConfig,
    top_k: usize,
) -> (MaskResult, Vec<ConnectionReport>) {
    let system = MaskedRouting::new(model, topo, demands, routing);
    let result = optimize_mask(&system, mask_cfg);
    let conns = connections(topo, routing);
    let latency = LatencyModel::default();
    let reports = result
        .ranked()
        .into_iter()
        .take(top_k)
        .map(|i| {
            let (p, l) = conns[i];
            ConnectionReport {
                path: routing[p]
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join("->"),
                link: topo.link_name(l),
                mask: result.mask[i],
                kind: classify_connection(topo, demands, routing, &latency, p, l),
                demand_idx: p,
                link_idx: l,
            }
        })
        .collect();
    (result, reports)
}

/// One row of the local-system (feature-mask) interpretation report.
#[derive(Debug, Clone)]
pub struct FeatureReport {
    /// Feature name (or `feature <i>` when no names are supplied).
    pub feature: String,
    /// Observation-feature index of the connection.
    pub index: usize,
    /// Surviving mask value.
    pub mask: f64,
}

/// Run the §4 critical-connection search over a **local** system: mask
/// the observation features of an MLP policy (ABR, flow scheduling)
/// against a batch of recorded observations, and report the ranked
/// critical features. The gradient evaluation batches observations into
/// [`metis_hypergraph::MaskedMlp`] blocks and shards them across
/// `mask_cfg.threads` workers; results are identical for any thread
/// count and bit-identical to the per-obs oracle.
pub fn interpret_policy_features(
    net: &Mlp,
    observations: Vec<Vec<f64>>,
    feature_names: Option<&[String]>,
    mask_cfg: &MaskConfig,
    top_k: usize,
) -> (MaskResult, Vec<FeatureReport>) {
    if let Some(names) = feature_names {
        assert_eq!(names.len(), net.in_dim(), "feature name count mismatch");
    }
    let system = MaskedMlp::new(net, observations, OutputKind::Discrete);
    let result = optimize_mask(&system, mask_cfg);
    let reports = result
        .ranked()
        .into_iter()
        .take(top_k)
        .map(|i| FeatureReport {
            feature: feature_names.map_or_else(|| format!("feature {i}"), |n| n[i].clone()),
            index: i,
            mask: result.mask[i],
        })
        .collect();
    (result, reports)
}

/// Figure 9(b): per-link mask mass `Σ_e W_ve` aligned with `topo.links()`.
pub fn mask_mass_per_link(topo: &Topology, routing: &Routing, mask: &[f64]) -> Vec<f64> {
    let conns = connections(topo, routing);
    assert_eq!(conns.len(), mask.len());
    let mut mass = vec![0.0; topo.n_links()];
    for ((_, l), &m) in conns.iter().zip(mask.iter()) {
        mass[*l] += m;
    }
    mass
}

/// One Figure-18 ad-hoc rerouting observation.
#[derive(Debug, Clone, Copy)]
pub struct AdhocPoint {
    /// `w⁰₁ − w⁰₂`: mask difference at the two diverting hops.
    pub dw: f64,
    /// `l₁ − l₂`: true latency difference of the two reroute options.
    pub dl: f64,
}

/// Index (into the path's links) of the first hop where `alt` diverges
/// from `base`; `None` if `alt` does not share a proper prefix.
fn divergence_hop(base: &[usize], alt: &[usize]) -> Option<usize> {
    let shared = base
        .iter()
        .zip(alt.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if shared == 0 || shared >= base.len() || shared >= alt.len() {
        None
    } else {
        Some(shared - 1) // the hop leaving the last shared node
    }
}

/// Collect Figure-18 points for a routed sample: for every demand with two
/// candidates `p1`, `p2` diverting from the chosen `p0` at *different*
/// nodes, record the mask difference at those diverting hops and the true
/// latency difference of rerouting onto `p1` vs `p2`.
pub fn adhoc_points(
    topo: &Topology,
    demands: &[Demand],
    routing: &Routing,
    mask: &[f64],
    latency: &LatencyModel,
) -> Vec<AdhocPoint> {
    let conns = connections(topo, routing);
    // Connection-index lookup: (demand, link) -> position in mask vector.
    let lookup = |demand: usize, link: usize| -> Option<usize> {
        conns.iter().position(|&(p, l)| p == demand && l == link)
    };
    let mut points = Vec::new();
    for (i, d) in demands.iter().enumerate() {
        let p0 = &routing[i];
        let cands: Vec<Vec<usize>> = metis_routing::candidate_paths(topo, d.src, d.dst)
            .into_iter()
            .filter(|p| p != p0)
            .collect();
        // All pairs diverting at different hops.
        for (a, p1) in cands.iter().enumerate() {
            let Some(h1) = divergence_hop(p0, p1) else {
                continue;
            };
            for p2 in cands.iter().skip(a + 1) {
                let Some(h2) = divergence_hop(p0, p2) else {
                    continue;
                };
                if h1 == h2 {
                    continue;
                }
                let links0 = topo.path_links(p0);
                let (Some(c1), Some(c2)) = (lookup(i, links0[h1]), lookup(i, links0[h2])) else {
                    continue;
                };
                // True latencies after rerouting demand i onto p1 / p2.
                let mut r1 = routing.clone();
                r1[i] = p1.clone();
                let l1 = latency.path_latencies(topo, demands, &r1)[i];
                let mut r2 = routing.clone();
                r2[i] = p2.clone();
                let l2 = latency.path_latencies(topo, demands, &r2)[i];
                points.push(AdhocPoint {
                    dw: mask[c1] - mask[c2],
                    dl: l1 - l2,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_routing::optimize_routing;
    use rand::SeedableRng;

    fn small_setup() -> (Topology, Vec<Demand>, Routing, RouteNetModel) {
        let topo = Topology::nsfnet();
        let demands = vec![
            Demand {
                src: 6,
                dst: 9,
                volume: 1.2,
            },
            Demand {
                src: 0,
                dst: 12,
                volume: 0.8,
            },
            Demand {
                src: 8,
                dst: 2,
                volume: 1.5,
            },
        ];
        let latency = LatencyModel::default();
        let routing = optimize_routing(&topo, &demands, &latency, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let model = RouteNetModel::new(4, &mut rng);
        (topo, demands, routing, model)
    }

    #[test]
    fn hypergraph_matches_routing_structure() {
        let (topo, demands, routing, _) = small_setup();
        let h = routing_hypergraph(&topo, &demands, &routing);
        assert_eq!(h.n_vertices(), topo.n_links());
        assert_eq!(h.n_edges(), demands.len());
        for (e, path) in routing.iter().enumerate() {
            assert_eq!(h.edge_size(e), path.len() - 1);
            for l in topo.path_links(path) {
                assert!(h.contains(e, l));
            }
        }
        // Connection count matches the canonical ordering helper.
        assert_eq!(h.n_connections(), connections(&topo, &routing).len());
    }

    #[test]
    fn masked_routing_reference_is_distribution() {
        let (topo, demands, routing, model) = small_setup();
        let system = MaskedRouting::new(&model, &topo, &demands, &routing);
        let reference = system.reference_output();
        // One softmax per demand, each summing to 1.
        let mut offset = 0;
        for c in &system.candidates {
            let s: f64 = reference[offset..offset + c.len()].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            offset += c.len();
        }
        assert_eq!(offset, reference.len());
    }

    #[test]
    fn masked_output_matches_reference_at_full_mask() {
        let (topo, demands, routing, model) = small_setup();
        let system = MaskedRouting::new(&model, &topo, &demands, &routing);
        let reference = system.reference_output();
        let tape = Tape::new();
        // logit +inf ~ mask 1: use a large logit.
        let big = tape.vars(&vec![30.0; system.n_connections()]);
        let mask: Vec<Var<'_>> = big.iter().map(|v| v.sigmoid()).collect();
        let out = system.masked_output(&tape, &mask);
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a.value() - b).abs() < 1e-6, "{} vs {}", a.value(), b);
        }
    }

    #[test]
    fn interpret_routing_produces_ranked_report() {
        let (topo, demands, routing, model) = small_setup();
        let cfg = MaskConfig {
            steps: 40,
            ..Default::default()
        };
        let (result, report) = interpret_routing(&model, &topo, &demands, &routing, &cfg, 5);
        assert_eq!(report.len(), 5.min(result.mask.len()));
        // Ranked by mask, descending.
        for w in report.windows(2) {
            assert!(w[0].mask >= w[1].mask);
        }
        assert!(result.mask.iter().all(|&m| (0.0..=1.0).contains(&m)));
    }

    #[test]
    fn classification_identifies_shorter() {
        let (topo, demands, routing, _) = small_setup();
        // Demand 0 on an idle network takes the shortest path; masking one
        // of its links forces a detour -> "Shorter" (or LessCongested if an
        // equal-length alternative exists).
        let latency = LatencyModel::default();
        let links = topo.path_links(&routing[0]);
        let kind = classify_connection(&topo, &demands, &routing, &latency, 0, links[0]);
        assert!(
            kind == InterpretationKind::Shorter || kind == InterpretationKind::LessCongested,
            "unexpected class {kind:?}"
        );
    }

    #[test]
    fn mask_mass_alignment() {
        let (topo, _, routing, _) = small_setup();
        let n = connections(&topo, &routing).len();
        let mass = mask_mass_per_link(&topo, &routing, &vec![1.0; n]);
        // Total mass equals the number of connections.
        assert!((mass.iter().sum::<f64>() - n as f64).abs() < 1e-12);
        // Links not on any path have zero mass.
        let used: std::collections::HashSet<usize> =
            routing.iter().flat_map(|p| topo.path_links(p)).collect();
        for (l, &m) in mass.iter().enumerate() {
            if !used.contains(&l) {
                assert_eq!(m, 0.0);
            }
        }
    }

    #[test]
    fn divergence_hop_detection() {
        assert_eq!(divergence_hop(&[6, 7, 10, 9], &[6, 4, 5, 9]), Some(0));
        assert_eq!(divergence_hop(&[0, 2, 5, 12], &[0, 2, 1, 7, 12]), Some(1));
        assert_eq!(divergence_hop(&[0, 1], &[2, 1]), None);
    }

    #[test]
    fn adhoc_points_have_both_coordinates() {
        let (topo, demands, routing, _) = small_setup();
        let n = connections(&topo, &routing).len();
        let latency = LatencyModel::default();
        // A synthetic mask that decays along each path.
        let mask: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let pts = adhoc_points(&topo, &demands, &routing, &mask, &latency);
        for p in &pts {
            assert!(p.dw.is_finite() && p.dl.is_finite());
            assert!(
                p.dw != 0.0,
                "different hops should have different masks here"
            );
        }
    }
}
