//! The lightweight-deployment cost model (§6.4 / Figures 16a, 17b).
//!
//! The paper measures page size, page-load time at 1200 kbps, JS heap and
//! per-decision latency of the DNN vs. the converted tree. In this
//! reproduction the artifacts are the serialized models and latency is
//! measured in-process (DESIGN.md §1.3, substitutions 2–3): the absolute
//! numbers differ from a browser/Python stack, the *ratios* are the claim.
//!
//! Latency summaries share the serving-side percentile vocabulary
//! ([`metis_serve::latency`]) — the same p50/p95/p99/max discipline the
//! online engine accounts SLOs in.

use metis_serve::latency::{summarize_sorted, LatencySummary};
use std::time::Instant;

/// Errors of the deployment cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeployError {
    /// Load-time projection needs a strictly positive bandwidth.
    NonPositiveBandwidth(f64),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::NonPositiveBandwidth(b) => {
                write!(f, "bandwidth must be positive, got {b} kbps")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Cost summary of a deployable model artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactCost {
    pub bytes: usize,
}

impl ArtifactCost {
    pub fn new(bytes: usize) -> Self {
        ArtifactCost { bytes }
    }

    /// Transfer time of the artifact at a given bandwidth (the paper's
    /// page-load model uses 1200 kbps, the mean of its evaluation traces).
    /// Non-positive bandwidth is a checked error, not a panic.
    pub fn load_time_s(&self, bandwidth_kbps: f64) -> Result<f64, DeployError> {
        if bandwidth_kbps.is_nan() || bandwidth_kbps <= 0.0 {
            return Err(DeployError::NonPositiveBandwidth(bandwidth_kbps));
        }
        Ok(self.bytes as f64 * 8.0 / (bandwidth_kbps * 1000.0))
    }
}

/// Latency sample summary (seconds): the raw samples plus the serving
/// engine's percentile summary, flattened for callers.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Measured samples, sorted ascending (`total_cmp` order).
    pub samples_s: Vec<f64>,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencyStats {
    /// The full percentile summary in the serving engine's vocabulary
    /// (`samples_s` is stored sorted, so no re-sort happens here).
    pub fn summary(&self) -> LatencySummary {
        summarize_sorted(&self.samples_s)
    }
}

/// Measure per-call latency of `f` over `iters` calls (after `warmup`
/// unmeasured calls). `f` should perform exactly one decision.
pub fn measure_latency(mut f: impl FnMut(), iters: usize, warmup: usize) -> LatencyStats {
    assert!(iters > 0);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let summary = summarize_sorted(&samples);
    LatencyStats {
        samples_s: samples,
        mean_s: summary.mean_s,
        p50_s: summary.p50_s,
        p95_s: summary.p95_s,
        p99_s: summary.p99_s,
        max_s: summary.max_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_time_scales_with_size_and_bandwidth() {
        let small = ArtifactCost::new(15_000); // ~15 KB tree
        let big = ArtifactCost::new(1_370_000); // ~1.37 MB DNN (paper's delta)
        let t_small = small.load_time_s(1200.0).unwrap();
        let t_big = big.load_time_s(1200.0).unwrap();
        assert!(t_big / t_small > 80.0, "ratio {}", t_big / t_small);
        // 1.37 MB at 1200 kbps ≈ 9.1 s — the paper's "9.36 seconds" scale.
        assert!(t_big > 8.0 && t_big < 11.0, "t_big {t_big}");
        assert!(small.load_time_s(2400.0).unwrap() < t_small);
    }

    #[test]
    fn load_time_rejects_non_positive_bandwidth_without_panicking() {
        let cost = ArtifactCost::new(1000);
        for bad in [0.0, -5.0, f64::NAN] {
            let err = cost.load_time_s(bad).unwrap_err();
            assert!(matches!(err, DeployError::NonPositiveBandwidth(_)));
            assert!(err.to_string().contains("positive"), "{err}");
        }
    }

    #[test]
    fn latency_measurement_orders_cheap_vs_expensive() {
        let cheap = measure_latency(
            || {
                std::hint::black_box(1 + 1);
            },
            200,
            10,
        );
        let mut acc = 0.0_f64;
        let expensive = measure_latency(
            || {
                for i in 0..20_000 {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            },
            200,
            10,
        );
        assert!(
            expensive.mean_s > cheap.mean_s,
            "{} vs {}",
            expensive.mean_s,
            cheap.mean_s
        );
        assert!(cheap.p50_s <= cheap.p95_s && cheap.p95_s <= cheap.p99_s);
        assert!(cheap.p99_s <= cheap.max_s);
        assert_eq!(cheap.samples_s.len(), 200);
    }

    #[test]
    fn stats_agree_with_serve_summary() {
        let stats = measure_latency(
            || {
                std::hint::black_box(2 * 2);
            },
            50,
            5,
        );
        let summary = stats.summary();
        assert_eq!(summary.count, 50);
        assert_eq!(summary.p50_s, stats.p50_s);
        assert_eq!(summary.p95_s, stats.p95_s);
        assert_eq!(summary.p99_s, stats.p99_s);
        assert_eq!(summary.max_s, stats.max_s);
    }
}
