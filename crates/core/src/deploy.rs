//! The lightweight-deployment cost model (§6.4 / Figures 16a, 17b).
//!
//! The paper measures page size, page-load time at 1200 kbps, JS heap and
//! per-decision latency of the DNN vs. the converted tree. In this
//! reproduction the artifacts are the serialized models and latency is
//! measured in-process (DESIGN.md §1.3, substitutions 2–3): the absolute
//! numbers differ from a browser/Python stack, the *ratios* are the claim.

use std::time::Instant;

/// Cost summary of a deployable model artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactCost {
    pub bytes: usize,
}

impl ArtifactCost {
    pub fn new(bytes: usize) -> Self {
        ArtifactCost { bytes }
    }

    /// Transfer time of the artifact at a given bandwidth (the paper's
    /// page-load model uses 1200 kbps, the mean of its evaluation traces).
    pub fn load_time_s(&self, bandwidth_kbps: f64) -> f64 {
        assert!(bandwidth_kbps > 0.0);
        self.bytes as f64 * 8.0 / (bandwidth_kbps * 1000.0)
    }
}

/// Latency sample summary (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    pub samples_s: Vec<f64>,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p99_s: f64,
}

/// Measure per-call latency of `f` over `iters` calls (after `warmup`
/// unmeasured calls). `f` should perform exactly one decision.
pub fn measure_latency(mut f: impl FnMut(), iters: usize, warmup: usize) -> LatencyStats {
    assert!(iters > 0);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| {
        samples[((p / 100.0 * (samples.len() - 1) as f64) as usize).min(samples.len() - 1)]
    };
    LatencyStats {
        mean_s: mean,
        p50_s: pct(50.0),
        p99_s: pct(99.0),
        samples_s: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_time_scales_with_size_and_bandwidth() {
        let small = ArtifactCost::new(15_000); // ~15 KB tree
        let big = ArtifactCost::new(1_370_000); // ~1.37 MB DNN (paper's delta)
        let t_small = small.load_time_s(1200.0);
        let t_big = big.load_time_s(1200.0);
        assert!(t_big / t_small > 80.0, "ratio {}", t_big / t_small);
        // 1.37 MB at 1200 kbps ≈ 9.1 s — the paper's "9.36 seconds" scale.
        assert!(t_big > 8.0 && t_big < 11.0, "t_big {t_big}");
        assert!(small.load_time_s(2400.0) < t_small);
    }

    #[test]
    fn latency_measurement_orders_cheap_vs_expensive() {
        let cheap = measure_latency(
            || {
                std::hint::black_box(1 + 1);
            },
            200,
            10,
        );
        let mut acc = 0.0_f64;
        let expensive = measure_latency(
            || {
                for i in 0..20_000 {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            },
            200,
            10,
        );
        assert!(
            expensive.mean_s > cheap.mean_s,
            "{} vs {}",
            expensive.mean_s,
            cheap.mean_s
        );
        assert!(cheap.p50_s <= cheap.p99_s);
        assert_eq!(cheap.samples_s.len(), 200);
    }
}
