//! The unified, parallel §3.2 conversion engine.
//!
//! [`ConversionPipeline`] owns the complete teacher→tree loop the paper
//! describes — DAgger-style trace collection with teacher takeover,
//! Eq.-1 advantage resampling, CART fitting, cost-complexity pruning, and
//! fidelity/return evaluation — parameterized over the [`metis_rl::Env`] /
//! [`metis_rl::Policy`] traits so every scenario (Pensieve/ABR, AuTO flow
//! scheduling, and anything future) runs through the same code path
//! instead of hand-rolling the loop per experiment.
//!
//! Parallelism and batching are explicit and deterministic:
//!
//! * **Episode-level** — collection rounds fan independent seeded episodes
//!   across threads and merge by episode index
//!   ([`metis_rl::collect_seeded`]).
//! * **Batch-level** — within each episode, teacher labels/distributions
//!   and Eq.-1 value lookaheads are issued as matrix-matrix passes (one
//!   per episode) instead of per-obs matrix-vector queries; fidelity
//!   evaluation labels the whole dataset in one batched pass. Both are
//!   bit-identical to the per-obs oracle (`metis_rl::viper::oracle`).
//! * **Feature-level** — tree fitting scans features in parallel over a
//!   sort-once presorted index ([`metis_dt::TreeConfig::threads`]).
//!
//! Same seed ⇒ identical tree, for **any** thread count and batch size.
//!
//! ```
//! use metis_core::ConversionPipeline;
//! use metis_rl::env::test_envs::BanditEnv;
//! use metis_rl::UniformPolicy;
//!
//! let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 20, s)).collect();
//! let teacher = UniformPolicy { n_actions: 3 };
//! let result = ConversionPipeline::new(&pool, &teacher, |_| 0.0)
//!     .seed(7)
//!     .threads(0) // all cores
//!     .run();
//! assert!(result.policy.tree.n_leaves() >= 1);
//! ```

use crate::convert::{oversample_rare_actions, ConversionConfig, ConversionResult, TreePolicy};
use metis_dt::{fit, prune_to_leaves, Criterion, Dataset, TreeConfig};
use metis_rl::{
    collect_seeded, resample_by_weight, CollectConfig, Controller, Env, Policy, SampledState,
    ValueEstimate,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Wall-clock and volume statistics of one [`ConversionPipeline::run`].
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Seconds spent in trace collection (all rounds).
    pub collect_s: f64,
    /// Seconds spent resampling + fitting + pruning (all rounds).
    pub fit_s: f64,
    /// Total labelled states collected across rounds.
    pub states_collected: usize,
    /// Collection rounds executed (1 + DAgger rounds).
    pub rounds: usize,
    /// Worker threads the run resolved to.
    pub threads: usize,
}

impl PipelineStats {
    /// End-to-end conversion throughput in labelled states per second.
    pub fn samples_per_sec(&self) -> f64 {
        let total = self.collect_s + self.fit_s;
        if total > 0.0 {
            self.states_collected as f64 / total
        } else {
            0.0
        }
    }
}

/// Derive a decorrelated per-stage seed from the pipeline's base seed.
fn stage_seed(base: u64, stage: u64) -> u64 {
    metis_rl::mix_seed(base ^ stage.wrapping_mul(0xD1B54A32D192ED03))
}

/// The scenario-agnostic §3.2 conversion engine. See the module docs.
pub struct ConversionPipeline<'a, E, T: ?Sized, V> {
    pool: &'a [E],
    teacher: &'a T,
    value_fn: V,
    conversion: ConversionConfig,
    threads: usize,
    seed: u64,
}

impl<'a, E, T, V> ConversionPipeline<'a, E, T, V>
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: Fn(&[f64]) -> f64 + Sync,
{
    /// Build a pipeline over an environment pool, a teacher policy, and a
    /// closure bootstrap value estimate for the Eq.-1 Q lookahead
    /// (`|_| 0.0` for myopic weights). Closures are queried per-obs; for
    /// batched value labelling wrap a critic network and use
    /// [`ConversionPipeline::with_value`].
    pub fn new(pool: &'a [E], teacher: &'a T, value_fn: V) -> Self {
        Self::with_value(pool, teacher, value_fn)
    }
}

impl<'a, E, T, V> ConversionPipeline<'a, E, T, V>
where
    E: Env + Sync,
    T: Policy + Sync + ?Sized,
    V: ValueEstimate,
{
    /// Build a pipeline with any [`ValueEstimate`] — in particular
    /// [`metis_rl::NetworkValue`] wrapping the teacher's critic, whose
    /// Eq.-1 afterstate lookups then run as one batched forward pass per
    /// episode instead of one per observation.
    pub fn with_value(pool: &'a [E], teacher: &'a T, value_fn: V) -> Self {
        assert!(
            !pool.is_empty(),
            "ConversionPipeline: empty environment pool"
        );
        ConversionPipeline {
            pool,
            teacher,
            value_fn,
            conversion: ConversionConfig::default(),
            threads: 0,
            seed: 0,
        }
    }

    /// Replace the conversion hyperparameters (Table 4 knobs).
    pub fn conversion(mut self, cfg: ConversionConfig) -> Self {
        self.conversion = cfg;
        self
    }

    /// Worker threads for collection, fitting, and evaluation
    /// (0 = all available cores). Results are identical for any value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Base RNG seed: the single source of randomness for the whole run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn collect_cfg(&self) -> CollectConfig {
        CollectConfig {
            episodes: self.conversion.episodes_per_round,
            max_steps: self.conversion.max_steps,
            gamma: self.conversion.gamma,
            weighted: self.conversion.resample,
        }
    }

    /// Run the full conversion loop: teacher round, DAgger rounds with
    /// takeover, Eq.-1 resampling, fitting, and CCP pruning.
    pub fn run(&self) -> ConversionResult {
        self.run_publishing(|_, _| {})
    }

    /// [`ConversionPipeline::run`] with a publication hook: `publish`
    /// fires after every round's fit with `(round, &student)` — the
    /// serve-while-converting wiring hands each freshly fitted tree to a
    /// [`metis_serve::ModelRegistry`] so live traffic hot-swaps onto it
    /// mid-conversion. The hook never influences the conversion itself:
    /// results are bit-identical to [`ConversionPipeline::run`].
    pub fn run_publishing(&self, mut publish: impl FnMut(usize, &TreePolicy)) -> ConversionResult {
        let cfg = &self.conversion;
        let n_actions = self.pool[0].n_actions();
        let collect_cfg = self.collect_cfg();
        let mut stats = PipelineStats {
            rounds: 1 + cfg.dagger_rounds,
            threads: metis_rl::resolve_threads(self.threads),
            ..Default::default()
        };

        // Round 0: teacher-controlled traces.
        let t0 = Instant::now();
        let mut all_states = collect_seeded(
            self.pool,
            self.teacher,
            &self.value_fn,
            &Controller::Teacher,
            &collect_cfg,
            stage_seed(self.seed, 0),
            self.threads,
        );
        stats.collect_s += t0.elapsed().as_secs_f64();

        let mut student = self.debug_oversample_and_fit(&mut all_states, n_actions, 0, &mut stats);
        publish(0, &student);
        let mut fidelity_history = vec![metis_rl::fidelity_sharded(
            &all_states,
            &student,
            self.teacher,
            self.threads,
        )];

        // DAgger rounds: the student drives, the teacher labels and takes
        // over on deviation (§3.2 Step 1).
        for round in 1..=cfg.dagger_rounds {
            let t0 = Instant::now();
            let new_states = collect_seeded(
                self.pool,
                self.teacher,
                &self.value_fn,
                &Controller::StudentWithTakeover(&student, cfg.takeover_prob),
                &collect_cfg,
                stage_seed(self.seed, round as u64),
                self.threads,
            );
            stats.collect_s += t0.elapsed().as_secs_f64();
            all_states.extend(new_states);
            student =
                self.debug_oversample_and_fit(&mut all_states, n_actions, round as u64, &mut stats);
            publish(round, &student);
            fidelity_history.push(metis_rl::fidelity_sharded(
                &all_states,
                &student,
                self.teacher,
                self.threads,
            ));
        }

        stats.states_collected = all_states.len();
        ConversionResult {
            policy: student,
            dataset_size: all_states.len(),
            fidelity_history,
            stats,
        }
    }

    /// §6.3 oversampling (when configured) followed by resample + fit.
    fn debug_oversample_and_fit(
        &self,
        states: &mut Vec<SampledState>,
        n_actions: usize,
        round: u64,
        stats: &mut PipelineStats,
    ) -> TreePolicy {
        let t0 = Instant::now();
        if let Some(frac) = self.conversion.oversample_min_frac {
            let mut rng = StdRng::seed_from_u64(stage_seed(self.seed, 0x0500 + round));
            oversample_rare_actions(states, n_actions, frac, &mut rng);
        }
        let student = self.fit_states(states, n_actions, round);
        stats.fit_s += t0.elapsed().as_secs_f64();
        student
    }

    /// §3.2 Steps 2–3 on an explicit dataset: Eq.-1 resampling (when
    /// enabled), CART fit past the leaf budget, then CCP pruning back.
    pub fn fit_states(&self, states: &[SampledState], n_actions: usize, round: u64) -> TreePolicy {
        let cfg = &self.conversion;
        let resampled;
        let fit_on: &[SampledState] = if cfg.resample {
            let n = cfg.resample_size.unwrap_or(states.len());
            let mut rng = StdRng::seed_from_u64(stage_seed(self.seed, 0x0A00 + round));
            resampled = resample_by_weight(states, n, &mut rng);
            &resampled
        } else {
            states
        };
        let ds = dataset_from_states(fit_on, n_actions);
        let grown = fit(
            &ds,
            &TreeConfig {
                max_leaf_nodes: cfg.max_leaf_nodes * cfg.ccp_overshoot.max(1),
                criterion: Criterion::Gini,
                threads: self.threads,
                ..Default::default()
            },
        )
        .expect("classification fit cannot fail on a valid dataset");
        TreePolicy::new(prune_to_leaves(&grown, cfg.max_leaf_nodes))
    }

    /// Collect teacher-controlled labelled states without fitting — the
    /// dataset-producing stage on its own, for evaluation corpora and the
    /// surrogate-baseline comparisons.
    pub fn collect_teacher_states(&self, episodes: usize, max_steps: usize) -> Vec<SampledState> {
        let collect_cfg = CollectConfig {
            episodes,
            max_steps,
            gamma: self.conversion.gamma,
            weighted: false,
        };
        collect_seeded(
            self.pool,
            self.teacher,
            &self.value_fn,
            &Controller::Teacher,
            &collect_cfg,
            stage_seed(self.seed, 0x0E00),
            self.threads,
        )
    }

    /// Mean greedy episode return of a policy across the pool (one episode
    /// per environment), evaluated in parallel with deterministic
    /// environment-order reduction.
    pub fn evaluate(&self, policy: &(dyn Policy + Sync), max_steps: usize) -> f64 {
        let per_env = self.evaluate_per_env(policy, max_steps);
        per_env.iter().sum::<f64>() / per_env.len() as f64
    }

    /// Per-environment greedy episode returns (parallel, env-ordered).
    pub fn evaluate_per_env(&self, policy: &(dyn Policy + Sync), max_steps: usize) -> Vec<f64> {
        metis_rl::evaluate_pool(
            self.pool,
            policy,
            max_steps,
            stage_seed(self.seed, 0x0F00),
            self.threads,
        )
        .into_iter()
        .map(|s| s.total_reward)
        .collect()
    }
}

fn dataset_from_states(states: &[SampledState], n_actions: usize) -> Dataset {
    let x: Vec<Vec<f64>> = states.iter().map(|s| s.obs.clone()).collect();
    let y: Vec<usize> = states.iter().map(|s| s.teacher_action).collect();
    let w: Vec<f64> = states.iter().map(|s| s.weight.max(1e-9)).collect();
    Dataset::classification_weighted(x, y, n_actions, w)
        .expect("states collected from an env are schema-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_rl::env::test_envs::BanditEnv;

    /// Oracle teacher for the bandit (reads the one-hot context).
    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    fn pool() -> Vec<BanditEnv> {
        (0..4).map(|s| BanditEnv::new(3, 20, s)).collect()
    }

    #[test]
    fn pipeline_reaches_high_fidelity_on_bandit() {
        let pool = pool();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 8,
            max_steps: 20,
            ..Default::default()
        };
        let result = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .conversion(cfg)
            .seed(3)
            .run();
        assert!(
            *result.fidelity_history.last().unwrap() > 0.99,
            "fidelity {:?}",
            result.fidelity_history
        );
        assert_eq!(result.stats.rounds, 3);
        assert!(result.stats.states_collected > 0);
        assert!(result.stats.samples_per_sec() > 0.0);
    }

    #[test]
    fn same_seed_same_tree_any_thread_count() {
        let pool = pool();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 8,
            max_steps: 20,
            ..Default::default()
        };
        let run = |threads: usize| {
            ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
                .conversion(cfg.clone())
                .seed(11)
                .threads(threads)
                .run()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.policy.tree, b.policy.tree);
        assert_eq!(a.fidelity_history, b.fidelity_history);
        assert_eq!(a.dataset_size, b.dataset_size);
    }

    #[test]
    fn different_seeds_differ() {
        let pool = pool();
        let a = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .seed(1)
            .run();
        let b = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .seed(2)
            .run();
        assert!(a.dataset_size > 0 && b.dataset_size > 0);
        // The bandit's trajectories are env-deterministic, but the Eq.-1
        // resampling draws differ per seed, so the fitted trees' leaf
        // statistics must differ — seeding is actually consumed.
        assert_ne!(
            a.policy.tree, b.policy.tree,
            "different seeds produced bit-identical trees"
        );
    }

    #[test]
    fn evaluate_scores_oracle_perfect_on_bandit() {
        let pool = pool();
        let pipeline = ConversionPipeline::new(&pool, &Oracle, |_| 0.0).seed(5);
        let score = pipeline.evaluate(&Oracle, 20);
        assert_eq!(score, 20.0);
        let per_env = pipeline.evaluate_per_env(&Oracle, 20);
        assert_eq!(per_env.len(), 4);
        // Parallel evaluation must agree with the sequential path.
        let seq = ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
            .seed(5)
            .threads(1)
            .evaluate_per_env(&Oracle, 20);
        assert_eq!(per_env, seq);
    }

    #[test]
    fn collect_teacher_states_is_deterministic() {
        let pool = pool();
        let p = ConversionPipeline::new(&pool, &Oracle, |_| 0.0).seed(9);
        let a = p.collect_teacher_states(6, 20);
        let b = p.collect_teacher_states(6, 20);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.obs == y.obs
            && x.teacher_action == y.teacher_action
            && x.weight == y.weight));
    }
}
