//! Table-4 hyperparameters of the paper, as defaults.

use metis_hypergraph::MaskConfig;

/// The paper's per-system defaults (Table 4).
#[derive(Debug, Clone)]
pub struct MetisDefaults {
    /// Leaf budget for the Pensieve student tree (`M = 200`).
    pub pensieve_leaves: usize,
    /// Leaf budget for AuTO's lRLA student tree (`M = 2000`).
    pub lrla_leaves: usize,
    /// Leaf budget for AuTO's sRLA student trees (`M = 2000`).
    pub srla_leaves: usize,
    /// Hypergraph mask weights for RouteNet* (`λ₁ = 0.25`, `λ₂ = 1`).
    pub mask: MaskConfig,
}

impl Default for MetisDefaults {
    fn default() -> Self {
        MetisDefaults {
            pensieve_leaves: 200,
            lrla_leaves: 2000,
            srla_leaves: 2000,
            mask: MaskConfig {
                lambda1: 0.25,
                lambda2: 1.0,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let d = MetisDefaults::default();
        assert_eq!(d.pensieve_leaves, 200);
        assert_eq!(d.lrla_leaves, 2000);
        assert_eq!(d.srla_leaves, 2000);
        assert_eq!(d.mask.lambda1, 0.25);
        assert_eq!(d.mask.lambda2, 1.0);
    }
}
