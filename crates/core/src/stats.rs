//! Small statistics helpers shared by the experiment harnesses.

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    let denom = (va * vb).sqrt();
    if denom < 1e-300 {
        0.0
    } else {
        cov / denom
    }
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Empirical CDF evaluation points: returns `(sorted values, cumulative
/// fractions)` suitable for printing figure data.
pub fn ecdf(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    let fracs = (1..=v.len()).map(|i| i as f64 / n).collect();
    (v, fracs)
}

/// Fraction of points in quadrants I and III (positive product) — the
/// Figure-18(b) statistic.
pub fn quadrant13_fraction(points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().filter(|(x, y)| x * y > 0.0).count() as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_near_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&a, &b).abs() < 0.5);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn ecdf_shape() {
        let (v, f) = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert!((f[2] - 1.0).abs() < 1e-12);
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quadrant_fraction() {
        let pts = [(1.0, 1.0), (-1.0, -2.0), (1.0, -1.0), (0.0, 5.0)];
        assert!((quadrant13_fraction(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
