//! Cross-workload sharding: run many conversion pipelines concurrently
//! over **one** shared thread budget.
//!
//! The ROADMAP's serving goal is many simultaneous conversions — one
//! [`crate::ConversionPipeline`] per scenario/config (ABR, flow
//! scheduling, routing, parameter sweeps). Naively spawning each
//! pipeline's stages on their own threads multiplies the thread count
//! (workloads × stage threads) and oversubscribes the machine. The
//! [`WorkloadRunner`] instead drives every workload on a lightweight
//! driver thread whose parallel stages all execute on the persistent
//! [`metis_nn::par::global`] worker pool:
//!
//! * **Shared budget** — at most `budget` workloads are *admitted* (run
//!   their driver) at once; inner stages borrow pool workers rather than
//!   spawning, so the process-wide compute thread count stays bounded by
//!   the pool size regardless of how many workloads are queued.
//! * **Fair scheduling** — each workload's submissions are tagged with a
//!   fresh pool group ([`metis_nn::par::with_group`]); the pool
//!   round-robins across groups, so a long workload cannot starve the
//!   rest. Admission itself is FIFO in submission order.
//! * **Determinism** — workloads share no mutable state and every pool
//!   stage merges by index, so each workload's result is **bit-identical
//!   to running it alone**, for any budget, pool size, or interleaving;
//!   results return in submission order.
//!
//! ```
//! use metis_core::{ConversionPipeline, Workload, WorkloadRunner};
//! use metis_rl::env::test_envs::BanditEnv;
//! use metis_rl::UniformPolicy;
//!
//! let pool: Vec<BanditEnv> = (0..2).map(|s| BanditEnv::new(3, 10, s)).collect();
//! let teacher = UniformPolicy { n_actions: 3 };
//! let results = WorkloadRunner::new(0).run(
//!     (0..3)
//!         .map(|seed| {
//!             let pool = &pool;
//!             let teacher = &teacher;
//!             Workload::new(format!("sweep-{seed}"), move || {
//!                 ConversionPipeline::new(pool, teacher, |_| 0.0)
//!                     .seed(seed)
//!                     .run()
//!             })
//!         })
//!         .collect(),
//! );
//! assert_eq!(results.len(), 3);
//! assert_eq!(results[0].name, "sweep-0");
//! ```

use metis_telemetry::ShardTelemetry;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named unit of work for the [`WorkloadRunner`] — typically a whole
/// conversion pipeline run, but any `FnOnce` closure works (the closure
/// may borrow from the caller's stack).
pub struct Workload<'a, R> {
    name: String,
    job: Box<dyn FnOnce() -> R + Send + 'a>,
}

impl<'a, R> Workload<'a, R> {
    pub fn new(name: impl Into<String>, job: impl FnOnce() -> R + Send + 'a) -> Self {
        Workload {
            name: name.into(),
            job: Box::new(job),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The outcome of one workload: its name, its return value, the wall
/// clock it held an admission slot, and how long it queued for one.
#[derive(Debug, Clone)]
pub struct WorkloadResult<R> {
    pub name: String,
    pub value: R,
    pub seconds: f64,
    /// Elapsed time between batch submission and this workload's
    /// admission (a driver picking it up). Workloads admitted immediately
    /// still record the microseconds of driver spawn + lock handoff, so
    /// treat small values as "no queueing", not exactly zero.
    pub queue_wait_s: f64,
}

/// Admission-queue statistics of one [`WorkloadRunner::run_detailed`]
/// batch — the observability the ROADMAP's time-sliced scheduler needs:
/// who waited, for how long, and how deep the queue ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunnerStats {
    /// Deepest the admission queue got (workloads still waiting at the
    /// moment some workload was admitted, including it).
    pub peak_queue_depth: usize,
    /// Mean queue wait across all workloads (seconds).
    pub mean_wait_s: f64,
    /// Worst queue wait (seconds).
    pub max_wait_s: f64,
}

/// Runs batches of [`Workload`]s concurrently over a shared thread
/// budget. See the module docs for the scheduling and determinism
/// contract.
pub struct WorkloadRunner {
    budget: usize,
    telemetry: Option<Arc<ShardTelemetry>>,
}

impl WorkloadRunner {
    /// A runner admitting at most `budget` concurrent workloads
    /// (0 = all available cores). The inner parallel stages of admitted
    /// workloads all share the persistent worker pool, so raising the
    /// budget never multiplies compute threads.
    pub fn new(budget: usize) -> Self {
        WorkloadRunner {
            budget: metis_nn::par::resolve_threads(budget).max(1),
            telemetry: None,
        }
    }

    /// Report into the live telemetry plane: each workload lands on
    /// `scope` as one request — full span = queue wait + run time,
    /// queue-wait share = its admission delay — with stamps in seconds
    /// since the batch's submission instant. The runner is wall-clock
    /// machinery, so these stamps are monitoring data, not part of the
    /// virtual-time determinism contract.
    pub fn telemetry(mut self, scope: Arc<ShardTelemetry>) -> Self {
        self.telemetry = Some(scope);
        self
    }

    /// Concurrent workload slots.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Run every workload and return their results **in submission
    /// order**. Each workload executes exactly as it would alone —
    /// bit-identical results — while sharing the pool fairly with its
    /// neighbours. Panics if a workload panics (after the others finish).
    ///
    /// Only `min(budget, workloads)` driver threads are spawned; they
    /// pull workloads from a shared queue in submission order, so
    /// admission is genuinely FIFO and a thousand-point sweep never
    /// creates a thousand OS threads.
    pub fn run<R: Send>(&self, workloads: Vec<Workload<'_, R>>) -> Vec<WorkloadResult<R>> {
        self.run_detailed(workloads).0
    }

    /// [`WorkloadRunner::run`] plus admission-queue statistics: per-result
    /// `queue_wait_s` is populated either way; [`RunnerStats`] adds the
    /// batch-level peak depth and wait aggregates.
    pub fn run_detailed<R: Send>(
        &self,
        workloads: Vec<Workload<'_, R>>,
    ) -> (Vec<WorkloadResult<R>>, RunnerStats) {
        let n = workloads.len();
        let drivers = self.budget.min(n).max(1);
        // Submission-ordered FIFO of (slot index, workload); each result
        // lands in its submission slot regardless of which driver ran it.
        // All workloads enqueue at `submitted`, so a workload's queue wait
        // is simply its admission instant.
        let submitted = Instant::now();
        let queue: Mutex<VecDeque<(usize, Workload<'_, R>)>> =
            Mutex::new(workloads.into_iter().enumerate().collect());
        let peak_depth = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<WorkloadResult<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..drivers)
                .map(|_| {
                    let queue = &queue;
                    let slots = &slots;
                    let peak_depth = &peak_depth;
                    let telemetry = self.telemetry.as_deref();
                    scope.spawn(move || loop {
                        let (idx, workload, depth) = {
                            let mut queue = queue.lock().unwrap();
                            let depth = queue.len();
                            let Some((idx, workload)) = queue.pop_front() else {
                                return;
                            };
                            (idx, workload, depth)
                        };
                        peak_depth.fetch_max(depth, std::sync::atomic::Ordering::Relaxed);
                        let queue_wait_s = submitted.elapsed().as_secs_f64();
                        let group = metis_nn::par::fresh_group();
                        let result = metis_nn::par::with_group(group, || {
                            let start = Instant::now();
                            let value = (workload.job)();
                            WorkloadResult {
                                name: workload.name,
                                value,
                                seconds: start.elapsed().as_secs_f64(),
                                queue_wait_s,
                            }
                        });
                        if let Some(scope) = telemetry {
                            // One workload = one request: stamps are
                            // seconds since the batch submission.
                            scope.on_request(
                                queue_wait_s + result.seconds,
                                queue_wait_s + result.seconds,
                                queue_wait_s,
                            );
                        }
                        *slots[idx].lock().unwrap() = Some(result);
                    })
                })
                .collect();
            let mut panicked = false;
            for handle in handles {
                panicked |= handle.join().is_err();
            }
            assert!(!panicked, "workload panicked");
        });
        let results: Vec<WorkloadResult<R>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every submitted workload produced a result")
            })
            .collect();
        let stats = RunnerStats {
            peak_queue_depth: peak_depth.load(std::sync::atomic::Ordering::Relaxed),
            mean_wait_s: if results.is_empty() {
                0.0
            } else {
                results.iter().map(|r| r.queue_wait_s).sum::<f64>() / results.len() as f64
            },
            max_wait_s: results.iter().map(|r| r.queue_wait_s).fold(0.0, f64::max),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConversionConfig;
    use crate::pipeline::ConversionPipeline;
    use metis_rl::env::test_envs::BanditEnv;
    use metis_rl::Policy;

    #[derive(Clone)]
    struct Oracle;
    impl Policy for Oracle {
        fn action_probs(&self, obs: &[f64]) -> Vec<f64> {
            let mut p = vec![0.0; obs.len()];
            p[obs.iter().position(|&x| x == 1.0).unwrap()] = 1.0;
            p
        }
    }

    #[test]
    fn results_return_in_submission_order() {
        let results = WorkloadRunner::new(2).run(
            (0..5)
                .map(|k| Workload::new(format!("w{k}"), move || k * k))
                .collect(),
        );
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["w0", "w1", "w2", "w3", "w4"]);
        let values: Vec<usize> = results.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0, 1, 4, 9, 16]);
        assert!(results.iter().all(|r| r.seconds >= 0.0));
    }

    #[test]
    fn budget_zero_resolves_to_cores() {
        assert!(WorkloadRunner::new(0).budget() >= 1);
        assert_eq!(WorkloadRunner::new(3).budget(), 3);
    }

    #[test]
    fn budget_bounds_concurrent_admissions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkloadRunner::new(2).run(
            (0..8)
                .map(|k| {
                    let active = &active;
                    let peak = &peak;
                    Workload::new(format!("w{k}"), move || {
                        let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        active.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
    }

    /// The queue-observability satellite: FIFO admission under a tight
    /// budget produces monotone queue waits, a full-depth peak, and
    /// consistent aggregates.
    #[test]
    fn queue_stats_expose_depth_and_waits() {
        let (results, stats) = WorkloadRunner::new(1).run_detailed(
            (0..4)
                .map(|k| {
                    Workload::new(format!("w{k}"), move || {
                        std::thread::sleep(std::time::Duration::from_millis(3));
                        k
                    })
                })
                .collect::<Vec<_>>(),
        );
        // With one driver, admission is strictly FIFO: later submissions
        // wait at least as long as earlier ones.
        for pair in results.windows(2) {
            assert!(
                pair[1].queue_wait_s >= pair[0].queue_wait_s,
                "FIFO waits must be monotone: {:?}",
                results.iter().map(|r| r.queue_wait_s).collect::<Vec<_>>()
            );
        }
        // The first pop sees the whole batch queued.
        assert_eq!(stats.peak_queue_depth, 4);
        assert!(results[3].queue_wait_s >= 3.0 * 0.003 * 0.5, "tail waited");
        assert!(stats.max_wait_s >= stats.mean_wait_s);
        assert!((stats.max_wait_s - results[3].queue_wait_s).abs() < 1e-9);
        // A wide-open budget admits everything at depth n but with tiny
        // waits.
        let (results, stats) = WorkloadRunner::new(4).run_detailed(
            (0..2)
                .map(|k| Workload::new(format!("w{k}"), move || k))
                .collect::<Vec<_>>(),
        );
        assert_eq!(results.len(), 2);
        assert!(stats.peak_queue_depth >= 1 && stats.peak_queue_depth <= 2);
    }

    /// The telemetry hook: every workload lands on the attached scope as
    /// one request, with its admission delay as the queue-wait share.
    #[test]
    fn telemetry_scope_records_each_workload_as_a_request() {
        use metis_telemetry::{Stage, Telemetry, CONTROL_SHARD};

        let plane = Telemetry::enabled();
        let scope = plane
            .register("runner", CONTROL_SHARD, "batch")
            .expect("enabled plane registers");
        let results = WorkloadRunner::new(2).telemetry(Arc::clone(&scope)).run(
            (0..5)
                .map(|k| Workload::new(format!("w{k}"), move || k))
                .collect(),
        );
        assert_eq!(results.len(), 5);
        assert_eq!(scope.latency.cumulative().count(), 5);
        assert_eq!(scope.stage_sketch(Stage::QueueWait).count(), 5);
        let p_max = scope
            .latency
            .cumulative()
            .quantile(1.0)
            .expect("non-empty sketch");
        assert!(p_max >= 0.0, "workload spans are non-negative seconds");
    }

    /// The acceptance bar: concurrent scenario pipelines over a shared
    /// budget are bit-identical to running each pipeline alone, for any
    /// thread knob.
    #[test]
    fn concurrent_pipelines_bit_identical_to_solo_runs() {
        let pool: Vec<BanditEnv> = (0..4).map(|s| BanditEnv::new(3, 20, s)).collect();
        let cfg = ConversionConfig {
            max_leaf_nodes: 8,
            episodes_per_round: 6,
            max_steps: 16,
            ..Default::default()
        };
        let run_one = |seed: u64, threads: usize| {
            ConversionPipeline::new(&pool, &Oracle, |_| 0.0)
                .conversion(cfg.clone())
                .seed(seed)
                .threads(threads)
                .run()
        };
        for threads in [1usize, 3] {
            let solo: Vec<_> = (0..3).map(|seed| run_one(seed, threads)).collect();
            let sharded = WorkloadRunner::new(0).run(
                (0..3)
                    .map(|seed| {
                        let run_one = &run_one;
                        Workload::new(format!("bandit-{seed}"), move || run_one(seed, threads))
                    })
                    .collect(),
            );
            for (alone, shared) in solo.iter().zip(sharded.iter()) {
                assert_eq!(alone.policy.tree, shared.value.policy.tree);
                assert_eq!(alone.fidelity_history, shared.value.fidelity_history);
                assert_eq!(alone.dataset_size, shared.value.dataset_size);
            }
        }
    }
}
